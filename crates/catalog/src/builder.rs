//! Ergonomic construction of [`Catalog`]s.

use crate::catalog::Catalog;
use crate::column::Column;
use crate::error::CatalogError;
use crate::schema::{RelationSchema, Schema};
use std::sync::Arc;

/// Builder collecting relations with their per-attribute columns.
///
/// ```
/// use qbdp_catalog::{CatalogBuilder, Column};
/// let catalog = CatalogBuilder::new()
///     .relation("R", &[("X", Column::texts(["a1", "a2"]))])
///     .relation("S", &[
///         ("X", Column::texts(["a1", "a2"])),
///         ("Y", Column::texts(["b1", "b2"])),
///     ])
///     .build()
///     .unwrap();
/// assert_eq!(catalog.sigma_size(), 6);
/// ```
#[derive(Default)]
pub struct CatalogBuilder {
    relations: Vec<(String, Vec<(String, Column)>)>,
    error: Option<CatalogError>,
}

impl CatalogBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        CatalogBuilder::default()
    }

    /// Declare a relation with named, column-typed attributes.
    pub fn relation(mut self, name: impl Into<String>, attrs: &[(&str, Column)]) -> Self {
        self.relations.push((
            name.into(),
            attrs
                .iter()
                .map(|(n, c)| (n.to_string(), c.clone()))
                .collect(),
        ));
        self
    }

    /// Declare a relation whose attributes all share one column — the common
    /// case for synthetic workloads (`R(X,Y)` over `{0..n}²`).
    pub fn uniform_relation(
        self,
        name: impl Into<String>,
        attr_names: &[&str],
        column: &Column,
    ) -> Self {
        let attrs: Vec<(&str, Column)> = attr_names.iter().map(|&n| (n, column.clone())).collect();
        self.relation(name, &attrs)
    }

    /// Finish, producing the immutable catalog.
    pub fn build(self) -> Result<Catalog, CatalogError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let mut schema = Schema::new();
        let mut columns = Vec::with_capacity(self.relations.len());
        for (name, attrs) in self.relations {
            let rel = RelationSchema::new(name, attrs.iter().map(|(n, _)| n.clone()))?;
            schema.add_relation(rel)?;
            columns.push(attrs.into_iter().map(|(_, c)| c).collect());
        }
        Catalog::new(Arc::new(schema), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrRef;

    #[test]
    fn uniform_relation() {
        let col = Column::int_range(0, 5);
        let c = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y"], &col)
            .build()
            .unwrap();
        let r = c.schema().rel_id("R").unwrap();
        assert_eq!(c.column(AttrRef::new(r, 0)), c.column(AttrRef::new(r, 1)));
    }

    #[test]
    fn duplicate_relation_propagates() {
        let col = Column::int_range(0, 2);
        let err = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("R", &["X"], &col)
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn duplicate_attribute_propagates() {
        let col = Column::int_range(0, 2);
        let err = CatalogBuilder::new()
            .relation("R", &[("X", col.clone()), ("X", col)])
            .build();
        assert!(err.is_err());
    }
}
