//! A small, fast, non-cryptographic hasher (the FxHash algorithm used by
//! rustc), implemented from scratch so the workspace avoids SipHash overhead
//! on the hot tuple/value maps without pulling in a dependency.
//!
//! HashDoS resistance is irrelevant here: all hashed data is produced by the
//! local workload generators or by the seller's own catalog.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash mixing function: multiply-rotate per written word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = FxHasher::default();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
        // Tail lengths must not collide with padded zero bytes.
        assert_ne!(hash_of(&[0u8; 3].as_slice()), hash_of(&[0u8; 4].as_slice()));
    }

    #[test]
    fn usable_in_collections() {
        let mut m: FxHashMap<&str, i32> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
