//! `.qdp` — a small line-oriented text format for catalogs, instances, and
//! selection-view price directives.
//!
//! ```text
//! # Figure 1 of the paper
//! schema R(X)
//! schema S(X, Y)
//! column R.X = {a1, a2, a3, a4}
//! column S.X = {a1, a2, a3, a4}
//! column S.Y = {b1, b2, b3}
//! tuple R(a1)
//! tuple S(a1, b1)
//! price S.Y=b1 100
//! ```
//!
//! Values use [`crate::Value::parse_literal`] syntax (integers, bare
//! identifiers, or `'quoted strings'`). Prices are non-negative integers in
//! the workspace's fixed-point money unit (cents); their interpretation
//! belongs to `qbdp-core`.

use crate::builder::CatalogBuilder;
use crate::catalog::Catalog;
use crate::column::Column;
use crate::error::CatalogError;
use crate::instance::Instance;
use crate::schema::AttrRef;
use crate::tuple::Tuple;
use crate::value::Value;

/// A parsed `.qdp` file: catalog, instance, and raw price directives.
#[derive(Clone, Debug)]
pub struct QdpFile {
    /// Schema + columns.
    pub catalog: Catalog,
    /// The tuples.
    pub instance: Instance,
    /// `price R.X=a <cents>` directives, resolved against the schema.
    pub prices: Vec<(AttrRef, Value, u64)>,
}

impl QdpFile {
    /// Parse a full `.qdp` document.
    pub fn parse(text: &str) -> Result<QdpFile, CatalogError> {
        // Pass 1: collect raw directives with line numbers.
        let mut schemas: Vec<(usize, String, Vec<String>)> = Vec::new();
        let mut columns: Vec<(usize, String, Vec<Value>)> = Vec::new();
        let mut tuples: Vec<(usize, String, Vec<Value>)> = Vec::new();
        let mut prices: Vec<(usize, String, Value, u64)> = Vec::new();

        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let err = |message: String| CatalogError::Parse {
                line: lineno,
                message,
            };
            let (keyword, rest) = line
                .split_once(char::is_whitespace)
                .ok_or_else(|| err(format!("expected directive, got `{line}`")))?;
            let rest = rest.trim();
            match keyword {
                "schema" => {
                    let (name, attrs) = parse_call(rest)
                        .ok_or_else(|| err(format!("bad schema syntax `{rest}`")))?;
                    schemas.push((
                        lineno,
                        name.to_string(),
                        attrs.iter().map(|s| s.to_string()).collect(),
                    ));
                }
                "column" => {
                    let (attr, set) = rest
                        .split_once('=')
                        .ok_or_else(|| err(format!("bad column syntax `{rest}`")))?;
                    let set = set.trim();
                    if !(set.starts_with('{') && set.ends_with('}')) {
                        return Err(err(format!("column values must be `{{...}}`, got `{set}`")));
                    }
                    let values = parse_value_list(&set[1..set.len() - 1])
                        .ok_or_else(|| err(format!("bad value in column set `{set}`")))?;
                    columns.push((lineno, attr.trim().to_string(), values));
                }
                "tuple" => {
                    let (name, args) = parse_call(rest)
                        .ok_or_else(|| err(format!("bad tuple syntax `{rest}`")))?;
                    let values = args
                        .iter()
                        .map(|a| Value::parse_literal(a))
                        .collect::<Option<Vec<_>>>()
                        .ok_or_else(|| err(format!("bad value in tuple `{rest}`")))?;
                    tuples.push((lineno, name.to_string(), values));
                }
                "price" => {
                    let (sel, amount) = rest
                        .rsplit_once(char::is_whitespace)
                        .ok_or_else(|| err(format!("bad price syntax `{rest}`")))?;
                    let amount: u64 = amount
                        .trim()
                        .parse()
                        .map_err(|_| err(format!("bad price amount `{amount}`")))?;
                    let (attr, value) = sel.split_once('=').ok_or_else(|| {
                        err(format!("price selector must be `R.X=a`, got `{sel}`"))
                    })?;
                    let value = Value::parse_literal(value)
                        .ok_or_else(|| err(format!("bad price value `{value}`")))?;
                    prices.push((lineno, attr.trim().to_string(), value, amount));
                }
                other => return Err(err(format!("unknown directive `{other}`"))),
            }
        }

        // Pass 2: assemble the catalog. Every schema attribute needs a column.
        let mut builder = CatalogBuilder::new();
        for (lineno, name, attrs) in &schemas {
            let mut rel_attrs: Vec<(&str, Column)> = Vec::with_capacity(attrs.len());
            for attr in attrs {
                let dotted_suffix = format!("{name}.{attr}");
                let col = columns
                    .iter()
                    .find(|(_, a, _)| *a == dotted_suffix)
                    .map(|(_, _, vals)| Column::new(vals.iter().cloned()))
                    .ok_or_else(|| CatalogError::Parse {
                        line: *lineno,
                        message: format!("no `column {dotted_suffix} = {{...}}` declared"),
                    })?;
                rel_attrs.push((attr, col));
            }
            builder = builder.relation(name.clone(), &rel_attrs);
        }
        let catalog = builder.build()?;

        // Pass 3: tuples + price directives, resolved against the schema.
        let mut instance = catalog.empty_instance();
        for (lineno, name, values) in tuples {
            let rel = catalog.schema().rel_id(&name).ok_or(CatalogError::Parse {
                line: lineno,
                message: format!("tuple for undeclared relation `{name}`"),
            })?;
            instance
                .insert(rel, Tuple::new(values))
                .map_err(|e| CatalogError::Parse {
                    line: lineno,
                    message: e.to_string(),
                })?;
        }
        catalog.check_instance(&instance)?;

        let mut resolved_prices = Vec::with_capacity(prices.len());
        for (lineno, attr, value, amount) in prices {
            let aref = catalog
                .schema()
                .resolve_attr(&attr)
                .map_err(|e| CatalogError::Parse {
                    line: lineno,
                    message: e.to_string(),
                })?;
            if !catalog.column(aref).contains(&value) {
                return Err(CatalogError::Parse {
                    line: lineno,
                    message: format!("price on value {value} outside column of {attr}"),
                });
            }
            resolved_prices.push((aref, value, amount));
        }

        Ok(QdpFile {
            catalog,
            instance,
            prices: resolved_prices,
        })
    }

    /// Serialize back to `.qdp` text (stable ordering; reparses to an equal
    /// catalog/instance/price set).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let schema = self.catalog.schema();
        for (_, rel) in schema.iter() {
            out.push_str(&format!(
                "schema {}({})\n",
                rel.name(),
                rel.attrs().join(", ")
            ));
        }
        for (rid, rel) in schema.iter() {
            for (pos, attr) in rel.attrs().iter().enumerate() {
                let col = self.catalog.column(AttrRef::new(rid, pos as u32));
                let vals: Vec<String> = col.iter().map(render_value).collect();
                out.push_str(&format!(
                    "column {}.{} = {{{}}}\n",
                    rel.name(),
                    attr,
                    vals.join(", ")
                ));
            }
        }
        for (rid, rel) in schema.iter() {
            let mut rows: Vec<&Tuple> = self.instance.relation(rid).iter().collect();
            rows.sort();
            for t in rows {
                let vals: Vec<String> = t.iter().map(render_value).collect();
                out.push_str(&format!("tuple {}({})\n", rel.name(), vals.join(", ")));
            }
        }
        for (aref, value, amount) in &self.prices {
            out.push_str(&format!(
                "price {}={} {}\n",
                schema.attr_display(*aref),
                render_value(value),
                amount
            ));
        }
        out
    }
}

/// Render a value in literal syntax that `parse_literal` accepts.
fn render_value(v: &Value) -> String {
    v.render_literal()
}

/// Parse `Name(a, b, c)` into the name and raw argument strings.
fn parse_call(s: &str) -> Option<(&str, Vec<&str>)> {
    let open = s.find('(')?;
    if !s.ends_with(')') {
        return None;
    }
    let name = s[..open].trim();
    if name.is_empty() {
        return None;
    }
    let inner = &s[open + 1..s.len() - 1];
    if inner.trim().is_empty() {
        return Some((name, Vec::new()));
    }
    Some((name, inner.split(',').map(str::trim).collect()))
}

fn parse_value_list(s: &str) -> Option<Vec<Value>> {
    if s.trim().is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(Value::parse_literal).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrId, RelId};

    const FIG1: &str = r#"
# Figure 1(a) of the paper
schema R(X)
schema S(X, Y)
schema T(Y)
column R.X = {a1, a2, a3, a4}
column S.X = {a1, a2, a3, a4}
column S.Y = {b1, b2, b3}
column T.Y = {b1, b2, b3}
tuple R(a1)
tuple R(a2)
tuple S(a1, b1)
tuple S(a1, b2)
tuple S(a2, b2)
tuple T(b1)
tuple T(b3)
price S.Y=b1 100
price T.Y=b3 250
"#;

    #[test]
    fn parse_figure1() {
        let f = QdpFile::parse(FIG1).unwrap();
        assert_eq!(f.catalog.schema().len(), 3);
        let s = f.catalog.schema().rel_id("S").unwrap();
        assert_eq!(f.instance.relation(s).len(), 3);
        assert_eq!(f.prices.len(), 2);
        let (aref, v, p) = &f.prices[0];
        assert_eq!(*aref, AttrRef::new(s, 1));
        assert_eq!(v, &Value::text("b1"));
        assert_eq!(*p, 100);
    }

    #[test]
    fn roundtrip() {
        let f = QdpFile::parse(FIG1).unwrap();
        let text = f.to_text();
        let g = QdpFile::parse(&text).unwrap();
        assert_eq!(f.catalog.schema().as_ref(), g.catalog.schema().as_ref());
        assert!(f.instance.same_extension(&g.instance));
        assert_eq!(f.prices, g.prices);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "schema R(X)\ncolumn R.X = {a}\nnonsense here\n";
        match QdpFile::parse(bad) {
            Err(CatalogError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_column_rejected() {
        let bad = "schema R(X, Y)\ncolumn R.X = {a}\n";
        assert!(QdpFile::parse(bad).is_err());
    }

    #[test]
    fn tuple_outside_column_rejected() {
        let bad = "schema R(X)\ncolumn R.X = {a}\ntuple R(zz)\n";
        assert!(QdpFile::parse(bad).is_err());
    }

    #[test]
    fn price_on_unknown_value_rejected() {
        let bad = "schema R(X)\ncolumn R.X = {a}\nprice R.X=b 10\n";
        assert!(QdpFile::parse(bad).is_err());
    }

    #[test]
    fn quoted_and_negative_values() {
        let text =
            "schema R(X)\ncolumn R.X = {'two words', -5}\ntuple R(-5)\ntuple R('two words')\n";
        let f = QdpFile::parse(text).unwrap();
        assert_eq!(f.instance.relation(RelId(0)).len(), 2);
        assert!(f
            .instance
            .relation(RelId(0))
            .select(AttrId(0), &Value::text("two words"))
            .next()
            .is_some());
        // Round-trips through quoting.
        let g = QdpFile::parse(&f.to_text()).unwrap();
        assert!(f.instance.same_extension(&g.instance));
    }
}
