//! Database instances `D = (R_1^D, ..., R_k^D)` with per-attribute indexes.
//!
//! The paper's dynamic setting (§2.7) considers only insertions, so
//! [`Relation`] and [`Instance`] are insert-only; this keeps the indexes
//! append-only and makes the `D_1 ⊆ D_2` monotonicity experiments exact.

use crate::error::CatalogError;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::schema::{AttrId, RelId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use std::sync::Arc;

/// The extension of a single relation: a set of tuples plus one hash index
/// per attribute position (value → tuple indices).
#[derive(Clone, Debug, Default)]
pub struct Relation {
    tuples: Vec<Tuple>,
    set: FxHashSet<Tuple>,
    index: Vec<FxHashMap<Value, Vec<u32>>>,
}

impl Relation {
    fn with_arity(arity: usize) -> Self {
        Relation {
            tuples: Vec::new(),
            set: FxHashSet::default(),
            index: (0..arity).map(|_| FxHashMap::default()).collect(),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.set.contains(t)
    }

    /// Iterate over the tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Tuples whose attribute `attr` equals `v` — the extension of the
    /// selection view `σ_{R.attr=v}(D)`.
    pub fn select(&self, attr: AttrId, v: &Value) -> impl Iterator<Item = &Tuple> {
        self.index[attr.0 as usize]
            .get(v)
            .into_iter()
            .flatten()
            .map(move |&i| &self.tuples[i as usize])
    }

    /// Number of tuples with `attr = v`, without materializing them.
    pub fn select_count(&self, attr: AttrId, v: &Value) -> usize {
        self.index[attr.0 as usize].get(v).map_or(0, Vec::len)
    }

    /// Distinct values appearing in attribute `attr` (the active domain of
    /// that position).
    pub fn active_values(&self, attr: AttrId) -> impl Iterator<Item = &Value> {
        self.index[attr.0 as usize].keys()
    }

    fn insert(&mut self, t: Tuple) -> bool {
        if !self.set.insert(t.clone()) {
            return false;
        }
        let idx = self.tuples.len() as u32;
        for (pos, v) in t.iter().enumerate() {
            self.index[pos].entry(v.clone()).or_default().push(idx);
        }
        self.tuples.push(t);
        true
    }
}

/// A database instance over a shared [`Schema`].
#[derive(Clone, Debug)]
pub struct Instance {
    schema: Arc<Schema>,
    relations: Vec<Relation>,
}

impl Instance {
    /// The empty instance over a schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        let relations = schema
            .iter()
            .map(|(_, r)| Relation::with_arity(r.arity()))
            .collect();
        Instance { schema, relations }
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The extension of a relation.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.0 as usize]
    }

    /// Insert a tuple; returns `Ok(true)` if it was new. Checks arity only —
    /// column-inclusion checks belong to [`crate::Catalog::check_instance`].
    pub fn insert(&mut self, rel: RelId, t: Tuple) -> Result<bool, CatalogError> {
        let rs = self.schema.relation(rel);
        if t.arity() != rs.arity() {
            return Err(CatalogError::ArityMismatch {
                relation: rs.name().to_string(),
                expected: rs.arity(),
                got: t.arity(),
            });
        }
        Ok(self.relations[rel.0 as usize].insert(t))
    }

    /// Insert many tuples into one relation.
    pub fn insert_all(
        &mut self,
        rel: RelId,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<usize, CatalogError> {
        let mut added = 0;
        for t in tuples {
            if self.insert(rel, t)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// `self ⊆ other`: every tuple of every relation of `self` appears in
    /// `other` (schemas must be the same object or equal).
    pub fn is_subset_of(&self, other: &Instance) -> bool {
        self.schema.as_ref() == other.schema.as_ref()
            && self
                .relations
                .iter()
                .zip(&other.relations)
                .all(|(a, b)| a.iter().all(|t| b.contains(t)))
    }

    /// Instance equality as sets of tuples (insertion order ignored).
    pub fn same_extension(&self, other: &Instance) -> bool {
        self.schema.as_ref() == other.schema.as_ref()
            && self
                .relations
                .iter()
                .zip(&other.relations)
                .all(|(a, b)| a.len() == b.len() && a.iter().all(|t| b.contains(t)))
    }

    /// A copy of `self` with the extra tuples inserted (convenience for the
    /// `D' = D ∪ {...}` constructions in determinacy proofs and tests).
    pub fn with_tuples(
        &self,
        extra: impl IntoIterator<Item = (RelId, Tuple)>,
    ) -> Result<Instance, CatalogError> {
        let mut out = self.clone();
        for (rel, t) in extra {
            out.insert(rel, t)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple;

    fn schema_rs() -> Arc<Schema> {
        let mut s = Schema::new();
        s.add_relation(RelationSchema::new("R", ["X"]).unwrap())
            .unwrap();
        s.add_relation(RelationSchema::new("S", ["X", "Y"]).unwrap())
            .unwrap();
        Arc::new(s)
    }

    #[test]
    fn insert_and_lookup() {
        let schema = schema_rs();
        let s_id = schema.rel_id("S").unwrap();
        let mut d = Instance::empty(schema);
        assert!(d.insert(s_id, tuple!["a1", "b1"]).unwrap());
        assert!(!d.insert(s_id, tuple!["a1", "b1"]).unwrap());
        assert!(d.insert(s_id, tuple!["a1", "b2"]).unwrap());
        let rel = d.relation(s_id);
        assert_eq!(rel.len(), 2);
        assert!(rel.contains(&tuple!["a1", "b2"]));
        assert_eq!(rel.select(AttrId(0), &Value::text("a1")).count(), 2);
        assert_eq!(rel.select(AttrId(1), &Value::text("b2")).count(), 1);
        assert_eq!(rel.select_count(AttrId(1), &Value::text("zzz")), 0);
    }

    #[test]
    fn arity_checked() {
        let schema = schema_rs();
        let r_id = schema.rel_id("R").unwrap();
        let mut d = Instance::empty(schema);
        assert!(d.insert(r_id, tuple!["a", "b"]).is_err());
    }

    #[test]
    fn subset_and_equality() {
        let schema = schema_rs();
        let r_id = schema.rel_id("R").unwrap();
        let mut d1 = Instance::empty(schema.clone());
        d1.insert(r_id, tuple!["a"]).unwrap();
        let d2 = d1.with_tuples([(r_id, tuple!["b"])]).unwrap();
        assert!(d1.is_subset_of(&d2));
        assert!(!d2.is_subset_of(&d1));
        assert!(d1.same_extension(&d1.clone()));
        assert!(!d1.same_extension(&d2));
        assert_eq!(d2.total_tuples(), 2);
    }

    #[test]
    fn active_values() {
        let schema = schema_rs();
        let s_id = schema.rel_id("S").unwrap();
        let mut d = Instance::empty(schema);
        d.insert_all(s_id, [tuple!["a", "b"], tuple!["a", "c"]])
            .unwrap();
        let mut vals: Vec<String> = d
            .relation(s_id)
            .active_values(AttrId(0))
            .map(|v| v.to_string())
            .collect();
        vals.sort();
        assert_eq!(vals, ["a"]);
        assert_eq!(d.relation(s_id).active_values(AttrId(1)).count(), 2);
    }
}
