//! Tuples: fixed-arity sequences of values.

use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// A database tuple. Stored as a boxed slice: two words on the stack, no
/// spare capacity (tuples are immutable once inserted).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        Tuple(values.into_iter().collect())
    }

    /// Arity of the tuple.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Value at a position.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// The underlying value slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Iterate over the values.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.0.iter()
    }

    /// A new tuple keeping only the listed positions, in the listed order.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// A new tuple with position `i` removed (used when projecting out a
    /// hanging-variable attribute, paper Step 3).
    pub fn without_position(&self, i: usize) -> Tuple {
        Tuple(
            self.0
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| v.clone())
                .collect(),
        )
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(vs: [Value; N]) -> Self {
        Tuple::new(vs)
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(vs: Vec<Value>) -> Self {
        Tuple(vs.into_boxed_slice())
    }
}

/// Shorthand for building a [`Tuple`] out of anything convertible to
/// [`Value`]: `tuple!["a1", "b1"]`, `tuple![1, "x"]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new([$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let t = tuple![1, "x"];
        assert_eq!(t.arity(), 2);
        assert_eq!(t[0], Value::Int(1));
        assert_eq!(t.get(1), &Value::text("x"));
        assert_eq!(t.to_string(), "(1, x)");
        assert_eq!(format!("{t:?}"), "(1, 'x')");
    }

    #[test]
    fn project() {
        let t = tuple!["a", "b", "c"];
        assert_eq!(t.project(&[2, 0]), tuple!["c", "a"]);
        assert_eq!(t.project(&[]), Tuple::new([]));
    }

    #[test]
    fn without_position() {
        let t = tuple!["a", "b", "c"];
        assert_eq!(t.without_position(1), tuple!["a", "c"]);
        assert_eq!(t.without_position(0), tuple!["b", "c"]);
        assert_eq!(t.without_position(2), tuple!["a", "b"]);
    }

    #[test]
    fn equality_and_hash() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(tuple![1, 2]);
        assert!(s.contains(&tuple![1, 2]));
        assert!(!s.contains(&tuple![2, 1]));
    }
}
