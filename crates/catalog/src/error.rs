//! Error type for catalog construction and parsing.

use std::fmt;

/// Errors raised while building or loading schemas, columns, and instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A relation was declared with zero attributes.
    EmptyRelation(String),
    /// Two attributes of one relation share a name.
    DuplicateAttribute(String, String),
    /// Two relations share a name.
    DuplicateRelation(String),
    /// An `R.X` string did not contain a dot.
    BadAttrSyntax(String),
    /// A relation name did not resolve.
    UnknownRelation(String),
    /// An attribute name did not resolve within its relation.
    UnknownAttribute(String, String),
    /// A tuple's arity does not match its relation's schema.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// A tuple value is outside the declared column `Col_{R.X}` — violates
    /// the inclusion constraint of paper §3.
    ValueOutsideColumn {
        /// The attribute position `R.X`, rendered.
        attr: String,
        /// The offending value, rendered.
        value: String,
    },
    /// No column was declared for an attribute that needs one.
    MissingColumn(String),
    /// A parse error in the `.qdp` text format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable message.
        message: String,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::EmptyRelation(r) => {
                write!(f, "relation {r} declared with no attributes")
            }
            CatalogError::DuplicateAttribute(r, a) => {
                write!(f, "relation {r} declares attribute {a} twice")
            }
            CatalogError::DuplicateRelation(r) => write!(f, "relation {r} declared twice"),
            CatalogError::BadAttrSyntax(s) => {
                write!(f, "expected dotted attribute `R.X`, got `{s}`")
            }
            CatalogError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            CatalogError::UnknownAttribute(r, a) => {
                write!(f, "relation {r} has no attribute {a}")
            }
            CatalogError::ArityMismatch {
                relation,
                expected,
                got,
            } => {
                write!(
                    f,
                    "tuple for {relation} has arity {got}, schema says {expected}"
                )
            }
            CatalogError::ValueOutsideColumn { attr, value } => {
                write!(f, "value {value} is outside the declared column of {attr}")
            }
            CatalogError::MissingColumn(a) => write!(f, "no column declared for {a}"),
            CatalogError::Parse { line, message } => {
                write!(f, "qdp parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CatalogError::ArityMismatch {
            relation: "R".into(),
            expected: 2,
            got: 3,
        };
        let s = e.to_string();
        assert!(s.contains('R') && s.contains('2') && s.contains('3'));
        let e = CatalogError::Parse {
            line: 4,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 4"));
    }
}
