//! Finite columns `Col_{R.X}`: the publicly known, finite sets of values a
//! selection view may select on (paper §3, "The Views").
//!
//! A column is *not* a domain (domains may be infinite) and *not* the active
//! domain (the database need not contain every column value). Columns are
//! part of the input in data complexity and stay fixed under updates.

use crate::fxhash::FxHashMap;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A finite, deduplicated, deterministically ordered set of values.
///
/// Columns are cheap to clone (`Arc` internals) because many attributes share
/// a column — e.g. in a chain query the join variable's column is the
/// intersection of two attribute columns.
#[derive(Clone, PartialEq, Eq)]
pub struct Column {
    values: Arc<ColumnInner>,
}

#[derive(PartialEq, Eq)]
struct ColumnInner {
    /// Sorted, deduplicated values.
    ordered: Vec<Value>,
    /// Value → dense index within `ordered`.
    index: FxHashMap<Value, u32>,
}

impl Column {
    /// Build a column from any collection of values; duplicates are removed
    /// and the result is sorted, so construction order does not matter.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        let mut ordered: Vec<Value> = values.into_iter().collect();
        ordered.sort();
        ordered.dedup();
        let index = ordered
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u32))
            .collect();
        Column {
            values: Arc::new(ColumnInner { ordered, index }),
        }
    }

    /// Convenience: the integer column `{lo, lo+1, ..., hi-1}`.
    pub fn int_range(lo: i64, hi: i64) -> Self {
        Column::new((lo..hi).map(Value::Int))
    }

    /// Convenience: a column of text values.
    pub fn texts<'a>(values: impl IntoIterator<Item = &'a str>) -> Self {
        Column::new(values.into_iter().map(Value::from))
    }

    /// Number of values in the column.
    pub fn len(&self) -> usize {
        self.values.ordered.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.values.ordered.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, v: &Value) -> bool {
        self.values.index.contains_key(v)
    }

    /// Dense index of a value, if present (stable across clones).
    pub fn index_of(&self, v: &Value) -> Option<u32> {
        self.values.index.get(v).copied()
    }

    /// Value at a dense index.
    pub fn value_at(&self, i: u32) -> &Value {
        &self.values.ordered[i as usize]
    }

    /// Iterate values in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.values.ordered.iter()
    }

    /// The sorted value slice.
    pub fn as_slice(&self) -> &[Value] {
        &self.values.ordered
    }

    /// Set intersection of two columns (used for join-variable columns
    /// `Col_{x_i} = Col_{R_{i-1}.Y} ∩ Col_{R_i.X}`, paper Step 4).
    pub fn intersect(&self, other: &Column) -> Column {
        if Arc::ptr_eq(&self.values, &other.values) {
            return self.clone();
        }
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        Column::new(small.iter().filter(|v| large.contains(v)).cloned())
    }

    /// Keep only values satisfying a predicate (Step 1 of the GChQ
    /// algorithm shrinks columns by interpreted predicates).
    pub fn filter(&self, mut keep: impl FnMut(&Value) -> bool) -> Column {
        Column::new(self.iter().filter(|v| keep(v)).cloned())
    }
}

impl fmt::Debug for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<Value> for Column {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Column::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_order() {
        let c = Column::new([Value::Int(3), Value::Int(1), Value::Int(3), Value::Int(2)]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.as_slice(), &[Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(c.index_of(&Value::Int(2)), Some(1));
        assert_eq!(c.value_at(2), &Value::Int(3));
    }

    #[test]
    fn construction_order_irrelevant() {
        let a = Column::texts(["b", "a", "c"]);
        let b = Column::texts(["c", "b", "a", "a"]);
        assert_eq!(a, b);
    }

    #[test]
    fn int_range() {
        let c = Column::int_range(0, 4);
        assert_eq!(c.len(), 4);
        assert!(c.contains(&Value::Int(0)));
        assert!(!c.contains(&Value::Int(4)));
    }

    #[test]
    fn intersect() {
        let a = Column::int_range(0, 10);
        let b = Column::int_range(5, 15);
        let i = a.intersect(&b);
        assert_eq!(i, Column::int_range(5, 10));
        // Self-intersection short-circuits via pointer equality.
        assert_eq!(a.intersect(&a.clone()), a);
    }

    #[test]
    fn filter() {
        let c = Column::int_range(0, 10).filter(|v| v.as_int().unwrap() % 2 == 0);
        assert_eq!(c.len(), 5);
        assert!(c.contains(&Value::Int(8)));
        assert!(!c.contains(&Value::Int(7)));
    }

    #[test]
    fn empty() {
        let c = Column::new([]);
        assert!(c.is_empty());
        assert_eq!(c.index_of(&Value::Int(0)), None);
    }
}
