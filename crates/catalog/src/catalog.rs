//! The [`Catalog`]: a schema together with one declared [`Column`] per
//! attribute position. This is exactly the "public knowledge" of the paper's
//! pricing setting: buyers and sellers both know the schema and all columns;
//! only the instance is the seller's private, priced asset.

use crate::column::Column;
use crate::error::CatalogError;
use crate::instance::Instance;
use crate::schema::{AttrId, AttrRef, RelId, Schema};
use crate::value::Value;
use std::sync::Arc;

/// Schema + columns. Immutable after construction (columns "always remain
/// fixed when the database is updated", paper §3).
#[derive(Clone, Debug)]
pub struct Catalog {
    schema: Arc<Schema>,
    /// `columns[rel][attr]` is `Col_{R.X}`.
    columns: Vec<Vec<Column>>,
}

impl Catalog {
    /// Assemble a catalog; `columns[r][a]` must cover every relation/attr.
    /// Prefer [`crate::CatalogBuilder`] for ergonomic construction.
    pub fn new(schema: Arc<Schema>, columns: Vec<Vec<Column>>) -> Result<Self, CatalogError> {
        for (rid, rel) in schema.iter() {
            let cols = columns
                .get(rid.0 as usize)
                .ok_or_else(|| CatalogError::MissingColumn(rel.name().to_string()))?;
            if cols.len() != rel.arity() {
                return Err(CatalogError::MissingColumn(format!(
                    "{} (declared {} of {} columns)",
                    rel.name(),
                    cols.len(),
                    rel.arity()
                )));
            }
        }
        Ok(Catalog { schema, columns })
    }

    /// The shared schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The column of an attribute position.
    pub fn column(&self, a: AttrRef) -> &Column {
        &self.columns[a.rel.0 as usize][a.attr.0 as usize]
    }

    /// All columns of one relation, in attribute order.
    pub fn relation_columns(&self, rel: RelId) -> &[Column] {
        &self.columns[rel.0 as usize]
    }

    /// An empty instance over this catalog's schema.
    pub fn empty_instance(&self) -> Instance {
        Instance::empty(self.schema.clone())
    }

    /// Verify the inclusion constraint `R.X ⊆ Col_{R.X}` for every tuple of
    /// every relation. Returns the first violation found.
    pub fn check_instance(&self, d: &Instance) -> Result<(), CatalogError> {
        for (rid, rel) in self.schema.iter() {
            for t in d.relation(rid).iter() {
                for (pos, v) in t.iter().enumerate() {
                    let aref = AttrRef {
                        rel: rid,
                        attr: AttrId(pos as u32),
                    };
                    if !self.column(aref).contains(v) {
                        return Err(CatalogError::ValueOutsideColumn {
                            attr: format!("{}.{}", rel.name(), rel.attr_name(AttrId(pos as u32))),
                            value: v.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of tuples in the full column-product of a relation — the size
    /// of the "maximal possible world" for that relation, used by the
    /// determinacy oracle's complexity accounting.
    pub fn product_size(&self, rel: RelId) -> usize {
        self.columns[rel.0 as usize]
            .iter()
            .map(Column::len)
            .try_fold(1usize, usize::checked_mul)
            .unwrap_or(usize::MAX)
    }

    /// Enumerate the full column-product of a relation: every tuple over the
    /// declared columns. The closure receives each candidate tuple as a value
    /// slice; return `false` from it to stop early.
    pub fn for_each_product_tuple(&self, rel: RelId, mut f: impl FnMut(&[Value]) -> bool) -> bool {
        let cols = &self.columns[rel.0 as usize];
        if cols.iter().any(Column::is_empty) {
            return true;
        }
        let arity = cols.len();
        let mut idx = vec![0u32; arity];
        let mut buf: Vec<Value> = cols.iter().map(|c| c.value_at(0).clone()).collect();
        loop {
            if !f(&buf) {
                return false;
            }
            // Odometer increment.
            let mut pos = arity;
            loop {
                if pos == 0 {
                    return true;
                }
                pos -= 1;
                idx[pos] += 1;
                if (idx[pos] as usize) < cols[pos].len() {
                    buf[pos] = cols[pos].value_at(idx[pos]).clone();
                    break;
                }
                idx[pos] = 0;
                buf[pos] = cols[pos].value_at(0).clone();
            }
        }
    }

    /// Total number of selection views in `Σ` (one per attribute per column
    /// value) — the size of the seller's maximal price list.
    pub fn sigma_size(&self) -> usize {
        self.schema
            .all_attrs()
            .iter()
            .map(|&a| self.column(a).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CatalogBuilder;
    use crate::tuple;

    fn small_catalog() -> Catalog {
        CatalogBuilder::new()
            .relation("R", &[("X", Column::int_range(0, 2))])
            .relation(
                "S",
                &[
                    ("X", Column::int_range(0, 2)),
                    ("Y", Column::int_range(0, 3)),
                ],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn column_lookup() {
        let c = small_catalog();
        let s = c.schema().rel_id("S").unwrap();
        assert_eq!(c.column(AttrRef::new(s, 1)).len(), 3);
        assert_eq!(c.relation_columns(s).len(), 2);
        assert_eq!(c.sigma_size(), 2 + 2 + 3);
    }

    #[test]
    fn inclusion_constraint() {
        let c = small_catalog();
        let s = c.schema().rel_id("S").unwrap();
        let mut d = c.empty_instance();
        d.insert(s, tuple![1, 2]).unwrap();
        assert!(c.check_instance(&d).is_ok());
        d.insert(s, tuple![1, 99]).unwrap();
        let err = c.check_instance(&d).unwrap_err();
        assert!(err.to_string().contains("S.Y"));
    }

    #[test]
    fn product_enumeration() {
        let c = small_catalog();
        let s = c.schema().rel_id("S").unwrap();
        assert_eq!(c.product_size(s), 6);
        let mut seen = Vec::new();
        c.for_each_product_tuple(s, |vals| {
            seen.push(Tuple::new(vals.to_vec()));
            true
        });
        assert_eq!(seen.len(), 6);
        assert!(seen.contains(&tuple![1, 2]));
        // Early stop.
        let mut count = 0;
        let completed = c.for_each_product_tuple(s, |_| {
            count += 1;
            count < 3
        });
        assert!(!completed);
        assert_eq!(count, 3);
    }

    use crate::tuple::Tuple;
}
