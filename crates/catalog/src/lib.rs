#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! # qbdp-catalog — relational substrate for query-based data pricing
//!
//! This crate implements the data model of *Koutris, Upadhyaya, Balazinska,
//! Howe, Suciu: "Query-Based Data Pricing", PODS 2012*:
//!
//! * a relational [`Schema`] of named relations with named attributes,
//! * typed [`Value`]s and [`Tuple`]s,
//! * finite, publicly-known [`Column`]s `Col_{R.X}` per attribute — the sets
//!   of values a selection view `σ_{R.X=a}` may select on, satisfying the
//!   inclusion constraint `R.X ⊆ Col_{R.X}` (paper §3, "The Views"),
//! * database [`Instance`]s with per-attribute hash indexes,
//! * a [`Catalog`] bundling a schema with its columns,
//! * a small line-oriented text format ([`qdp`]) for catalogs, instances and
//!   raw price directives.
//!
//! Everything downstream (queries, determinacy, pricing) is built on these
//! types. The crate has no third-party dependencies.

pub mod builder;
pub mod catalog;
pub mod column;
pub mod error;
pub mod fxhash;
pub mod instance;
pub mod qdp;
pub mod schema;
pub mod tuple;
pub mod value;

pub use builder::CatalogBuilder;
pub use catalog::Catalog;
pub use column::Column;
pub use error::CatalogError;
pub use fxhash::{FxHashMap, FxHashSet};
pub use instance::{Instance, Relation};
pub use qdp::QdpFile;
pub use schema::{AttrId, AttrRef, RelId, RelationSchema, Schema};
pub use tuple::Tuple;
pub use value::Value;
