//! Typed constants appearing in database tuples, columns, and queries.

use std::fmt;

/// A database constant.
///
/// The paper works over abstract domains; two concrete types cover all the
/// scenarios it discusses (business names, state codes, team ids, numeric
/// statistics): 64-bit integers and strings. `Value` is totally ordered
/// (integers before texts) so columns can be kept sorted and deterministic.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer constant, e.g. a game id or an IP octet.
    Int(i64),
    /// A string constant, e.g. `"WA"` or `"Seattle Mariners"`.
    Text(Box<str>),
}

impl Value {
    /// Construct a text value.
    pub fn text(s: impl Into<Box<str>>) -> Self {
        Value::Text(s.into())
    }

    /// Construct an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Text(_) => None,
        }
    }

    /// Returns the text payload, if this is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Text(s) => Some(s),
        }
    }

    /// Parse a value from its literal syntax: a decimal integer, a
    /// single-quoted string (`'WA'`), or a bare identifier treated as text.
    ///
    /// This is the syntax used by the `.qdp` format and the query parser.
    pub fn parse_literal(s: &str) -> Option<Value> {
        let s = s.trim();
        if s.is_empty() {
            return None;
        }
        if let Ok(i) = s.parse::<i64>() {
            return Some(Value::Int(i));
        }
        if s.len() >= 2 && s.starts_with('\'') && s.ends_with('\'') {
            return Some(Value::text(&s[1..s.len() - 1]));
        }
        // Bare identifiers: must start with a letter and contain no quotes
        // or whitespace, so that the surrounding grammar stays unambiguous.
        let mut chars = s.chars();
        let first = chars.next()?;
        if first.is_ascii_alphabetic()
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Some(Value::text(s));
        }
        None
    }

    /// Render back to the literal syntax [`Value::parse_literal`]
    /// accepts: integers bare, identifier-shaped texts bare, everything
    /// else single-quoted. Round-trips for every value the parser can
    /// produce, so the `.qdp` format and the durable event log can use it
    /// as their wire form.
    pub fn render_literal(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Text(s) => {
                let bare = !s.is_empty()
                    && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic())
                    && s.chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
                if bare {
                    s.to_string()
                } else {
                    format!("'{s}'")
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::text(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s.into_boxed_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_integers() {
        assert_eq!(Value::parse_literal("42"), Some(Value::Int(42)));
        assert_eq!(Value::parse_literal("-7"), Some(Value::Int(-7)));
        assert_eq!(Value::parse_literal("  13 "), Some(Value::Int(13)));
    }

    #[test]
    fn literal_quoted_text() {
        assert_eq!(Value::parse_literal("'WA'"), Some(Value::text("WA")));
        assert_eq!(Value::parse_literal("''"), Some(Value::text("")));
        assert_eq!(
            Value::parse_literal("'two words'"),
            Some(Value::text("two words"))
        );
    }

    #[test]
    fn literal_bare_identifier() {
        assert_eq!(Value::parse_literal("a1"), Some(Value::text("a1")));
        assert_eq!(
            Value::parse_literal("sea-town_9"),
            Some(Value::text("sea-town_9"))
        );
        assert_eq!(Value::parse_literal("9lives"), None);
        assert_eq!(Value::parse_literal("has space"), None);
        assert_eq!(Value::parse_literal(""), None);
    }

    #[test]
    fn ordering_ints_before_text() {
        assert!(Value::Int(999) < Value::text("a"));
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::text("a") < Value::text("b"));
    }

    #[test]
    fn display_roundtrip_for_identifiers() {
        let v = Value::text("b2");
        assert_eq!(Value::parse_literal(&v.to_string()), Some(v));
        let v = Value::Int(-3);
        assert_eq!(Value::parse_literal(&v.to_string()), Some(v));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("x"), Value::text("x"));
        assert_eq!(Value::from(String::from("y")), Value::text("y"));
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_text(), None);
        assert_eq!(Value::text("z").as_text(), Some("z"));
        assert_eq!(Value::text("z").as_int(), None);
    }
}
