//! Relational schemas: relation names, attribute names, and stable ids.

use crate::error::CatalogError;
use crate::fxhash::FxHashMap;
use std::fmt;

/// Index of a relation within a [`Schema`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

/// Index of an attribute within its relation (0-based position).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

/// A fully qualified attribute position `R.X`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrRef {
    /// The relation `R`.
    pub rel: RelId,
    /// The attribute `X` (by position).
    pub attr: AttrId,
}

impl AttrRef {
    /// Construct an attribute reference from raw indices.
    pub fn new(rel: RelId, attr: u32) -> Self {
        AttrRef {
            rel,
            attr: AttrId(attr),
        }
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R#{}", self.0)
    }
}

impl fmt::Debug for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A#{}", self.0)
    }
}

impl fmt::Debug for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R#{}.A#{}", self.rel.0, self.attr.0)
    }
}

/// The schema of one relation: its name and attribute names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationSchema {
    name: String,
    attrs: Vec<String>,
}

impl RelationSchema {
    /// Build a relation schema. Attribute names must be distinct.
    pub fn new(
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<Self, CatalogError> {
        let name = name.into();
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        if attrs.is_empty() {
            return Err(CatalogError::EmptyRelation(name));
        }
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].contains(a) {
                return Err(CatalogError::DuplicateAttribute(name, a.clone()));
            }
        }
        Ok(RelationSchema { name, attrs })
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute names, in positional order.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Attribute name at a position.
    pub fn attr_name(&self, attr: AttrId) -> &str {
        &self.attrs[attr.0 as usize]
    }

    /// Position of a named attribute.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attrs
            .iter()
            .position(|a| a == name)
            .map(|i| AttrId(i as u32))
    }
}

/// A fixed relational schema `R = (R_1, ..., R_k)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    relations: Vec<RelationSchema>,
    by_name: FxHashMap<String, RelId>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Add a relation; returns its id. Fails on duplicate names.
    pub fn add_relation(&mut self, rel: RelationSchema) -> Result<RelId, CatalogError> {
        if self.by_name.contains_key(rel.name()) {
            return Err(CatalogError::DuplicateRelation(rel.name().to_string()));
        }
        let id = RelId(self.relations.len() as u32);
        self.by_name.insert(rel.name().to_string(), id);
        self.relations.push(rel);
        Ok(id)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterate over `(RelId, &RelationSchema)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationSchema)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u32), r))
    }

    /// All relation ids.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + 'static {
        (0..self.relations.len() as u32).map(RelId)
    }

    /// The schema of one relation.
    pub fn relation(&self, id: RelId) -> &RelationSchema {
        &self.relations[id.0 as usize]
    }

    /// Look a relation up by name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Resolve `"R.X"`-style dotted notation to an [`AttrRef`].
    pub fn resolve_attr(&self, dotted: &str) -> Result<AttrRef, CatalogError> {
        let (rel_name, attr_name) = dotted
            .split_once('.')
            .ok_or_else(|| CatalogError::BadAttrSyntax(dotted.to_string()))?;
        let rel = self
            .rel_id(rel_name)
            .ok_or_else(|| CatalogError::UnknownRelation(rel_name.to_string()))?;
        let attr = self.relation(rel).attr_id(attr_name).ok_or_else(|| {
            CatalogError::UnknownAttribute(rel_name.to_string(), attr_name.to_string())
        })?;
        Ok(AttrRef { rel, attr })
    }

    /// Render an [`AttrRef`] as `R.X`.
    pub fn attr_display(&self, a: AttrRef) -> String {
        let rel = self.relation(a.rel);
        format!("{}.{}", rel.name(), rel.attr_name(a.attr))
    }

    /// All attribute positions of all relations, in schema order.
    pub fn all_attrs(&self) -> Vec<AttrRef> {
        let mut out = Vec::new();
        for (rid, rel) in self.iter() {
            for i in 0..rel.arity() {
                out.push(AttrRef::new(rid, i as u32));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rel_schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation(RelationSchema::new("R", ["X", "Y"]).unwrap())
            .unwrap();
        s.add_relation(RelationSchema::new("S", ["X", "Y", "Z"]).unwrap())
            .unwrap();
        s
    }

    #[test]
    fn relation_schema_validation() {
        assert!(RelationSchema::new("R", Vec::<String>::new()).is_err());
        assert!(RelationSchema::new("R", ["X", "X"]).is_err());
        let r = RelationSchema::new("R", ["X", "Y"]).unwrap();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.attr_id("Y"), Some(AttrId(1)));
        assert_eq!(r.attr_id("Z"), None);
        assert_eq!(r.attr_name(AttrId(0)), "X");
    }

    #[test]
    fn schema_lookup() {
        let s = two_rel_schema();
        assert_eq!(s.len(), 2);
        assert_eq!(s.rel_id("R"), Some(RelId(0)));
        assert_eq!(s.rel_id("S"), Some(RelId(1)));
        assert_eq!(s.rel_id("T"), None);
        assert_eq!(s.relation(RelId(1)).name(), "S");
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut s = two_rel_schema();
        let err = s.add_relation(RelationSchema::new("R", ["A"]).unwrap());
        assert!(err.is_err());
    }

    #[test]
    fn resolve_dotted_attrs() {
        let s = two_rel_schema();
        let a = s.resolve_attr("S.Z").unwrap();
        assert_eq!(a, AttrRef::new(RelId(1), 2));
        assert_eq!(s.attr_display(a), "S.Z");
        assert!(s.resolve_attr("S").is_err());
        assert!(s.resolve_attr("T.X").is_err());
        assert!(s.resolve_attr("S.W").is_err());
    }

    #[test]
    fn all_attrs_enumeration() {
        let s = two_rel_schema();
        assert_eq!(s.all_attrs().len(), 5);
    }
}
