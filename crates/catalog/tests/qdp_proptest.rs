//! Property tests for the `.qdp` text format: randomly generated catalogs,
//! instances, and price directives round-trip through serialization.

use proptest::prelude::*;
use qbdp_catalog::{AttrRef, CatalogBuilder, Column, QdpFile, Tuple, Value};

#[derive(Debug, Clone)]
struct RandomMarket {
    /// Relation arities (1..=3), up to 3 relations.
    arities: Vec<usize>,
    /// Column sizes per relation per attribute (1..=4 values).
    col_sizes: Vec<Vec<usize>>,
    /// Tuples per relation as value indices.
    tuples: Vec<Vec<Vec<usize>>>,
    /// Price directives: (relation, attribute, value index, cents).
    prices: Vec<(usize, usize, usize, u64)>,
    /// Whether columns use text or integer values.
    text_values: bool,
}

fn market_strategy() -> impl Strategy<Value = RandomMarket> {
    (proptest::collection::vec(1usize..=3, 1..=3), any::<bool>()).prop_flat_map(
        |(arities, text_values)| {
            let n_rels = arities.len();
            let col_sizes = arities
                .iter()
                .map(|&a| proptest::collection::vec(1usize..=4, a..=a))
                .collect::<Vec<_>>();
            let arities2 = arities.clone();
            (
                Just(arities),
                col_sizes,
                proptest::collection::vec(
                    (
                        0..n_rels,
                        proptest::collection::vec(0usize..4, 3),
                        1u64..10_000,
                    ),
                    0..6,
                ),
                proptest::collection::vec(
                    (0..n_rels, proptest::collection::vec(0usize..4, 3)),
                    0..8,
                ),
                Just(text_values),
            )
                .prop_map(
                    move |(arities, col_sizes, price_raw, tuple_raw, text_values)| {
                        let mut tuples: Vec<Vec<Vec<usize>>> = vec![Vec::new(); arities.len()];
                        for (rel, idxs) in tuple_raw {
                            let a = arities2[rel];
                            tuples[rel].push(idxs.into_iter().take(a).collect());
                        }
                        let prices = price_raw
                            .into_iter()
                            .map(|(rel, idxs, cents)| {
                                let attr = idxs[0] % arities2[rel];
                                (rel, attr, idxs[1], cents)
                            })
                            .collect();
                        RandomMarket {
                            arities,
                            col_sizes,
                            tuples,
                            prices,
                            text_values,
                        }
                    },
                )
        },
    )
}

fn build_file(m: &RandomMarket) -> QdpFile {
    let value = |rel: usize, attr: usize, idx: usize, size: usize| -> Value {
        let i = idx % size;
        if m.text_values {
            Value::text(format!("v{rel}-{attr}-{i}"))
        } else {
            Value::Int((rel * 100 + attr * 10 + i) as i64)
        }
    };
    let mut builder = CatalogBuilder::new();
    for (rel, &arity) in m.arities.iter().enumerate() {
        let attrs: Vec<(String, Column)> = (0..arity)
            .map(|attr| {
                let size = m.col_sizes[rel][attr];
                let col = Column::new((0..size).map(|i| value(rel, attr, i, size)));
                (format!("A{attr}"), col)
            })
            .collect();
        let attr_refs: Vec<(&str, Column)> =
            attrs.iter().map(|(n, c)| (n.as_str(), c.clone())).collect();
        builder = builder.relation(format!("Rel{rel}"), &attr_refs);
    }
    let catalog = builder.build().unwrap();
    let mut instance = catalog.empty_instance();
    for (rel, rows) in m.tuples.iter().enumerate() {
        for row in rows {
            let vals: Vec<Value> = row
                .iter()
                .enumerate()
                .map(|(attr, &idx)| value(rel, attr, idx, m.col_sizes[rel][attr]))
                .collect();
            let _ = instance.insert(qbdp_catalog::RelId(rel as u32), Tuple::new(vals));
        }
    }
    let mut prices = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for &(rel, attr, idx, cents) in &m.prices {
        let v = value(rel, attr, idx, m.col_sizes[rel][attr]);
        let aref = AttrRef::new(qbdp_catalog::RelId(rel as u32), attr as u32);
        if seen.insert((aref, v.clone())) {
            prices.push((aref, v, cents));
        }
    }
    QdpFile {
        catalog,
        instance,
        prices,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn qdp_roundtrip(m in market_strategy()) {
        let file = build_file(&m);
        let text = file.to_text();
        let parsed = QdpFile::parse(&text)
            .unwrap_or_else(|e| panic!("serialized qdp failed to parse: {e}\n{text}"));
        prop_assert_eq!(file.catalog.schema().as_ref(), parsed.catalog.schema().as_ref());
        for (rid, _) in file.catalog.schema().iter() {
            prop_assert_eq!(
                file.catalog.relation_columns(rid),
                parsed.catalog.relation_columns(rid)
            );
        }
        prop_assert!(file.instance.same_extension(&parsed.instance));
        let mut a = file.prices.clone();
        let mut b = parsed.prices.clone();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        // Serialization is canonical: a second round-trip is identical text.
        prop_assert_eq!(parsed.to_text(), text);
    }
}
