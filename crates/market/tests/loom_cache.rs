//! Loom-style exhaustive model checking of the market's two core
//! concurrency protocols, with no external dependency: a tiny
//! depth-first scheduler enumerates **every** interleaving of the
//! modelled threads at the granularity of their lock-protected
//! critical sections.
//!
//! # Protocols under check
//!
//! 1. **Quote-cache invalidation, single-column projection**
//!    (`crates/market/src/cache.rs`): bump-then-sweep epoch
//!    invalidation racing a cache fill and a cache read, projected onto
//!    one column — the degenerate case of the per-column protocol where
//!    every footprint is the same singleton, which already exhibits the
//!    bump/sweep ordering races. Invariants: a served quote always
//!    equals the price derived from the current data (*serve safety*),
//!    and no entry tagged with a dead epoch survives quiescence
//!    (*hygiene* — the module docs' "no dead entry lingers" claim).
//! 2. **Durable purchase** (`crates/market/src/durable.rs`):
//!    price-outside-the-WAL-mutex with generation revalidation, racing
//!    a durable mutation. Invariants: the market state always equals
//!    the replay of some prefix of the log (*prefix consistency* — the
//!    crash-recovery contract), and every logged purchase carries the
//!    price of the data it was appended against (*quote freshness*).
//! 3. **Per-column epoch protocol** (`crates/market/src/cache.rs` +
//!    `Market::quote_batch`): footprint stamps over two columns, a
//!    column-scoped update, and a two-slot batch quoter. On top of
//!    serve safety and hygiene, two properties specific to
//!    column-scoping: an entry whose footprint is disjoint from the
//!    update must *survive* invalidation in every interleaving
//!    (*disjoint survivor* — the whole point of column scoping), and a
//!    quote priced against the final data must not be discarded by its
//!    own stamp recheck (*utility* — catches the whole-batch-stamp
//!    refactor, which is safe but silently stops the cache from
//!    filling).
//!
//! # Why a model, and why that is sound here
//!
//! `ShardedQuoteCache` and `DurableMarket` protect every shared-state
//! transition with a lock or a single atomic; each critical section is
//! linearizable, so any execution of the real code is equivalent to
//! some interleaving of those sections. The models below reproduce the
//! protocols step-for-step at exactly that granularity — one model
//! step per critical section or bare atomic, annotated with the code
//! it mirrors — so exhaustively exploring the model covers every
//! behaviour the real scheduler can produce at this abstraction level.
//!
//! # Teeth
//!
//! Each protocol also runs in seeded-bug variants (one ordering or one
//! check deliberately broken: clear-then-bump, fill without the epoch
//! re-check, serve without the epoch check, skipping revalidation,
//! apply-before-append, sweep-then-bump, stamp-after-pricing,
//! whole-batch stamping). The same invariants must *catch* every
//! seeded bug, proving the harness can actually detect violations.

/// One scheduling decision's outcome.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Step {
    /// The thread ran one atomic step; its program counter moved.
    Ran(usize),
    /// The thread cannot run now (a mutex it needs is held).
    Blocked,
    /// The thread has finished.
    Done,
}

/// Program-counter value meaning "thread finished".
const DONE: usize = usize::MAX;

/// Depth-first exhaustive scheduler. `step(state, thread, pc)` applies
/// one atomic step and returns the next program counter; `invariant`
/// runs after every step; `at_end` runs on every fully-quiescent final
/// state. Returns the number of distinct complete executions, or the
/// first violation.
fn explore<S: Clone>(
    state: &S,
    pcs: &[usize],
    step: &impl Fn(&mut S, usize, usize) -> Step,
    invariant: &impl Fn(&S) -> Result<(), String>,
    at_end: &impl Fn(&S) -> Result<(), String>,
) -> Result<u64, String> {
    let mut ran_any = false;
    let mut executions = 0u64;
    for t in 0..pcs.len() {
        if pcs[t] == DONE {
            continue;
        }
        let mut s = state.clone();
        let next = match step(&mut s, t, pcs[t]) {
            Step::Blocked => continue,
            Step::Done => DONE,
            Step::Ran(pc) => pc,
        };
        ran_any = true;
        invariant(&s).map_err(|e| format!("after thread {t} pc {}: {e}", pcs[t]))?;
        let mut pcs2 = pcs.to_vec();
        pcs2[t] = next;
        executions += explore(&s, &pcs2, step, invariant, at_end)?;
    }
    if !ran_any {
        if pcs.iter().any(|&p| p != DONE) {
            return Err(format!("deadlock with pcs {pcs:?}"));
        }
        at_end(state)?;
        executions = 1;
    }
    Ok(executions)
}

// ---------------------------------------------------------------------
// Model 1: ShardedQuoteCache invalidation, single-column projection.
// ---------------------------------------------------------------------

/// Protocol variant knobs; `CORRECT_CACHE` mirrors the shipped code,
/// the others seed one bug each.
#[derive(Clone, Copy)]
struct CacheVariant {
    /// `invalidate_columns()` bumps the touched epochs before sweeping
    /// the shards (cache.rs `invalidate_columns`); the seeded bug
    /// sweeps first.
    bump_then_clear: bool,
    /// `insert()` re-checks the epoch under the shard lock before
    /// storing (cache.rs `insert`); the seeded bug stores blindly.
    recheck_on_insert: bool,
    /// `get()` serves an entry only if its tag equals the current
    /// epoch (cache.rs `get`); the seeded bug serves any entry.
    check_epoch_on_get: bool,
    /// Whether the updater drops the state write lock *before* the
    /// shard clear — a realistic refactor (calling `invalidate()`
    /// after the lock scope) that widens the visible window. The
    /// shipped code clears inside the critical section, but the
    /// protocol must stay safe either way: that is exactly what the
    /// get-side epoch check is for.
    release_before_clear: bool,
}

const CORRECT_CACHE: CacheVariant = CacheVariant {
    bump_then_clear: true,
    recheck_on_insert: true,
    check_epoch_on_get: true,
    release_before_clear: false,
};

#[derive(Clone)]
struct CacheState {
    /// The one modelled column's epoch (an entry of
    /// `ShardedQuoteCache::columns`).
    epoch: u64,
    /// One shard, one key: `(tagged epoch, cached quote value)`.
    entry: Option<(u64, u64)>,
    /// The data version quotes are derived from; `price(dv) == dv`, so
    /// a stale quote is immediately visible.
    dv: u64,
    /// Whether the updater currently holds the market's state write
    /// lock (its whole mutation is one multi-step critical section;
    /// readers of `dv`/quoters block on it, shard-only steps do not).
    state_write_held: bool,
    /// Quoter's epoch loaded under the state read lock.
    quoter_epoch: u64,
    /// Quoter's computed quote.
    quoter_quote: u64,
    /// `(served quote, dv at serve time)` observed by the reader.
    served: Vec<(u64, u64)>,
}

/// Threads: 0 = quoter (cache-miss fill), 1 = updater (data mutation +
/// invalidation), 2 = reader (cache hit path).
fn cache_step(v: CacheVariant) -> impl Fn(&mut CacheState, usize, usize) -> Step {
    move |s, t, pc| match (t, pc) {
        // Quoter, mirrors Market::quote_str's miss path.
        (0, 0) => {
            // Under the state read lock: load the epoch and price the
            // query against the current data (quote_str loads the
            // epoch while holding `state.read()`).
            if s.state_write_held {
                return Step::Blocked;
            }
            s.quoter_epoch = s.epoch;
            s.quoter_quote = s.dv;
            Step::Ran(1)
        }
        (0, 1) => {
            // Under the shard write lock only (the state lock was
            // dropped): cache.rs `insert` — re-check the epoch, store
            // tagged with the load-time epoch.
            if !v.recheck_on_insert || s.epoch == s.quoter_epoch {
                s.entry = Some((s.quoter_epoch, s.quoter_quote));
            }
            Step::Done
        }
        // Updater, mirrors Market::insert + invalidate_columns.
        (1, 0) => {
            // Take the state write lock; mutate the data; with the
            // shipped ordering the epoch bump (invalidate's fetch_add)
            // is also inside this critical section.
            s.state_write_held = true;
            s.dv += 1;
            if v.bump_then_clear {
                s.epoch += 1;
            }
            Step::Ran(1)
        }
        (1, 1) => {
            // Variant: the state lock may be dropped before the clear.
            if v.release_before_clear {
                s.state_write_held = false;
            }
            Step::Ran(2)
        }
        (1, 2) => {
            // Clear the shard (its own shard write lock; a concurrent
            // cache fill can interleave on either side).
            s.entry = None;
            Step::Ran(3)
        }
        (1, 3) => {
            // Seeded clear-then-bump bug: the bump lands only now,
            // leaving a window after the clear for a stale fill.
            if !v.bump_then_clear {
                s.epoch += 1;
            }
            if !v.release_before_clear {
                s.state_write_held = false;
            }
            Step::Done
        }
        // Reader, mirrors Market::quote_str's hit path: under the state
        // read lock, serve only an entry tagged with the current epoch.
        (2, 0) => {
            if s.state_write_held {
                return Step::Blocked;
            }
            if let Some((tag, quote)) = s.entry {
                if !v.check_epoch_on_get || tag == s.epoch {
                    s.served.push((quote, s.dv));
                }
            }
            Step::Done
        }
        _ => unreachable!("no such step: thread {t} pc {pc}"),
    }
}

/// Serve safety: a quote served from the cache equals the price of the
/// data current at serve time.
fn cache_invariant(s: &CacheState) -> Result<(), String> {
    for &(quote, dv) in &s.served {
        if quote != dv {
            return Err(format!(
                "stale quote served: cached {quote}, live price {dv}"
            ));
        }
    }
    Ok(())
}

/// Hygiene at quiescence: no entry tagged with a dead epoch survives
/// (the "bump-then-clear, so no dead entry lingers" claim).
fn cache_at_end(s: &CacheState) -> Result<(), String> {
    if let Some((tag, _)) = s.entry {
        if tag != s.epoch {
            return Err(format!(
                "dead entry lingers: tagged epoch {tag}, current epoch {}",
                s.epoch
            ));
        }
    }
    Ok(())
}

fn run_cache(v: CacheVariant) -> Result<u64, String> {
    let init = CacheState {
        epoch: 0,
        entry: None,
        dv: 0,
        state_write_held: false,
        quoter_epoch: 0,
        quoter_quote: 0,
        served: Vec::new(),
    };
    explore(
        &init,
        &[0, 0, 0],
        &cache_step(v),
        &cache_invariant,
        &cache_at_end,
    )
}

#[test]
fn cache_protocol_is_safe_under_all_interleavings() {
    let executions = run_cache(CORRECT_CACHE).expect("shipped protocol must be clean");
    // The schedule space must actually have been explored.
    assert!(executions >= 18, "only {executions} interleavings explored");
}

#[test]
fn seeded_clear_then_bump_leaks_a_dead_entry() {
    let err = run_cache(CacheVariant {
        bump_then_clear: false,
        ..CORRECT_CACHE
    })
    .expect_err("harness must catch the seeded ordering bug");
    assert!(err.contains("dead entry"), "unexpected violation: {err}");
}

#[test]
fn seeded_fill_without_epoch_recheck_leaks_a_dead_entry() {
    let err = run_cache(CacheVariant {
        recheck_on_insert: false,
        ..CORRECT_CACHE
    })
    .expect_err("harness must catch the missing re-check");
    assert!(err.contains("dead entry"), "unexpected violation: {err}");
}

#[test]
fn clearing_outside_the_critical_section_is_still_safe() {
    // The get-side epoch check is what makes the widened window safe.
    run_cache(CacheVariant {
        release_before_clear: true,
        ..CORRECT_CACHE
    })
    .expect("epoch-checked gets must keep the widened window safe");
}

#[test]
fn seeded_unchecked_get_serves_a_stale_quote() {
    let err = run_cache(CacheVariant {
        release_before_clear: true,
        check_epoch_on_get: false,
        ..CORRECT_CACHE
    })
    .expect_err("harness must catch the stale serve");
    assert!(err.contains("stale quote"), "unexpected violation: {err}");
}

// ---------------------------------------------------------------------
// Model 2: DurableMarket purchase vs. durable mutation.
// ---------------------------------------------------------------------

#[derive(Clone, Copy)]
struct WalVariant {
    /// `purchase_str` re-checks the cache epoch under the WAL mutex
    /// before logging (durable.rs `purchase_str`); the seeded bug
    /// logs the possibly-stale quote unconditionally.
    revalidate_epoch: bool,
    /// Events are appended to the log before being applied (the
    /// write protocol in durable.rs module docs); the seeded bug
    /// applies the sale first.
    append_before_apply: bool,
}

const CORRECT_WAL: WalVariant = WalVariant {
    revalidate_epoch: true,
    append_before_apply: true,
};

#[derive(Clone, PartialEq, Debug)]
enum Ev {
    /// A durable data/price mutation.
    Mutate,
    /// A logged purchase: the agreed price, plus (as ghost state for
    /// the freshness invariant) the data version at append time.
    Purchase { price: u64, dv_at_append: u64 },
}

#[derive(Clone)]
struct WalState {
    log: Vec<Ev>,
    /// Data version; the arbitrage-free price of the modelled query is
    /// `dv` itself, so staleness is visible.
    dv: u64,
    /// Cache-epoch mirror: bumped by every mutation's apply.
    epoch: u64,
    /// Applied sales (the ledger).
    ledger: Vec<u64>,
    /// WAL mutex owner.
    mutex_held_by: Option<usize>,
    /// Prices acknowledged (returned `Ok`) to the buyer.
    acked: Vec<u64>,
    // Purchaser locals.
    p_epoch: u64,
    p_quote: u64,
    p_retries: u32,
}

/// Threads: 0 = purchaser (`DurableMarket::purchase_str`),
/// 1 = mutator (`DurableMarket::insert` / `set_price`).
fn wal_step(v: WalVariant) -> impl Fn(&mut WalState, usize, usize) -> Step {
    move |s, t, pc| match (t, pc) {
        // Purchaser.
        (0, 0) => {
            // Bare atomic: `self.market.cache_epoch()`.
            s.p_epoch = s.epoch;
            Step::Ran(1)
        }
        (0, 1) => {
            // Under the state read lock: `evaluate_purchase` prices
            // against the current data.
            s.p_quote = s.dv;
            Step::Ran(2)
        }
        (0, 2) => {
            // `self.wal.lock()`.
            if s.mutex_held_by.is_some() {
                return Step::Blocked;
            }
            s.mutex_held_by = Some(0);
            Step::Ran(3)
        }
        (0, 3) => {
            // Revalidate under the mutex; on mismatch drop the lock and
            // re-price (bounded retries, then Contended without an ack).
            if v.revalidate_epoch && s.epoch != s.p_epoch {
                s.mutex_held_by = None;
                s.p_retries += 1;
                return if s.p_retries > 2 {
                    Step::Done
                } else {
                    Step::Ran(0)
                };
            }
            Step::Ran(if v.append_before_apply { 4 } else { 5 })
        }
        (0, 4) => {
            // Append the purchase event.
            s.log.push(Ev::Purchase {
                price: s.p_quote,
                dv_at_append: s.dv,
            });
            Step::Ran(if v.append_before_apply { 5 } else { 6 })
        }
        (0, 5) => {
            // Apply: record the sale in the ledger.
            s.ledger.push(s.p_quote);
            Step::Ran(if v.append_before_apply { 6 } else { 4 })
        }
        (0, 6) => {
            // Release and acknowledge to the buyer.
            s.mutex_held_by = None;
            s.acked.push(s.p_quote);
            Step::Done
        }
        // Mutator.
        (1, 0) => {
            if s.mutex_held_by.is_some() {
                return Step::Blocked;
            }
            s.mutex_held_by = Some(1);
            Step::Ran(1)
        }
        (1, 1) => {
            s.log.push(Ev::Mutate);
            Step::Ran(2)
        }
        (1, 2) => {
            // Apply under the state write lock: mutate the data and
            // bump the cache epoch in the same critical section.
            s.dv += 1;
            s.epoch += 1;
            Step::Ran(3)
        }
        (1, 3) => {
            s.mutex_held_by = None;
            Step::Done
        }
        _ => unreachable!("no such step: thread {t} pc {pc}"),
    }
}

/// Replay a log prefix from genesis.
fn replay(log: &[Ev]) -> (u64, Vec<u64>) {
    let mut dv = 0;
    let mut ledger = Vec::new();
    for ev in log {
        match ev {
            Ev::Mutate => dv += 1,
            Ev::Purchase { price, .. } => ledger.push(*price),
        }
    }
    (dv, ledger)
}

/// Prefix consistency (the crash-recovery contract: cutting the log at
/// any point must recover a state the market actually passed through)
/// plus quote freshness for every logged purchase.
fn wal_invariant(s: &WalState) -> Result<(), String> {
    let consistent = (0..=s.log.len()).any(|k| replay(&s.log[..k]) == (s.dv, s.ledger.clone()));
    if !consistent {
        return Err(format!(
            "state (dv {}, ledger {:?}) is not the replay of any log prefix ({:?})",
            s.dv, s.ledger, s.log
        ));
    }
    for ev in &s.log {
        if let Ev::Purchase {
            price,
            dv_at_append,
        } = ev
        {
            if price != dv_at_append {
                return Err(format!(
                    "stale purchase logged: agreed price {price}, price at append {dv_at_append}"
                ));
            }
        }
    }
    Ok(())
}

/// At quiescence: everything applied (the state equals the full-log
/// replay) and every acknowledged purchase is in the durable ledger.
fn wal_at_end(s: &WalState) -> Result<(), String> {
    if replay(&s.log) != (s.dv, s.ledger.clone()) {
        return Err("final state does not equal full-log replay".to_string());
    }
    for p in &s.acked {
        if !s.ledger.contains(p) {
            return Err(format!("acknowledged purchase {p} missing from the ledger"));
        }
    }
    Ok(())
}

fn run_wal(v: WalVariant) -> Result<u64, String> {
    let init = WalState {
        log: Vec::new(),
        dv: 0,
        epoch: 0,
        ledger: Vec::new(),
        mutex_held_by: None,
        acked: Vec::new(),
        p_epoch: 0,
        p_quote: 0,
        p_retries: 0,
    };
    explore(&init, &[0, 0], &wal_step(v), &wal_invariant, &wal_at_end)
}

#[test]
fn durable_purchase_protocol_is_safe_under_all_interleavings() {
    let executions = run_wal(CORRECT_WAL).expect("shipped protocol must be clean");
    assert!(executions >= 10, "only {executions} interleavings explored");
}

#[test]
fn seeded_skipping_revalidation_logs_a_stale_price() {
    let err = run_wal(WalVariant {
        revalidate_epoch: false,
        ..CORRECT_WAL
    })
    .expect_err("harness must catch the stale logged purchase");
    assert!(
        err.contains("stale purchase"),
        "unexpected violation: {err}"
    );
}

#[test]
fn seeded_apply_before_append_breaks_prefix_consistency() {
    let err = run_wal(WalVariant {
        append_before_apply: false,
        ..CORRECT_WAL
    })
    .expect_err("harness must catch the unlogged application window");
    assert!(
        err.contains("not the replay"),
        "unexpected violation: {err}"
    );
}

// ---------------------------------------------------------------------
// Model 3: per-column epochs, footprint stamps, and a batch quoter.
// ---------------------------------------------------------------------

/// Protocol variant knobs for the column-scoped protocol;
/// `CORRECT_COLS` mirrors the shipped code, the others seed one bug
/// each. `updated_col` selects which column the updater touches, so
/// every seeded bug can be aimed at the column the quoter races on —
/// and the disjoint-survivor property checked on the other.
#[derive(Clone, Copy)]
struct ColVariant {
    /// `invalidate_columns()` bumps the touched epochs before sweeping
    /// matching entries out of the shards (cache.rs); the seeded bug
    /// sweeps first, opening a window where a stale fill lands with a
    /// still-current stamp.
    bump_then_sweep: bool,
    /// Each batch slot loads its own footprint stamp at its own cache
    /// lookup (market.rs `quote_batch`); the seeded bug loads one
    /// whole-batch stamp vector up front — safe (the recheck still
    /// discards), but it throws away quotes priced against the final
    /// data, so the cache silently stops filling under update load.
    per_slot_stamp: bool,
    /// The stamp is loaded *before* pricing, under the same state read
    /// lock the quote is computed under (market.rs `quote_str`); the
    /// seeded bug reads it at insert time, after pricing — which tags
    /// a stale quote with a current stamp.
    stamp_before_pricing: bool,
    /// `insert()` re-checks the footprint stamp under the shard lock
    /// before storing (cache.rs `insert`); the seeded bug stores
    /// blindly.
    recheck_on_insert: bool,
    /// Which of the two columns the updater touches.
    updated_col: usize,
}

const CORRECT_COLS: ColVariant = ColVariant {
    bump_then_sweep: true,
    per_slot_stamp: true,
    stamp_before_pricing: true,
    recheck_on_insert: true,
    updated_col: 0,
};

/// Two columns, two cached queries: query `i` has footprint
/// `{column i}`, so its stamp is just `epochs[i]` (the wrapping sum
/// over a singleton footprint) and its correct price is `dv[i]`.
#[derive(Clone)]
struct ColState {
    /// Per-column epochs (`ShardedQuoteCache::columns`).
    epochs: [u64; 2],
    /// Per-column data/price version.
    dv: [u64; 2],
    /// One cache entry per query: `(footprint stamp, cached quote)`.
    entries: [Option<(u64, u64)>; 2],
    /// Whether the updater holds the market's state write lock.
    state_write_held: bool,
    // Batch quoter locals: per-slot footprint stamps and quotes.
    stamps: [u64; 2],
    quotes: [u64; 2],
    /// `(column, served quote, dv at serve time)` seen by the reader.
    served: Vec<(usize, u64, u64)>,
}

/// Threads: 0 = batch quoter (two-slot `quote_batch` miss path, with
/// the state read lock released between the slots — the widened-window
/// refactor the per-slot stamps must keep safe), 1 = updater
/// (column-scoped mutation + `invalidate_columns`), 2 = reader (cache
/// hit path over both entries).
fn col_step(v: ColVariant) -> impl Fn(&mut ColState, usize, usize) -> Step {
    move |s, t, pc| match (t, pc) {
        // Batch quoter, slot 0: lookup + stamp + pricing under the
        // state read lock (quote_batch computes each miss's stamp at
        // its own lookup).
        (0, 0) => {
            if s.state_write_held {
                return Step::Blocked;
            }
            if v.stamp_before_pricing {
                s.stamps[0] = s.epochs[0];
                if !v.per_slot_stamp {
                    // Seeded whole-batch stamp: slot 1's stamp is
                    // loaded now, before slot 1's own lookup.
                    s.stamps[1] = s.epochs[1];
                }
            }
            s.quotes[0] = s.dv[0];
            Step::Ran(1)
        }
        // Slot 0 insert, under the shard write lock only.
        (0, 1) => {
            if !v.stamp_before_pricing {
                s.stamps[0] = s.epochs[0];
            }
            if !v.recheck_on_insert || s.epochs[0] == s.stamps[0] {
                s.entries[0] = Some((s.stamps[0], s.quotes[0]));
            }
            Step::Ran(2)
        }
        // Slot 1: lookup + stamp + pricing under the state read lock.
        (0, 2) => {
            if s.state_write_held {
                return Step::Blocked;
            }
            if v.stamp_before_pricing && v.per_slot_stamp {
                s.stamps[1] = s.epochs[1];
            }
            s.quotes[1] = s.dv[1];
            Step::Ran(3)
        }
        // Slot 1 insert, under the shard write lock only.
        (0, 3) => {
            if !v.stamp_before_pricing {
                s.stamps[1] = s.epochs[1];
            }
            if !v.recheck_on_insert || s.epochs[1] == s.stamps[1] {
                s.entries[1] = Some((s.stamps[1], s.quotes[1]));
            }
            Step::Done
        }
        // Updater, mirrors Market::set_price / insert +
        // invalidate_columns scoped to `updated_col`: mutation, epoch
        // bumps, and the sweep all happen under the state write lock;
        // only shard-only quoter steps can interleave.
        (1, 0) => {
            let c = v.updated_col;
            s.state_write_held = true;
            s.dv[c] += 1;
            if v.bump_then_sweep {
                s.epochs[c] += 1;
            }
            Step::Ran(1)
        }
        (1, 1) => {
            // Sweep: retain only entries whose footprint is disjoint
            // from the touched columns (cache.rs `invalidate_columns`'s
            // per-shard `retain`). Query `updated_col` is the only one
            // whose footprint intersects.
            s.entries[v.updated_col] = None;
            Step::Ran(2)
        }
        (1, 2) => {
            // Seeded sweep-then-bump bug: the epoch bump lands only
            // now, so a fill between the sweep and here carries a
            // still-current stamp for an already-stale quote.
            if !v.bump_then_sweep {
                s.epochs[v.updated_col] += 1;
            }
            s.state_write_held = false;
            Step::Done
        }
        // Reader, mirrors the cache hit path: under the state read
        // lock, serve each entry only if its stamp equals the current
        // footprint stamp (cache.rs `get`).
        (2, 0) => {
            if s.state_write_held {
                return Step::Blocked;
            }
            for c in 0..2 {
                if let Some((tag, quote)) = s.entries[c] {
                    if tag == s.epochs[c] {
                        s.served.push((c, quote, s.dv[c]));
                    }
                }
            }
            Step::Done
        }
        _ => unreachable!("no such step: thread {t} pc {pc}"),
    }
}

/// Serve safety: a quote served from the cache equals the price of the
/// data current at serve time, per column.
fn col_invariant(s: &ColState) -> Result<(), String> {
    for &(c, quote, dv) in &s.served {
        if quote != dv {
            return Err(format!(
                "stale quote served on column {c}: cached {quote}, live price {dv}"
            ));
        }
    }
    Ok(())
}

/// Quiescence checks: hygiene, then the two properties that make
/// column scoping worth having.
fn col_at_end(v: ColVariant) -> impl Fn(&ColState) -> Result<(), String> {
    move |s| {
        // Hygiene: no entry tagged with a dead stamp survives.
        for c in 0..2 {
            if let Some((tag, _)) = s.entries[c] {
                if tag != s.epochs[c] {
                    return Err(format!(
                        "dead entry lingers on column {c}: tag {tag}, epoch {}",
                        s.epochs[c]
                    ));
                }
            }
        }
        // Disjoint survivor: the updater never touched the other
        // column, so the slot quoted over it must still be cached in
        // EVERY interleaving — wholesale invalidation would fail this.
        let other = 1 - v.updated_col;
        if s.entries[other].is_none() {
            return Err(format!(
                "entry over untouched column {other} did not survive invalidation"
            ));
        }
        // Utility: a quote priced against the final data must end up
        // cached — the stamp recheck may only discard quotes that are
        // actually stale. (A whole-batch stamp violates exactly this.)
        for c in 0..2 {
            if s.quotes[c] == s.dv[c] && s.entries[c].is_none() {
                return Err(format!(
                    "fresh quote for column {c} discarded by its own stamp recheck"
                ));
            }
        }
        Ok(())
    }
}

fn run_cols(v: ColVariant) -> Result<u64, String> {
    let init = ColState {
        epochs: [0, 0],
        dv: [0, 0],
        entries: [None, None],
        state_write_held: false,
        stamps: [0, 0],
        quotes: [0, 0],
        served: Vec::new(),
    };
    explore(
        &init,
        &[0, 0, 0],
        &col_step(v),
        &col_invariant,
        &col_at_end(v),
    )
}

#[test]
fn per_column_protocol_is_safe_under_all_interleavings() {
    // Race the update against the quoter's own column and against the
    // disjoint one; both must be clean in every interleaving.
    for updated_col in 0..2 {
        let executions = run_cols(ColVariant {
            updated_col,
            ..CORRECT_COLS
        })
        .expect("shipped per-column protocol must be clean");
        assert!(executions >= 50, "only {executions} interleavings explored");
    }
}

#[test]
fn seeded_sweep_then_bump_leaks_a_dead_entry() {
    let err = run_cols(ColVariant {
        bump_then_sweep: false,
        ..CORRECT_COLS
    })
    .expect_err("harness must catch the seeded ordering bug");
    assert!(err.contains("dead entry"), "unexpected violation: {err}");
}

#[test]
fn seeded_stamp_after_pricing_serves_a_stale_quote() {
    let err = run_cols(ColVariant {
        stamp_before_pricing: false,
        updated_col: 1,
        ..CORRECT_COLS
    })
    .expect_err("harness must catch the stale tag");
    assert!(err.contains("stale quote"), "unexpected violation: {err}");
}

#[test]
fn seeded_whole_batch_stamp_discards_fresh_quotes() {
    // The regression `quote_batch` fixed: one stamp vector loaded before
    // the slot loop tags late slots with epochs older than their own
    // lookups. The recheck keeps it *safe*, so serve safety and hygiene
    // stay green — the utility property is what catches it.
    let err = run_cols(ColVariant {
        per_slot_stamp: false,
        updated_col: 1,
        ..CORRECT_COLS
    })
    .expect_err("harness must catch the discarded fresh quote");
    assert!(err.contains("fresh quote"), "unexpected violation: {err}");
}

#[test]
fn seeded_blind_insert_on_columns_leaks_a_dead_entry() {
    let err = run_cols(ColVariant {
        recheck_on_insert: false,
        ..CORRECT_COLS
    })
    .expect_err("harness must catch the missing stamp recheck");
    assert!(err.contains("dead entry"), "unexpected violation: {err}");
}
