//! Loom-style exhaustive model checking of the market's two core
//! concurrency protocols, with no external dependency: a tiny
//! depth-first scheduler enumerates **every** interleaving of the
//! modelled threads at the granularity of their lock-protected
//! critical sections.
//!
//! # Protocols under check
//!
//! 1. **Quote-cache invalidation** (`crates/market/src/cache.rs`):
//!    bump-then-clear epoch invalidation racing a cache fill and a
//!    cache read. Invariants: a served quote always equals the price
//!    derived from the current data (*serve safety*), and no entry
//!    tagged with a dead epoch survives quiescence (*hygiene* — the
//!    module docs' "no dead entry lingers" claim).
//! 2. **Durable purchase** (`crates/market/src/durable.rs`):
//!    price-outside-the-WAL-mutex with epoch revalidation, racing a
//!    durable mutation. Invariants: the market state always equals the
//!    replay of some prefix of the log (*prefix consistency* — the
//!    crash-recovery contract), and every logged purchase carries the
//!    price of the data it was appended against (*quote freshness*).
//!
//! # Why a model, and why that is sound here
//!
//! `ShardedQuoteCache` and `DurableMarket` protect every shared-state
//! transition with a lock or a single atomic; each critical section is
//! linearizable, so any execution of the real code is equivalent to
//! some interleaving of those sections. The models below reproduce the
//! protocols step-for-step at exactly that granularity — one model
//! step per critical section or bare atomic, annotated with the code
//! it mirrors — so exhaustively exploring the model covers every
//! behaviour the real scheduler can produce at this abstraction level.
//!
//! # Teeth
//!
//! Each protocol also runs in seeded-bug variants (one ordering or one
//! check deliberately broken: clear-then-bump, fill without the epoch
//! re-check, serve without the epoch check, skipping revalidation,
//! apply-before-append). The same invariants must *catch* every seeded
//! bug, proving the harness can actually detect violations.

/// One scheduling decision's outcome.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Step {
    /// The thread ran one atomic step; its program counter moved.
    Ran(usize),
    /// The thread cannot run now (a mutex it needs is held).
    Blocked,
    /// The thread has finished.
    Done,
}

/// Program-counter value meaning "thread finished".
const DONE: usize = usize::MAX;

/// Depth-first exhaustive scheduler. `step(state, thread, pc)` applies
/// one atomic step and returns the next program counter; `invariant`
/// runs after every step; `at_end` runs on every fully-quiescent final
/// state. Returns the number of distinct complete executions, or the
/// first violation.
fn explore<S: Clone>(
    state: &S,
    pcs: &[usize],
    step: &impl Fn(&mut S, usize, usize) -> Step,
    invariant: &impl Fn(&S) -> Result<(), String>,
    at_end: &impl Fn(&S) -> Result<(), String>,
) -> Result<u64, String> {
    let mut ran_any = false;
    let mut executions = 0u64;
    for t in 0..pcs.len() {
        if pcs[t] == DONE {
            continue;
        }
        let mut s = state.clone();
        let next = match step(&mut s, t, pcs[t]) {
            Step::Blocked => continue,
            Step::Done => DONE,
            Step::Ran(pc) => pc,
        };
        ran_any = true;
        invariant(&s).map_err(|e| format!("after thread {t} pc {}: {e}", pcs[t]))?;
        let mut pcs2 = pcs.to_vec();
        pcs2[t] = next;
        executions += explore(&s, &pcs2, step, invariant, at_end)?;
    }
    if !ran_any {
        if pcs.iter().any(|&p| p != DONE) {
            return Err(format!("deadlock with pcs {pcs:?}"));
        }
        at_end(state)?;
        executions = 1;
    }
    Ok(executions)
}

// ---------------------------------------------------------------------
// Model 1: ShardedQuoteCache bump-then-clear invalidation.
// ---------------------------------------------------------------------

/// Protocol variant knobs; `CORRECT_CACHE` mirrors the shipped code,
/// the others seed one bug each.
#[derive(Clone, Copy)]
struct CacheVariant {
    /// `invalidate()` bumps the epoch before clearing the shards
    /// (cache.rs `invalidate`); the seeded bug clears first.
    bump_then_clear: bool,
    /// `insert()` re-checks the epoch under the shard lock before
    /// storing (cache.rs `insert`); the seeded bug stores blindly.
    recheck_on_insert: bool,
    /// `get()` serves an entry only if its tag equals the current
    /// epoch (cache.rs `get`); the seeded bug serves any entry.
    check_epoch_on_get: bool,
    /// Whether the updater drops the state write lock *before* the
    /// shard clear — a realistic refactor (calling `invalidate()`
    /// after the lock scope) that widens the visible window. The
    /// shipped code clears inside the critical section, but the
    /// protocol must stay safe either way: that is exactly what the
    /// get-side epoch check is for.
    release_before_clear: bool,
}

const CORRECT_CACHE: CacheVariant = CacheVariant {
    bump_then_clear: true,
    recheck_on_insert: true,
    check_epoch_on_get: true,
    release_before_clear: false,
};

#[derive(Clone)]
struct CacheState {
    /// `ShardedQuoteCache::epoch` (AtomicU64).
    epoch: u64,
    /// One shard, one key: `(tagged epoch, cached quote value)`.
    entry: Option<(u64, u64)>,
    /// The data version quotes are derived from; `price(dv) == dv`, so
    /// a stale quote is immediately visible.
    dv: u64,
    /// Whether the updater currently holds the market's state write
    /// lock (its whole mutation is one multi-step critical section;
    /// readers of `dv`/quoters block on it, shard-only steps do not).
    state_write_held: bool,
    /// Quoter's epoch loaded under the state read lock.
    quoter_epoch: u64,
    /// Quoter's computed quote.
    quoter_quote: u64,
    /// `(served quote, dv at serve time)` observed by the reader.
    served: Vec<(u64, u64)>,
}

/// Threads: 0 = quoter (cache-miss fill), 1 = updater (data mutation +
/// invalidation), 2 = reader (cache hit path).
fn cache_step(v: CacheVariant) -> impl Fn(&mut CacheState, usize, usize) -> Step {
    move |s, t, pc| match (t, pc) {
        // Quoter, mirrors Market::quote_str's miss path.
        (0, 0) => {
            // Under the state read lock: load the epoch and price the
            // query against the current data (quote_str loads the
            // epoch while holding `state.read()`).
            if s.state_write_held {
                return Step::Blocked;
            }
            s.quoter_epoch = s.epoch;
            s.quoter_quote = s.dv;
            Step::Ran(1)
        }
        (0, 1) => {
            // Under the shard write lock only (the state lock was
            // dropped): cache.rs `insert` — re-check the epoch, store
            // tagged with the load-time epoch.
            if !v.recheck_on_insert || s.epoch == s.quoter_epoch {
                s.entry = Some((s.quoter_epoch, s.quoter_quote));
            }
            Step::Done
        }
        // Updater, mirrors Market::insert + ShardedQuoteCache::invalidate.
        (1, 0) => {
            // Take the state write lock; mutate the data; with the
            // shipped ordering the epoch bump (invalidate's fetch_add)
            // is also inside this critical section.
            s.state_write_held = true;
            s.dv += 1;
            if v.bump_then_clear {
                s.epoch += 1;
            }
            Step::Ran(1)
        }
        (1, 1) => {
            // Variant: the state lock may be dropped before the clear.
            if v.release_before_clear {
                s.state_write_held = false;
            }
            Step::Ran(2)
        }
        (1, 2) => {
            // Clear the shard (its own shard write lock; a concurrent
            // cache fill can interleave on either side).
            s.entry = None;
            Step::Ran(3)
        }
        (1, 3) => {
            // Seeded clear-then-bump bug: the bump lands only now,
            // leaving a window after the clear for a stale fill.
            if !v.bump_then_clear {
                s.epoch += 1;
            }
            if !v.release_before_clear {
                s.state_write_held = false;
            }
            Step::Done
        }
        // Reader, mirrors Market::quote_str's hit path: under the state
        // read lock, serve only an entry tagged with the current epoch.
        (2, 0) => {
            if s.state_write_held {
                return Step::Blocked;
            }
            if let Some((tag, quote)) = s.entry {
                if !v.check_epoch_on_get || tag == s.epoch {
                    s.served.push((quote, s.dv));
                }
            }
            Step::Done
        }
        _ => unreachable!("no such step: thread {t} pc {pc}"),
    }
}

/// Serve safety: a quote served from the cache equals the price of the
/// data current at serve time.
fn cache_invariant(s: &CacheState) -> Result<(), String> {
    for &(quote, dv) in &s.served {
        if quote != dv {
            return Err(format!(
                "stale quote served: cached {quote}, live price {dv}"
            ));
        }
    }
    Ok(())
}

/// Hygiene at quiescence: no entry tagged with a dead epoch survives
/// (the "bump-then-clear, so no dead entry lingers" claim).
fn cache_at_end(s: &CacheState) -> Result<(), String> {
    if let Some((tag, _)) = s.entry {
        if tag != s.epoch {
            return Err(format!(
                "dead entry lingers: tagged epoch {tag}, current epoch {}",
                s.epoch
            ));
        }
    }
    Ok(())
}

fn run_cache(v: CacheVariant) -> Result<u64, String> {
    let init = CacheState {
        epoch: 0,
        entry: None,
        dv: 0,
        state_write_held: false,
        quoter_epoch: 0,
        quoter_quote: 0,
        served: Vec::new(),
    };
    explore(
        &init,
        &[0, 0, 0],
        &cache_step(v),
        &cache_invariant,
        &cache_at_end,
    )
}

#[test]
fn cache_protocol_is_safe_under_all_interleavings() {
    let executions = run_cache(CORRECT_CACHE).expect("shipped protocol must be clean");
    // The schedule space must actually have been explored.
    assert!(executions >= 18, "only {executions} interleavings explored");
}

#[test]
fn seeded_clear_then_bump_leaks_a_dead_entry() {
    let err = run_cache(CacheVariant {
        bump_then_clear: false,
        ..CORRECT_CACHE
    })
    .expect_err("harness must catch the seeded ordering bug");
    assert!(err.contains("dead entry"), "unexpected violation: {err}");
}

#[test]
fn seeded_fill_without_epoch_recheck_leaks_a_dead_entry() {
    let err = run_cache(CacheVariant {
        recheck_on_insert: false,
        ..CORRECT_CACHE
    })
    .expect_err("harness must catch the missing re-check");
    assert!(err.contains("dead entry"), "unexpected violation: {err}");
}

#[test]
fn clearing_outside_the_critical_section_is_still_safe() {
    // The get-side epoch check is what makes the widened window safe.
    run_cache(CacheVariant {
        release_before_clear: true,
        ..CORRECT_CACHE
    })
    .expect("epoch-checked gets must keep the widened window safe");
}

#[test]
fn seeded_unchecked_get_serves_a_stale_quote() {
    let err = run_cache(CacheVariant {
        release_before_clear: true,
        check_epoch_on_get: false,
        ..CORRECT_CACHE
    })
    .expect_err("harness must catch the stale serve");
    assert!(err.contains("stale quote"), "unexpected violation: {err}");
}

// ---------------------------------------------------------------------
// Model 2: DurableMarket purchase vs. durable mutation.
// ---------------------------------------------------------------------

#[derive(Clone, Copy)]
struct WalVariant {
    /// `purchase_str` re-checks the cache epoch under the WAL mutex
    /// before logging (durable.rs `purchase_str`); the seeded bug
    /// logs the possibly-stale quote unconditionally.
    revalidate_epoch: bool,
    /// Events are appended to the log before being applied (the
    /// write protocol in durable.rs module docs); the seeded bug
    /// applies the sale first.
    append_before_apply: bool,
}

const CORRECT_WAL: WalVariant = WalVariant {
    revalidate_epoch: true,
    append_before_apply: true,
};

#[derive(Clone, PartialEq, Debug)]
enum Ev {
    /// A durable data/price mutation.
    Mutate,
    /// A logged purchase: the agreed price, plus (as ghost state for
    /// the freshness invariant) the data version at append time.
    Purchase { price: u64, dv_at_append: u64 },
}

#[derive(Clone)]
struct WalState {
    log: Vec<Ev>,
    /// Data version; the arbitrage-free price of the modelled query is
    /// `dv` itself, so staleness is visible.
    dv: u64,
    /// Cache-epoch mirror: bumped by every mutation's apply.
    epoch: u64,
    /// Applied sales (the ledger).
    ledger: Vec<u64>,
    /// WAL mutex owner.
    mutex_held_by: Option<usize>,
    /// Prices acknowledged (returned `Ok`) to the buyer.
    acked: Vec<u64>,
    // Purchaser locals.
    p_epoch: u64,
    p_quote: u64,
    p_retries: u32,
}

/// Threads: 0 = purchaser (`DurableMarket::purchase_str`),
/// 1 = mutator (`DurableMarket::insert` / `set_price`).
fn wal_step(v: WalVariant) -> impl Fn(&mut WalState, usize, usize) -> Step {
    move |s, t, pc| match (t, pc) {
        // Purchaser.
        (0, 0) => {
            // Bare atomic: `self.market.cache_epoch()`.
            s.p_epoch = s.epoch;
            Step::Ran(1)
        }
        (0, 1) => {
            // Under the state read lock: `evaluate_purchase` prices
            // against the current data.
            s.p_quote = s.dv;
            Step::Ran(2)
        }
        (0, 2) => {
            // `self.wal.lock()`.
            if s.mutex_held_by.is_some() {
                return Step::Blocked;
            }
            s.mutex_held_by = Some(0);
            Step::Ran(3)
        }
        (0, 3) => {
            // Revalidate under the mutex; on mismatch drop the lock and
            // re-price (bounded retries, then Contended without an ack).
            if v.revalidate_epoch && s.epoch != s.p_epoch {
                s.mutex_held_by = None;
                s.p_retries += 1;
                return if s.p_retries > 2 {
                    Step::Done
                } else {
                    Step::Ran(0)
                };
            }
            Step::Ran(if v.append_before_apply { 4 } else { 5 })
        }
        (0, 4) => {
            // Append the purchase event.
            s.log.push(Ev::Purchase {
                price: s.p_quote,
                dv_at_append: s.dv,
            });
            Step::Ran(if v.append_before_apply { 5 } else { 6 })
        }
        (0, 5) => {
            // Apply: record the sale in the ledger.
            s.ledger.push(s.p_quote);
            Step::Ran(if v.append_before_apply { 6 } else { 4 })
        }
        (0, 6) => {
            // Release and acknowledge to the buyer.
            s.mutex_held_by = None;
            s.acked.push(s.p_quote);
            Step::Done
        }
        // Mutator.
        (1, 0) => {
            if s.mutex_held_by.is_some() {
                return Step::Blocked;
            }
            s.mutex_held_by = Some(1);
            Step::Ran(1)
        }
        (1, 1) => {
            s.log.push(Ev::Mutate);
            Step::Ran(2)
        }
        (1, 2) => {
            // Apply under the state write lock: mutate the data and
            // bump the cache epoch in the same critical section.
            s.dv += 1;
            s.epoch += 1;
            Step::Ran(3)
        }
        (1, 3) => {
            s.mutex_held_by = None;
            Step::Done
        }
        _ => unreachable!("no such step: thread {t} pc {pc}"),
    }
}

/// Replay a log prefix from genesis.
fn replay(log: &[Ev]) -> (u64, Vec<u64>) {
    let mut dv = 0;
    let mut ledger = Vec::new();
    for ev in log {
        match ev {
            Ev::Mutate => dv += 1,
            Ev::Purchase { price, .. } => ledger.push(*price),
        }
    }
    (dv, ledger)
}

/// Prefix consistency (the crash-recovery contract: cutting the log at
/// any point must recover a state the market actually passed through)
/// plus quote freshness for every logged purchase.
fn wal_invariant(s: &WalState) -> Result<(), String> {
    let consistent = (0..=s.log.len()).any(|k| replay(&s.log[..k]) == (s.dv, s.ledger.clone()));
    if !consistent {
        return Err(format!(
            "state (dv {}, ledger {:?}) is not the replay of any log prefix ({:?})",
            s.dv, s.ledger, s.log
        ));
    }
    for ev in &s.log {
        if let Ev::Purchase {
            price,
            dv_at_append,
        } = ev
        {
            if price != dv_at_append {
                return Err(format!(
                    "stale purchase logged: agreed price {price}, price at append {dv_at_append}"
                ));
            }
        }
    }
    Ok(())
}

/// At quiescence: everything applied (the state equals the full-log
/// replay) and every acknowledged purchase is in the durable ledger.
fn wal_at_end(s: &WalState) -> Result<(), String> {
    if replay(&s.log) != (s.dv, s.ledger.clone()) {
        return Err("final state does not equal full-log replay".to_string());
    }
    for p in &s.acked {
        if !s.ledger.contains(p) {
            return Err(format!("acknowledged purchase {p} missing from the ledger"));
        }
    }
    Ok(())
}

fn run_wal(v: WalVariant) -> Result<u64, String> {
    let init = WalState {
        log: Vec::new(),
        dv: 0,
        epoch: 0,
        ledger: Vec::new(),
        mutex_held_by: None,
        acked: Vec::new(),
        p_epoch: 0,
        p_quote: 0,
        p_retries: 0,
    };
    explore(&init, &[0, 0], &wal_step(v), &wal_invariant, &wal_at_end)
}

#[test]
fn durable_purchase_protocol_is_safe_under_all_interleavings() {
    let executions = run_wal(CORRECT_WAL).expect("shipped protocol must be clean");
    assert!(executions >= 10, "only {executions} interleavings explored");
}

#[test]
fn seeded_skipping_revalidation_logs_a_stale_price() {
    let err = run_wal(WalVariant {
        revalidate_epoch: false,
        ..CORRECT_WAL
    })
    .expect_err("harness must catch the stale logged purchase");
    assert!(
        err.contains("stale purchase"),
        "unexpected violation: {err}"
    );
}

#[test]
fn seeded_apply_before_append_breaks_prefix_consistency() {
    let err = run_wal(WalVariant {
        append_before_apply: false,
        ..CORRECT_WAL
    })
    .expect_err("harness must catch the unlogged application window");
    assert!(
        err.contains("not the replay"),
        "unexpected violation: {err}"
    );
}
