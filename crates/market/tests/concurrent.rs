//! Concurrency stress: many buyer threads quoting (serially and in
//! batches) and purchasing while the seller inserts data. Validates the
//! locking discipline, the sharded quote cache's epoch coherence, and
//! that observed prices never decrease over time (Proposition 2.22 for
//! full CQs under selection-view prices).

use crossbeam::thread;
use proptest::prelude::*;
use qbdp_catalog::{tuple, Tuple, Value};
use qbdp_core::Price;
use qbdp_market::Market;
use std::sync::atomic::{AtomicU64, Ordering};

const QDP: &str = r#"
schema R(X)
schema S(X, Y)
schema T(Y)
column R.X = {0, 1, 2, 3, 4, 5}
column S.X = {0, 1, 2, 3, 4, 5}
column S.Y = {0, 1, 2, 3, 4, 5}
column T.Y = {0, 1, 2, 3, 4, 5}
price R.X=0 100
price R.X=1 100
price R.X=2 100
price R.X=3 100
price R.X=4 100
price R.X=5 100
price S.X=0 150
price S.X=1 150
price S.X=2 150
price S.X=3 150
price S.X=4 150
price S.X=5 150
price S.Y=0 150
price S.Y=1 150
price S.Y=2 150
price S.Y=3 150
price S.Y=4 150
price S.Y=5 150
price T.Y=0 100
price T.Y=1 100
price T.Y=2 100
price T.Y=3 100
price T.Y=4 100
price T.Y=5 100
"#;

#[test]
fn concurrent_quotes_and_inserts() {
    let market = Market::open_qdp(QDP).unwrap();
    let query = "Q(x, y) :- R(x), S(x, y), T(y)";
    // Highest price observed so far, as raw cents; monotonicity means no
    // thread may ever observe a price below a previously observed one
    // *after* the writer thread has finished the corresponding insert —
    // but across threads we can only assert a per-thread monotone view
    // plus the global before/after relation.
    let global_before = market.quote_str(query).unwrap().price;
    let writer_done = AtomicU64::new(0);

    thread::scope(|scope| {
        // Seller: insert a trickle of data.
        scope.spawn(|_| {
            for i in 0..6i64 {
                market.insert("R", [Tuple::new([Value::Int(i)])]).unwrap();
                market
                    .insert("S", [tuple![i, (i + 1) % 6], tuple![i, (i + 2) % 6]])
                    .unwrap();
                market
                    .insert("T", [Tuple::new([Value::Int((i + 1) % 6)])])
                    .unwrap();
            }
            writer_done.store(1, Ordering::SeqCst);
        });
        // Buyers: quote in a loop; each thread's observed prices must be
        // non-decreasing (full CQ + selection views, Prop 2.22).
        for t in 0..4 {
            scope.spawn(|_| {
                let mut last = Price::ZERO;
                for _ in 0..25 {
                    let quote = market.quote_str(query).unwrap();
                    assert!(
                        quote.price >= last,
                        "observed price dropped from {last} to {}",
                        quote.price
                    );
                    last = quote.price;
                }
                last
            });
            let _ = t;
        }
    })
    .unwrap();

    let global_after = market.quote_str(query).unwrap().price;
    assert!(global_after >= global_before);
    // A purchase after the dust settles delivers all current answers.
    let purchase = market.purchase_str(query).unwrap();
    assert!(!purchase.answer.is_empty());
    assert_eq!(market.sales(), 1);
}

/// Regression for the quote-cache staleness race: `quote_str` computes a
/// quote outside the write lock, so an interleaved `insert` could clear
/// the cache and then have the *pre-update* quote cached against the
/// *post-update* data — served stale forever after. The epoch counter
/// must prevent that: after all updates land, the cached quote must equal
/// a freshly computed (uncached) one.
#[test]
fn quote_cache_never_serves_stale_prices() {
    let market = Market::open_qdp(QDP).unwrap();
    let query = "Q(x, y) :- R(x), S(x, y), T(y)";

    thread::scope(|scope| {
        // Quoters hammer the cache-fill path…
        for _ in 0..4 {
            scope.spawn(|_| {
                for _ in 0..50 {
                    let _ = market.quote_str(query).unwrap();
                }
            });
        }
        // …while the seller races cache clears against their inserts.
        scope.spawn(|_| {
            for i in 0..6i64 {
                market.insert("R", [Tuple::new([Value::Int(i)])]).unwrap();
                market.insert("S", [tuple![i, (i + 3) % 6]]).unwrap();
                market
                    .insert("T", [Tuple::new([Value::Int((i + 3) % 6)])])
                    .unwrap();
            }
        });
    })
    .unwrap();

    // Cached path vs uncached path must agree now that updates stopped.
    let cached = market.quote_str(query).unwrap().price;
    let fresh = market.with_pricer(|pricer| {
        let q = qbdp_query::parser::parse_rule(pricer.catalog().schema(), query).unwrap();
        pricer.price_cq(&q).unwrap().price
    });
    assert_eq!(cached, fresh, "cache serves a stale quote");
}

/// The uncached reference price of `query` (bypasses the quote cache).
fn fresh_price(market: &Market, query: &str) -> Price {
    market.with_pricer(|pricer| {
        let q = qbdp_query::parser::parse_rule(pricer.catalog().schema(), query).unwrap();
        pricer.price_cq(&q).unwrap().price
    })
}

const MIX_QUERIES: [&str; 4] = [
    "Q(x, y) :- R(x), S(x, y), T(y)",
    "Q(x) :- R(x)",
    "Q(y) :- T(y)",
    "Q(x, y) :- S(x, y)",
];

/// 8 threads mixing `quote_batch`, `purchase_str`, and `insert` against
/// one market. Checks, under the full API mix:
///
/// * the batch path's per-thread view of the monotone join price never
///   decreases (Prop 2.22 — a stale cached quote would violate this by
///   resurfacing an old, lower price);
/// * every slot of every batch succeeds;
/// * once the writers are done, cached quotes equal freshly computed
///   ones for every query — no quote served from a stale epoch.
#[test]
fn eight_thread_batch_purchase_insert_mix() {
    let market = Market::open_qdp(QDP).unwrap();

    thread::scope(|scope| {
        // 2 sellers: disjoint value ranges so inserts never conflict.
        for w in 0..2i64 {
            let market = &market;
            scope.spawn(move |_| {
                for i in 0..3i64 {
                    let v = w * 3 + i;
                    market.insert("R", [Tuple::new([Value::Int(v)])]).unwrap();
                    market.insert("S", [tuple![v, (v + 1) % 6]]).unwrap();
                    market
                        .insert("T", [Tuple::new([Value::Int((v + 1) % 6)])])
                        .unwrap();
                }
            });
        }
        // 4 batch quoters: every slot must fill, and the join price (slot
        // 0) must be monotone within each thread.
        for _ in 0..4 {
            let market = &market;
            scope.spawn(move |_| {
                let mut last_join = Price::ZERO;
                for _ in 0..20 {
                    let out = market.quote_batch(&MIX_QUERIES);
                    assert_eq!(out.len(), MIX_QUERIES.len());
                    let join = out[0].as_ref().unwrap().price;
                    for slot in &out {
                        assert!(slot.is_ok(), "{slot:?}");
                    }
                    assert!(
                        join >= last_join,
                        "join price dropped {last_join} -> {join} (stale quote?)"
                    );
                    last_join = join;
                }
            });
        }
        // 2 purchasers: exercise the write-lock path concurrently.
        for _ in 0..2 {
            let market = &market;
            scope.spawn(move |_| {
                for _ in 0..10 {
                    let p = market.purchase_str("Q(x) :- R(x)").unwrap();
                    assert!(p.quote.price.is_finite());
                }
            });
        }
    })
    .unwrap();

    // Writers are done: anything the cache now serves must equal the
    // uncached price computed from the final data.
    for query in MIX_QUERIES {
        let cached = market.quote_str(query).unwrap().price;
        assert_eq!(
            cached,
            fresh_price(&market, query),
            "stale cached quote for `{query}`"
        );
    }
    assert_eq!(market.sales(), 20);
}

/// Price-update storm: `writers` seller threads revise prices while the
/// remaining threads (8 total) hammer quotes. Revisions hit only the
/// single-attribute relations `R.X` and `T.Y`, where *any* price is
/// arbitrage-consistent (no bundle of other views covers a selection on
/// the sole column of a relation), so every `set_price` must succeed.
///
/// Checks, under column-scoped invalidation:
///
/// * every quote during the storm succeeds (invalidation never wedges a
///   shard or poisons an entry);
/// * once the writers stop, the cache serves exactly the prices of the
///   final price list for every query — `set_price(R.X=…)` must have
///   invalidated every cached quote whose footprint touches `R.X`, and
///   must *not* be allowed to hide behind quotes over disjoint columns;
/// * with `incremental` set, the warm-started quotes additionally match,
///   field for field, a cold market reopened from the same snapshot.
fn price_update_storm(writers: usize, incremental: bool) {
    let market = Market::open_qdp(QDP).unwrap();
    // Some data so join prices exercise the real min-cut, not empty nets.
    for i in 0..6i64 {
        market.insert("R", [Tuple::new([Value::Int(i)])]).unwrap();
        market.insert("S", [tuple![i, (i + 1) % 6]]).unwrap();
        market
            .insert("T", [Tuple::new([Value::Int((i + 1) % 6)])])
            .unwrap();
    }
    if incremental {
        let mut policy = market.policy();
        policy.incremental = true;
        market.set_policy(policy);
    }
    let quoters = 8 - writers;

    thread::scope(|scope| {
        for w in 0..writers {
            let market = &market;
            scope.spawn(move |_| {
                for round in 0..15u64 {
                    // Single-attribute relations: always consistent.
                    let v = (w as u64 + round) % 6;
                    let cents = 50 + (w as u64 * 37 + round * 19) % 350;
                    market
                        .set_price(&format!("R.X={v}"), Price::cents(cents))
                        .unwrap();
                    market
                        .set_price(&format!("T.Y={v}"), Price::cents(cents + 25))
                        .unwrap();
                }
            });
        }
        for t in 0..quoters {
            let market = &market;
            scope.spawn(move |_| {
                for i in 0..30 {
                    let query = MIX_QUERIES[(t + i) % MIX_QUERIES.len()];
                    let quote = market.quote_str(query).unwrap();
                    assert!(quote.price.is_finite(), "storm quote went infinite");
                }
            });
        }
    })
    .unwrap();

    // Writers are done: the cache must now serve the final price list.
    for query in MIX_QUERIES {
        let cached = market.quote_str(query).unwrap().price;
        assert_eq!(
            cached,
            fresh_price(&market, query),
            "stale cached quote for `{query}` after price storm"
        );
    }

    if incremental {
        // A cold market rebuilt from the same snapshot must agree on every
        // field of every quote — the warm-start path is not allowed to
        // drift in receipts, method, class, quality, or bounds either.
        let cold = Market::open_qdp(&market.to_qdp()).unwrap();
        for query in MIX_QUERIES {
            let warm = market.quote_str(query).unwrap();
            let reference = cold.quote_str(query).unwrap();
            assert_eq!(warm.price, reference.price, "price drift for `{query}`");
            assert_eq!(warm.lower_bound, reference.lower_bound);
            assert_eq!(warm.receipt, reference.receipt);
            assert_eq!(warm.views, reference.views);
            assert_eq!(warm.method, reference.method);
            assert_eq!(warm.class, reference.class);
            assert_eq!(warm.quality, reference.quality);
            assert_eq!(warm.query, reference.query);
        }
    }
}

/// 90/10 quote/setprice mix (7 quoters, 1 price writer).
#[test]
fn update_storm_90_10() {
    price_update_storm(1, false);
}

/// 50/50 quote/setprice mix (4 quoters, 4 price writers).
#[test]
fn update_storm_50_50() {
    price_update_storm(4, false);
}

/// 90/10 mix through the incremental (warm-start) pricing path.
#[test]
fn update_storm_90_10_incremental() {
    price_update_storm(1, true);
}

/// 50/50 mix through the incremental (warm-start) pricing path.
#[test]
fn update_storm_50_50_incremental() {
    price_update_storm(4, true);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cache-coherence property: for ANY interleaving of a random insert
    /// schedule with concurrent batch quoting, once the writer finishes,
    /// the cache serves exactly the prices of the final data — never a
    /// quote from a stale epoch. (The threads' scheduling is the random
    /// part the proptest seed can't control; the insert schedule varies
    /// the epochs and data it races against.)
    #[test]
    fn cache_coherent_under_random_insert_schedules(
        inserts in proptest::collection::vec((0u8..3, 0i64..6, 0i64..6), 1..12),
    ) {
        let market = Market::open_qdp(QDP).unwrap();
        thread::scope(|scope| {
            let market = &market;
            let schedule = &inserts;
            scope.spawn(move |_| {
                for &(rel, a, b) in schedule {
                    match rel {
                        0 => market.insert("R", [Tuple::new([Value::Int(a)])]).unwrap(),
                        1 => market.insert("S", [tuple![a, b]]).unwrap(),
                        _ => market.insert("T", [Tuple::new([Value::Int(b)])]).unwrap(),
                    };
                }
            });
            for _ in 0..3 {
                scope.spawn(move |_| {
                    for _ in 0..8 {
                        for slot in market.quote_batch(&MIX_QUERIES) {
                            assert!(slot.is_ok(), "{slot:?}");
                        }
                    }
                });
            }
        })
        .unwrap();
        for query in MIX_QUERIES {
            let cached = market.quote_str(query).unwrap().price;
            prop_assert_eq!(
                cached,
                fresh_price(&market, query),
                "stale cached quote for `{}`",
                query
            );
        }
    }
}
