//! Concurrency stress: many buyer threads quoting and purchasing while the
//! seller inserts data. Validates the locking discipline and that observed
//! prices never decrease over time (Proposition 2.22 for full CQs under
//! selection-view prices).

use crossbeam::thread;
use qbdp_catalog::{tuple, Tuple, Value};
use qbdp_core::Price;
use qbdp_market::Market;
use std::sync::atomic::{AtomicU64, Ordering};

const QDP: &str = r#"
schema R(X)
schema S(X, Y)
schema T(Y)
column R.X = {0, 1, 2, 3, 4, 5}
column S.X = {0, 1, 2, 3, 4, 5}
column S.Y = {0, 1, 2, 3, 4, 5}
column T.Y = {0, 1, 2, 3, 4, 5}
price R.X=0 100
price R.X=1 100
price R.X=2 100
price R.X=3 100
price R.X=4 100
price R.X=5 100
price S.X=0 150
price S.X=1 150
price S.X=2 150
price S.X=3 150
price S.X=4 150
price S.X=5 150
price S.Y=0 150
price S.Y=1 150
price S.Y=2 150
price S.Y=3 150
price S.Y=4 150
price S.Y=5 150
price T.Y=0 100
price T.Y=1 100
price T.Y=2 100
price T.Y=3 100
price T.Y=4 100
price T.Y=5 100
"#;

#[test]
fn concurrent_quotes_and_inserts() {
    let market = Market::open_qdp(QDP).unwrap();
    let query = "Q(x, y) :- R(x), S(x, y), T(y)";
    // Highest price observed so far, as raw cents; monotonicity means no
    // thread may ever observe a price below a previously observed one
    // *after* the writer thread has finished the corresponding insert —
    // but across threads we can only assert a per-thread monotone view
    // plus the global before/after relation.
    let global_before = market.quote_str(query).unwrap().price;
    let writer_done = AtomicU64::new(0);

    thread::scope(|scope| {
        // Seller: insert a trickle of data.
        scope.spawn(|_| {
            for i in 0..6i64 {
                market.insert("R", [Tuple::new([Value::Int(i)])]).unwrap();
                market
                    .insert("S", [tuple![i, (i + 1) % 6], tuple![i, (i + 2) % 6]])
                    .unwrap();
                market
                    .insert("T", [Tuple::new([Value::Int((i + 1) % 6)])])
                    .unwrap();
            }
            writer_done.store(1, Ordering::SeqCst);
        });
        // Buyers: quote in a loop; each thread's observed prices must be
        // non-decreasing (full CQ + selection views, Prop 2.22).
        for t in 0..4 {
            scope.spawn(|_| {
                let mut last = Price::ZERO;
                for _ in 0..25 {
                    let quote = market.quote_str(query).unwrap();
                    assert!(
                        quote.price >= last,
                        "observed price dropped from {last} to {}",
                        quote.price
                    );
                    last = quote.price;
                }
                last
            });
            let _ = t;
        }
    })
    .unwrap();

    let global_after = market.quote_str(query).unwrap().price;
    assert!(global_after >= global_before);
    // A purchase after the dust settles delivers all current answers.
    let purchase = market.purchase_str(query).unwrap();
    assert!(!purchase.answer.is_empty());
    assert_eq!(market.sales(), 1);
}

/// Regression for the quote-cache staleness race: `quote_str` computes a
/// quote outside the write lock, so an interleaved `insert` could clear
/// the cache and then have the *pre-update* quote cached against the
/// *post-update* data — served stale forever after. The epoch counter
/// must prevent that: after all updates land, the cached quote must equal
/// a freshly computed (uncached) one.
#[test]
fn quote_cache_never_serves_stale_prices() {
    let market = Market::open_qdp(QDP).unwrap();
    let query = "Q(x, y) :- R(x), S(x, y), T(y)";

    thread::scope(|scope| {
        // Quoters hammer the cache-fill path…
        for _ in 0..4 {
            scope.spawn(|_| {
                for _ in 0..50 {
                    let _ = market.quote_str(query).unwrap();
                }
            });
        }
        // …while the seller races cache clears against their inserts.
        scope.spawn(|_| {
            for i in 0..6i64 {
                market.insert("R", [Tuple::new([Value::Int(i)])]).unwrap();
                market.insert("S", [tuple![i, (i + 3) % 6]]).unwrap();
                market
                    .insert("T", [Tuple::new([Value::Int((i + 3) % 6)])])
                    .unwrap();
            }
        });
    })
    .unwrap();

    // Cached path vs uncached path must agree now that updates stopped.
    let cached = market.quote_str(query).unwrap().price;
    let fresh = market.with_pricer(|pricer| {
        let q = qbdp_query::parser::parse_rule(pricer.catalog().schema(), query).unwrap();
        pricer.price_cq(&q).unwrap().price
    });
    assert_eq!(cached, fresh, "cache serves a stale quote");
}
