//! The [`Market`]: quotes, purchases, and live updates over the pricing
//! engine, behind a `parking_lot::RwLock`.
//!
//! # Resource governance
//!
//! A [`MarketPolicy`] bounds every quote: an optional wall-clock deadline
//! and/or fuel budget per pricing call, whether budget-degraded
//! (upper-bound) quotes may be sold at all, and an admission cap on
//! concurrent in-flight quotes. Pricing runs inside `catch_unwind`, so a
//! panicking engine surfaces as [`MarketError::Internal`] and the market
//! keeps serving subsequent requests.

// The workspace-wide lock hierarchy, outermost first. `wal` lives in the
// durable layer, the rest here; any path acquiring against this order is
// an R7 cycle at the next audit run.
// audit: lock-order(wal < state < plan < cache-shard)
use crate::cache::ShardedQuoteCache;
use crate::error::MarketError;
use crate::ledger::Ledger;
use parking_lot::{Mutex, RwLock};
use qbdp_catalog::{AttrRef, Catalog, Instance, QdpFile, RelId, Tuple};
use qbdp_core::dichotomy::QueryClass;
use qbdp_core::price_points::PriceList;
use qbdp_core::{
    query_footprint, Budget, PlanCache, PlanStats, Price, Pricer, PricingMethod, QuoteQuality,
};
use qbdp_determinacy::selection::SelectionView;
use qbdp_query::ast::{ConjunctiveQuery, Ucq};
use qbdp_query::bundle::Bundle;
use qbdp_query::parser::parse_rule;
use qbdp_query::pretty;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Per-market resource policy, applied to every pricing call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MarketPolicy {
    /// Wall-clock deadline per quote; `None` = unlimited.
    pub deadline: Option<Duration>,
    /// Work-unit fuel per quote; `None` = unlimited.
    pub fuel: Option<u64>,
    /// Whether budget-degraded (sound upper-bound) quotes may be sold.
    /// When `false`, a quote whose budget ran out is refused with
    /// [`MarketError::DeadlineExceeded`] instead.
    pub sell_degraded: bool,
    /// Maximum concurrently in-flight quote/purchase/explain requests;
    /// excess requests are refused with [`MarketError::Overloaded`]. A
    /// batch of `k` queries counts as `k` in-flight requests, not 1.
    pub max_in_flight: usize,
    /// Worker threads used by [`Market::quote_batch`]; `0` means one per
    /// available core.
    pub batch_workers: usize,
    /// Serve serial quotes through the incremental pricing engine (the
    /// shape-keyed [`PlanCache`]): a repeated query shape under a changed
    /// price vector is repriced by a residual warm start instead of a
    /// cold solve, with bit-identical results. Only unlimited-budget
    /// quotes go through the plan cache (a fuel or deadline policy prices
    /// cold, so degraded `[lower, upper]` intervals are unaffected by
    /// this flag). An in-process serving knob: it is not persisted by the
    /// durable market, and recovery resets it to `false`.
    pub incremental: bool,
    /// Turn on the process-wide telemetry pipeline (`qbdp-obs`): metric
    /// recording, per-quote trace spans, and the degraded-quote flight
    /// recorder. Off, every probe is a single relaxed atomic load. Like
    /// [`MarketPolicy::incremental`] this is an in-process serving knob:
    /// it is not persisted by the durable market, and recovery resets it
    /// to `false`.
    pub telemetry: bool,
}

impl Default for MarketPolicy {
    fn default() -> Self {
        MarketPolicy {
            deadline: None,
            fuel: None,
            sell_degraded: false,
            max_in_flight: usize::MAX,
            batch_workers: 0,
            incremental: false,
            telemetry: false,
        }
    }
}

impl MarketPolicy {
    /// A fresh [`Budget`] implementing this policy for `jobs` pricing
    /// calls: each job's fuel share equals the per-quote fuel (the batch
    /// pool splits the total), while the wall-clock deadline is shared —
    /// jobs run concurrently, so one deadline bounds them all.
    fn budget_for(&self, jobs: u64) -> Budget {
        match (self.fuel, self.deadline) {
            (None, None) => Budget::unlimited(),
            (Some(f), None) => Budget::with_fuel(f.saturating_mul(jobs)),
            (None, Some(d)) => Budget::with_deadline(d),
            (Some(f), Some(d)) => Budget::with_fuel_and_deadline(f.saturating_mul(jobs), d),
        }
    }

    /// A fresh [`Budget`] implementing this policy for one pricing call.
    fn budget(&self) -> Budget {
        self.budget_for(1)
    }
}

/// A buyer-facing quote.
#[derive(Clone, Debug)]
pub struct MarketQuote {
    /// The query, rendered back in datalog syntax.
    pub query: String,
    /// The arbitrage-price (or, for `UpperBound` quality, a sound
    /// arbitrage-free over-estimate of it).
    pub price: Price,
    /// Itemized receipt: the explicit views this price stands for, rendered.
    pub receipt: Vec<String>,
    /// The raw views (for programmatic consumers).
    pub views: Vec<SelectionView>,
    /// Which engine priced it.
    pub method: PricingMethod,
    /// The query's dichotomy class.
    pub class: QueryClass,
    /// Whether the price is exact or a budget-degraded upper bound.
    pub quality: QuoteQuality,
    /// Sound lower bound on the true arbitrage-price.
    pub lower_bound: Price,
}

/// A completed purchase: the quote plus the delivered answer.
#[derive(Clone, Debug)]
pub struct Purchase {
    /// Ledger transaction id.
    pub transaction_id: u64,
    /// The quote honoured.
    pub quote: MarketQuote,
    /// The answer tuples, sorted for determinism.
    pub answer: Vec<Tuple>,
}

struct State {
    pricer: Pricer,
    ledger: Ledger,
    policy: MarketPolicy,
}

/// A thread-safe, query-priced data marketplace.
pub struct Market {
    state: RwLock<State>,
    /// Quote cache keyed by the *rendered* query (canonical form). Lives
    /// outside the state lock — lookups and fills take only a per-shard
    /// lock — and is kept coherent with the data via per-column epoch
    /// tagging (see [`crate::cache`]). Only `Exact`-quality quotes are
    /// cached — a degraded quote is an artifact of one budget run, not
    /// of the data.
    cache: ShardedQuoteCache,
    /// The incremental pricing engine: shape-keyed normalized plans plus
    /// solved flow networks, repriced by residual warm starts
    /// ([`MarketPolicy::incremental`]). Guarded by its own mutex, locked
    /// *after* the state lock (never the other way around); pricing
    /// through it happens while the caller holds the state read lock, so
    /// the plans it patches always describe the live catalog/instance.
    plan: Mutex<PlanCache>,
    in_flight: AtomicUsize,
}

/// Releases its admission slots on drop.
struct InFlightGuard<'a> {
    in_flight: &'a AtomicUsize,
    slots: usize,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let prev = self.in_flight.fetch_sub(self.slots, Ordering::Relaxed);
        qbdp_obs::record_gauge(
            qbdp_obs::Gauge::InFlight,
            prev.saturating_sub(self.slots) as u64,
        );
    }
}

/// Run a pricing or evaluation call with panics contained at the market
/// boundary. The lock is not poisoned (parking_lot) and nothing was
/// mutated, so the market keeps serving after reporting the failure.
fn contain_panic<T, E>(f: impl FnOnce() -> Result<T, E>) -> Result<T, MarketError>
where
    MarketError: From<E>,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => Ok(result?),
        Err(payload) => {
            qbdp_obs::record(qbdp_obs::Ctr::MarketPanicsContained, 1);
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "pricing engine panicked".to_string());
            Err(MarketError::Internal(msg))
        }
    }
}

/// Telemetry epilogue for the serial serving paths: close the trace,
/// record the latency histogram and outcome counters, and hand the span
/// tree to the flight recorder when the quote went wrong (degraded,
/// refused-degraded, panicked) or crossed the slow threshold. Free when
/// telemetry is off: the stopwatch never read the clock and the trace
/// was never begun.
fn observe_served(
    query: &str,
    sw: qbdp_obs::Stopwatch,
    hist: qbdp_obs::Hst,
    served: qbdp_obs::Ctr,
    quote: Option<&MarketQuote>,
    err: Option<&MarketError>,
) {
    use qbdp_obs::flight::{self, Why};
    let spans = qbdp_obs::trace::finish();
    let Some(us) = sw.stop(hist) else { return };
    match (quote, err) {
        (Some(q), _) => {
            qbdp_obs::record(served, 1);
            if !q.quality.is_exact() {
                qbdp_obs::record(qbdp_obs::Ctr::MarketQuotesDegraded, 1);
                flight::capture(
                    Why::Degraded,
                    query,
                    us,
                    format!(
                        "sold upper bound; true price in [{}, {}]",
                        q.lower_bound, q.price
                    ),
                    spans,
                );
            } else if us >= flight::slow_threshold_us() {
                flight::capture(Why::Slow, query, us, String::new(), spans);
            }
        }
        (None, Some(MarketError::Internal(msg))) => {
            flight::capture(Why::Panicked, query, us, msg.clone(), spans);
        }
        (None, Some(MarketError::DeadlineExceeded)) => {
            qbdp_obs::record(qbdp_obs::Ctr::MarketQuotesDegraded, 1);
            flight::capture(
                Why::Degraded,
                query,
                us,
                "refused: budget exhausted and sell_degraded is off".to_string(),
                spans,
            );
        }
        _ => {}
    }
}

impl Market {
    /// Open a market. Rejects price lists that admit arbitrage among the
    /// explicit price points (Proposition 3.2) — by Theorem 2.15 no valid
    /// pricing function would exist.
    pub fn open(
        catalog: Catalog,
        instance: Instance,
        prices: PriceList,
    ) -> Result<Market, MarketError> {
        let pricer = Pricer::new(catalog, instance, prices)?;
        let violations = pricer.check_consistency();
        if !violations.is_empty() {
            let rendered: Vec<String> = violations
                .iter()
                .take(3)
                .map(|v| v.display(pricer.catalog()))
                .collect();
            return Err(MarketError::InconsistentPrices(rendered.join("; ")));
        }
        let columns = pricer.catalog().schema().all_attrs();
        Ok(Market {
            state: RwLock::new(State {
                pricer,
                ledger: Ledger::new(),
                policy: MarketPolicy::default(),
            }),
            cache: ShardedQuoteCache::new(columns),
            plan: Mutex::new(PlanCache::new()),
            in_flight: AtomicUsize::new(0),
        })
    }

    /// Replace the market's resource policy. The `telemetry` flag is
    /// applied to the process-wide `qbdp-obs` switch here — the one
    /// place serving policy and recording policy meet.
    // audit: holds-lock(state)
    pub fn set_policy(&self, policy: MarketPolicy) {
        qbdp_obs::set_enabled(policy.telemetry);
        self.state.write().policy = policy;
    }

    /// The current resource policy.
    // audit: holds-lock(state)
    pub fn policy(&self) -> MarketPolicy {
        self.state.read().policy
    }

    /// Claim one admission slot, or refuse with [`MarketError::Overloaded`].
    fn admit(&self, max: usize) -> Result<InFlightGuard<'_>, MarketError> {
        self.admit_many(1, max)
    }

    /// Claim `slots` admission slots atomically, or refuse with
    /// [`MarketError::Overloaded`]. A batch of `k` queries is `k` units of
    /// concurrent pricing work, so it must claim `k` slots — counting it
    /// as one would let `max_in_flight` be exceeded `k`-fold.
    fn admit_many(&self, slots: usize, max: usize) -> Result<InFlightGuard<'_>, MarketError> {
        let prev = self.in_flight.fetch_add(slots, Ordering::Relaxed);
        if prev.checked_add(slots).is_none_or(|total| total > max) {
            self.in_flight.fetch_sub(slots, Ordering::Relaxed);
            qbdp_obs::record(qbdp_obs::Ctr::MarketAdmissionRejects, 1);
            return Err(MarketError::Overloaded);
        }
        qbdp_obs::record_gauge(qbdp_obs::Gauge::InFlight, (prev + slots) as u64);
        Ok(InFlightGuard {
            in_flight: &self.in_flight,
            slots,
        })
    }

    /// Open a market from a `.qdp` document (schema, columns, tuples, and
    /// `price R.X=a <cents>` directives).
    pub fn open_qdp(text: &str) -> Result<Market, MarketError> {
        let file = QdpFile::parse(text).map_err(|e| MarketError::Update(e.to_string()))?;
        let mut prices = PriceList::new();
        for (attr, value, cents) in file.prices {
            prices.set(SelectionView::new(attr, value), Price::cents(cents));
        }
        Market::open(file.catalog, file.instance, prices)
    }

    /// Open (recover) a durable market persisted under `dir` — snapshot
    /// load plus write-ahead-log suffix replay. See [`crate::durable`].
    pub fn open_durable(
        dir: impl AsRef<std::path::Path>,
        fsync: qbdp_store::FsyncPolicy,
    ) -> Result<crate::durable::DurableMarket, MarketError> {
        crate::durable::DurableMarket::open(dir, fsync)
    }

    /// Quote a query given in datalog syntax
    /// (`"Q(x, y) :- R(x), S(x, y)"`). Exact quotes are cached until the
    /// next data update.
    // audit: holds-lock(state)
    pub fn quote_str(&self, query: &str) -> Result<MarketQuote, MarketError> {
        let sw = qbdp_obs::Stopwatch::start();
        if qbdp_obs::enabled() {
            qbdp_obs::trace::begin();
        }
        let out = self.quote_str_inner(query);
        observe_served(
            query,
            sw,
            qbdp_obs::Hst::QuoteLatencyUs,
            qbdp_obs::Ctr::MarketQuotes,
            out.as_ref().ok(),
            out.as_ref().err(),
        );
        out
    }

    /// The uninstrumented body of [`Market::quote_str`].
    // audit: holds-lock(state)
    fn quote_str_inner(&self, query: &str) -> Result<MarketQuote, MarketError> {
        let state = self.state.read();
        let _slot = self.admit(state.policy.max_in_flight)?;
        let q = parse_rule(state.pricer.catalog().schema(), query)?;
        let key = pretty::render(&q, state.pricer.catalog().schema());
        let hit = {
            let mut span = qbdp_obs::trace::span("cache_lookup");
            let hit = self.cache.get(&key);
            span.detail(if hit.is_some() { "hit" } else { "miss" });
            hit
        };
        if let Some(hit) = hit {
            return Ok(hit);
        }
        // Compute the footprint stamp *under the read lock*: it names
        // exactly the data snapshot this quote is derived from, and the
        // cache will discard the insert if an update touching one of the
        // footprint's columns lands in between (caching it then would
        // serve stale prices until the *next* touching update).
        let footprint = query_footprint(state.pricer.catalog(), &q);
        let stamp = self.cache.stamp(&footprint);
        let quote = self.quote_inner(&state, &q)?;
        drop(state);
        if quote.quality.is_exact() {
            self.cache.insert(key, quote.clone(), footprint, stamp);
        }
        Ok(quote)
    }

    /// Quote a batch of datalog-syntax queries in one call, pricing cache
    /// misses in parallel on a scoped worker pool
    /// ([`MarketPolicy::batch_workers`] threads; `0` = one per core).
    ///
    /// Results are positionally aligned with `queries`; each slot fails
    /// independently (a parse error or contained engine panic poisons
    /// only its own slot). The whole batch is admitted as
    /// `queries.len()` in-flight requests against
    /// [`MarketPolicy::max_in_flight`] — all-or-nothing: an overloaded
    /// market refuses every slot with [`MarketError::Overloaded`]. Each
    /// job gets the policy's per-quote fuel; the wall-clock deadline is
    /// shared across the batch. Exact quotes (cache hits and fresh ones)
    /// are served from / fill the sharded cache.
    // audit: holds-lock(state)
    pub fn quote_batch(&self, queries: &[&str]) -> Vec<Result<MarketQuote, MarketError>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let state = self.state.read();
        let slot = self.admit_many(queries.len(), state.policy.max_in_flight);
        if slot.is_err() {
            return queries
                .iter()
                .map(|_| Err(MarketError::Overloaded))
                .collect();
        }
        let schema = state.pricer.catalog().schema();
        let mut slots: Vec<Option<Result<MarketQuote, MarketError>>> = Vec::new();
        slots.resize_with(queries.len(), || None);
        // Parse every query and serve what the cache already has. Each
        // slot carries its *own* footprint stamp, computed at its own
        // lookup under the state read lock — one whole-batch stamp would
        // be wrong at both granularities (different queries have
        // different footprints, and a single load taken before the loop
        // could tag a late slot with an epoch older than the lookup that
        // missed for it).
        let mut misses: Vec<(usize, String, ConjunctiveQuery, Vec<AttrRef>, u64)> = Vec::new();
        for (i, text) in queries.iter().enumerate() {
            match parse_rule(schema, text) {
                Ok(q) => {
                    let key = pretty::render(&q, schema);
                    match self.cache.get(&key) {
                        Some(hit) => slots[i] = Some(Ok(hit)),
                        None => {
                            let footprint = query_footprint(state.pricer.catalog(), &q);
                            let stamp = self.cache.stamp(&footprint);
                            misses.push((i, key, q, footprint, stamp));
                        }
                    }
                }
                Err(e) => slots[i] = Some(Err(e.into())),
            }
        }
        // Fan the misses over the worker pool. Panic containment is per
        // job inside the pool, so `contain_panic` is not needed here.
        if !misses.is_empty() {
            let budget = state.policy.budget_for(misses.len() as u64);
            let workers = match state.policy.batch_workers {
                0 => qbdp_core::batch::default_workers(),
                n => n,
            };
            let bundles: Vec<Bundle> = misses
                .iter()
                .map(|(_, _, q, _, _)| Bundle::single(Ucq::single(q.clone())))
                .collect();
            let priced = state
                .pricer
                .price_batch_with_workers(&bundles, &budget, workers);
            for ((i, key, q, footprint, stamp), result) in misses.into_iter().zip(priced) {
                let finished = result
                    .map_err(|e| match e {
                        // The pool contains per-job panics as
                        // `PricingError::Internal`; surface them the same
                        // way `contain_panic` does on the serial path.
                        qbdp_core::PricingError::Internal(m) => MarketError::Internal(m),
                        other => MarketError::Pricing(other),
                    })
                    .and_then(|quote| Self::finish_quote(&state, &q, quote));
                if let Ok(mq) = &finished {
                    if mq.quality.is_exact() {
                        self.cache.insert(key, mq.clone(), footprint, stamp);
                    }
                }
                slots[i] = Some(finished);
            }
        }
        if qbdp_obs::enabled() {
            for q in slots.iter().flatten().flatten() {
                qbdp_obs::record(qbdp_obs::Ctr::MarketQuotes, 1);
                if !q.quality.is_exact() {
                    qbdp_obs::record(qbdp_obs::Ctr::MarketQuotesDegraded, 1);
                }
            }
        }
        slots
            .into_iter()
            .map(|s| {
                s.unwrap_or_else(|| {
                    Err(MarketError::Internal(
                        "batch slot was never filled".to_string(),
                    ))
                })
            })
            .collect()
    }

    /// Quote a parsed query (uncached path).
    // audit: holds-lock(state)
    pub fn quote(&self, q: &ConjunctiveQuery) -> Result<MarketQuote, MarketError> {
        let state = self.state.read();
        let _slot = self.admit(state.policy.max_in_flight)?;
        self.quote_inner(&state, q)
    }

    /// Price one query under the current policy. The incremental path
    /// (plan cache + warm start) serves only unlimited-budget quotes:
    /// under a fuel or deadline policy every quote is priced cold, so
    /// degraded `[lower, upper]` intervals come from exactly the same
    /// computation whether `incremental` is set or not.
    // audit: holds-lock(plan)
    fn quote_inner(&self, state: &State, q: &ConjunctiveQuery) -> Result<MarketQuote, MarketError> {
        let policy = state.policy;
        let quote = if policy.incremental && policy.fuel.is_none() && policy.deadline.is_none() {
            let mut plan = self.plan.lock();
            // A panic mid-reprice is contained: `PlanCache::quote` takes
            // the entry out of the map before mutating it, so the
            // poisonable state unwinds away with the panic.
            contain_panic(|| state.pricer.price_cq_with_plan(q, &mut plan))?
        } else {
            let budget = policy.budget();
            contain_panic(|| state.pricer.price_cq_within(q, &budget))?
        };
        Self::finish_quote(state, q, quote)
    }

    /// Apply market policy to a raw engine quote and dress it up for the
    /// buyer (shared by the serial and batch paths, so a batched quote is
    /// indistinguishable from a serial one).
    fn finish_quote(
        state: &State,
        q: &ConjunctiveQuery,
        quote: qbdp_core::Quote,
    ) -> Result<MarketQuote, MarketError> {
        if quote.price.is_infinite() {
            return Err(MarketError::NotForSale);
        }
        if !quote.quality.is_exact() && !state.policy.sell_degraded {
            return Err(MarketError::DeadlineExceeded);
        }
        let schema = state.pricer.catalog().schema();
        let receipt = quote
            .views
            .iter()
            .map(|v| format!("{} @ {}", v.display(schema), state.pricer.prices().get(v)))
            .collect();
        Ok(MarketQuote {
            query: pretty::render(q, schema),
            price: quote.price,
            receipt,
            views: quote.views,
            method: quote.method,
            class: quote.class,
            quality: quote.quality,
            lower_bound: quote.lower_bound,
        })
    }

    /// Purchase a query (datalog syntax): quote, evaluate, record, deliver.
    // audit: holds-lock(state)
    pub fn purchase_str(&self, query: &str) -> Result<Purchase, MarketError> {
        let sw = qbdp_obs::Stopwatch::start();
        if qbdp_obs::enabled() {
            qbdp_obs::trace::begin();
        }
        let out = self.purchase_str_inner(query);
        observe_served(
            query,
            sw,
            qbdp_obs::Hst::PurchaseLatencyUs,
            qbdp_obs::Ctr::MarketPurchases,
            out.as_ref().ok().map(|p| &p.quote),
            out.as_ref().err(),
        );
        out
    }

    /// The uninstrumented body of [`Market::purchase_str`].
    // audit: holds-lock(state)
    fn purchase_str_inner(&self, query: &str) -> Result<Purchase, MarketError> {
        let mut state = self.state.write();
        let _slot = self.admit(state.policy.max_in_flight)?;
        let q = parse_rule(state.pricer.catalog().schema(), query)?;
        let quote = self.quote_inner(&state, &q)?;
        // Evaluation runs the same buyer-controlled query the pricing
        // engine just priced; a panic here must not unwind through the
        // serving thread any more than a pricing panic may (the quote
        // paths already contain those).
        let mut answer: Vec<Tuple> =
            contain_panic(|| qbdp_query::eval::eval_cq(&q, state.pricer.instance()))?
                .into_iter()
                .collect();
        answer.sort();
        let transaction_id = state.ledger.record_sale(
            quote.query.clone(),
            quote.price,
            answer.len(),
            quote.views.len(),
        );
        Ok(Purchase {
            transaction_id,
            quote,
            answer,
        })
    }

    /// Seller-side data insertion (§2.7). Prices stay fixed; consistency is
    /// automatic for selection-view lists.
    // audit: holds-lock(state)
    pub fn insert(
        &self,
        relation: &str,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<usize, MarketError> {
        let mut state = self.state.write();
        let rel: RelId = state
            .pricer
            .catalog()
            .schema()
            .rel_id(relation)
            .ok_or_else(|| MarketError::Update(format!("unknown relation {relation}")))?;
        let added = state
            .pricer
            // audit: allow(R7: core's instance-data insert — a name collision with the durable market's `insert`, no lock behind it)
            .insert(rel, tuples)
            .map_err(|e| MarketError::Update(e.to_string()))?;
        // Invalidate while still holding the write lock, so the epoch
        // bumps are ordered with the data mutation (see `crate::cache`).
        // Scope: every column of the inserted relation — a quote's
        // footprint contains all columns of every relation it mentions,
        // so this reaches exactly the quotes that could see the new
        // tuples; quotes over disjoint relations stay cached. Plans are
        // evicted rather than patched: new tuples change the flow
        // network's topology, not just its capacities.
        let arity = state.pricer.catalog().schema().relation(rel).arity();
        let touched: Vec<AttrRef> = (0..arity).map(|i| AttrRef::new(rel, i as u32)).collect();
        self.cache.invalidate_columns(&touched);
        self.plan.lock().invalidate_rels(&[rel]);
        state.ledger.record_update(relation.to_string(), added);
        Ok(added)
    }

    /// Number of quotes currently held in the sharded cache (inspection
    /// aid; the count is momentary under concurrency).
    pub fn cached_quotes(&self) -> usize {
        self.cache.len()
    }

    /// The quote cache's current mutation generation: 0 for a fresh (or
    /// freshly recovered) market, bumped by every data/price mutation.
    /// Exposed so the durable purchase path can revalidate a quote
    /// against *any* intervening change, and so durability tests can
    /// assert a recovered market starts from 0 rather than inheriting
    /// replay bumps.
    pub fn cache_epoch(&self) -> u64 {
        self.cache.epoch()
    }

    /// Counters from the incremental pricing engine: plan-cache hits,
    /// misses, warm reprices, flow fallbacks, and evictions. All zero
    /// unless [`MarketPolicy::incremental`] is set.
    // audit: holds-lock(plan)
    pub fn plan_stats(&self) -> PlanStats {
        self.plan.lock().stats()
    }

    /// Clear the quote and plan caches and rewind every epoch to 0
    /// (recovery epilogue). Plans are rebuilt lazily from the recovered
    /// catalog/instance on the first incremental quote of each shape.
    // audit: holds-lock(plan)
    pub(crate) fn reset_cache(&self) {
        self.cache.reset();
        self.plan.lock().clear();
    }

    /// Quote and evaluate a purchase without recording it — the durable
    /// path splits purchasing into (price, log, apply) so the WAL entry
    /// is written *between* pricing and the ledger mutation.
    // audit: holds-lock(state)
    pub(crate) fn evaluate_purchase(
        &self,
        query: &str,
    ) -> Result<(MarketQuote, Vec<Tuple>), MarketError> {
        let state = self.state.read();
        let _slot = self.admit(state.policy.max_in_flight)?;
        let q = parse_rule(state.pricer.catalog().schema(), query)?;
        let quote = self.quote_inner(&state, &q)?;
        // Same containment as `purchase_str_inner`: the durable path's
        // evaluation must not unwind through `purchase_str`.
        let mut answer: Vec<Tuple> =
            contain_panic(|| qbdp_query::eval::eval_cq(&q, state.pricer.instance()))?
                .into_iter()
                .collect();
        answer.sort();
        Ok((quote, answer))
    }

    /// Record a sale whose terms are already known (durable live path
    /// and WAL replay), with checked revenue arithmetic.
    // audit: holds-lock(state)
    pub(crate) fn apply_recorded_sale(
        &self,
        query: String,
        price: Price,
        answer_tuples: usize,
        views: usize,
    ) -> Result<u64, MarketError> {
        let mut state = self.state.write();
        state
            .ledger
            .record_sale_checked(query, price, answer_tuples, views)
            .ok_or(MarketError::RevenueOverflow)
    }

    /// Replace the ledger wholesale (snapshot restore).
    // audit: holds-lock(state)
    pub(crate) fn restore_ledger(&self, ledger: Ledger) {
        self.state.write().ledger = ledger;
    }

    /// Snapshot of the running revenue.
    // audit: holds-lock(state)
    pub fn revenue(&self) -> Price {
        self.state.read().ledger.revenue()
    }

    /// Number of completed sales.
    // audit: holds-lock(state)
    pub fn sales(&self) -> usize {
        self.state.read().ledger.sales()
    }

    /// Run a closure over the ledger (snapshot access without cloning).
    // audit: holds-lock(state)
    pub fn with_ledger<R>(&self, f: impl FnOnce(&Ledger) -> R) -> R {
        f(&self.state.read().ledger)
    }

    /// Run a closure over the pricer (schema/catalog introspection).
    // audit: holds-lock(state)
    pub fn with_pricer<R>(&self, f: impl FnOnce(&Pricer) -> R) -> R {
        f(&self.state.read().pricer)
    }

    /// A full explanation of a quote (class, engine, itemized receipt).
    // audit: holds-lock(state)
    pub fn explain_str(&self, query: &str) -> Result<String, MarketError> {
        let state = self.state.read();
        let _slot = self.admit(state.policy.max_in_flight)?;
        let q = parse_rule(state.pricer.catalog().schema(), query)?;
        let budget = state.policy.budget();
        let quote = contain_panic(|| state.pricer.price_cq_within(&q, &budget))?;
        Ok(quote.explain(state.pricer.catalog(), state.pricer.prices()))
    }

    /// Seller-side price revision: set (or add) the price of one selection
    /// view. The revised list must remain arbitrage-free (Proposition 3.2)
    /// or the update is rejected and nothing changes. Quotes are
    /// re-derived from the new list (the cache is cleared).
    // audit: holds-lock(state)
    pub fn set_price(&self, view: &str, price: Price) -> Result<(), MarketError> {
        let mut state = self.state.write();
        // `view` syntax: `R.X=a`.
        let (attr, value) = view.split_once('=').ok_or_else(|| {
            MarketError::Update(format!("price selector must be `R.X=a`, got `{view}`"))
        })?;
        let aref = state
            .pricer
            .catalog()
            .schema()
            .resolve_attr(attr.trim())
            .map_err(|e| MarketError::Update(e.to_string()))?;
        let value = qbdp_catalog::Value::parse_literal(value)
            .ok_or_else(|| MarketError::Update(format!("bad value in `{view}`")))?;
        if !state.pricer.catalog().column(aref).contains(&value) {
            return Err(MarketError::Update(format!(
                "value {value} is outside the column of {attr}"
            )));
        }
        // Stage the change and re-check Prop 3.2.
        let mut staged = state.pricer.prices().clone();
        staged.set(SelectionView::new(aref, value), price);
        let violations =
            qbdp_core::consistency::find_list_arbitrage(state.pricer.catalog(), &staged);
        if let Some(v) = violations.first() {
            return Err(MarketError::InconsistentPrices(
                v.display(state.pricer.catalog()),
            ));
        }
        let pricer = Pricer::new(
            state.pricer.catalog().clone(),
            state.pricer.instance().clone(),
            staged,
        )
        .map_err(MarketError::Pricing)?;
        state.pricer = pricer;
        // Only quotes whose footprint contains the revised column can
        // change; everything disjoint stays cached. The plan cache needs
        // no eviction here — it diffs its stored price vector against
        // the live one on every lookup and warm-starts (or rebuilds)
        // itself when they differ.
        self.cache.invalidate_columns(&[aref]);
        Ok(())
    }

    /// Serialize the market's current state (catalog, data, prices) back to
    /// `.qdp` text — reopening it reproduces the same prices.
    // audit: holds-lock(state)
    pub fn to_qdp(&self) -> String {
        let state = self.state.read();
        let pricer = &state.pricer;
        let prices = pricer
            .prices()
            .iter()
            .map(|(v, p)| (v.attr, v.value, p.as_cents()))
            .collect();
        let file = QdpFile {
            catalog: pricer.catalog().clone(),
            instance: pricer.instance().clone(),
            prices,
        };
        file.to_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_catalog::tuple;

    const FIG1_QDP: &str = r#"
schema R(X)
schema S(X, Y)
schema T(Y)
column R.X = {a1, a2, a3, a4}
column S.X = {a1, a2, a3, a4}
column S.Y = {b1, b2, b3}
column T.Y = {b1, b2, b3}
tuple R(a1)
tuple R(a2)
tuple S(a1, b1)
tuple S(a1, b2)
tuple S(a2, b2)
tuple S(a4, b1)
tuple T(b1)
tuple T(b3)
price R.X=a1 100
price R.X=a2 100
price R.X=a3 100
price R.X=a4 100
price S.X=a1 100
price S.X=a2 100
price S.X=a3 100
price S.X=a4 100
price S.Y=b1 100
price S.Y=b2 100
price S.Y=b3 100
price T.Y=b1 100
price T.Y=b2 100
price T.Y=b3 100
"#;

    #[test]
    fn figure1_market_end_to_end() {
        let market = Market::open_qdp(FIG1_QDP).unwrap();
        let quote = market.quote_str("Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        assert_eq!(quote.price, Price::dollars(6));
        assert_eq!(quote.receipt.len(), 6);
        let purchase = market
            .purchase_str("Q(x, y) :- R(x), S(x, y), T(y)")
            .unwrap();
        assert_eq!(purchase.answer, vec![tuple!["a1", "b1"]]);
        assert_eq!(market.revenue(), Price::dollars(6));
        assert_eq!(market.sales(), 1);
    }

    #[test]
    fn unsellable_query_rejected() {
        // Remove all T prices: queries over T are not for sale.
        let qdp: String = FIG1_QDP
            .lines()
            .filter(|l| !l.starts_with("price T"))
            .collect::<Vec<_>>()
            .join("\n");
        let market = Market::open_qdp(&qdp).unwrap();
        let err = market.quote_str("Q(y) :- T(y)");
        assert!(matches!(err, Err(MarketError::NotForSale)));
        // But R-only queries still work.
        assert!(market.quote_str("Q(x) :- R(x)").is_ok());
    }

    #[test]
    fn arbitrage_priced_lists_rejected_at_open() {
        // σ_{S.X=a1} at $100 vs full cover of S.Y at... raise S.X=a1 price
        // beyond Σ_{S.Y} = $3.
        let qdp = FIG1_QDP.replace("price S.X=a1 100", "price S.X=a1 99999");
        let err = Market::open_qdp(&qdp);
        assert!(matches!(err, Err(MarketError::InconsistentPrices(_))));
    }

    #[test]
    fn insertions_update_prices_monotonically() {
        let market = Market::open_qdp(FIG1_QDP).unwrap();
        let before = market
            .quote_str("Q(x, y) :- R(x), S(x, y), T(y)")
            .unwrap()
            .price;
        market.insert("T", [tuple!["b2"]]).unwrap();
        let after = market
            .quote_str("Q(x, y) :- R(x), S(x, y), T(y)")
            .unwrap()
            .price;
        assert!(after >= before, "price dropped: {before} -> {after}");
        // Two new answers appear: (a1, b2) and (a2, b2).
        let p = market
            .purchase_str("Q(x, y) :- R(x), S(x, y), T(y)")
            .unwrap();
        assert_eq!(p.answer.len(), 3);
    }

    #[test]
    fn seller_price_revisions_validated() {
        let market = Market::open_qdp(FIG1_QDP).unwrap();
        let q = "Q(x, y) :- R(x), S(x, y), T(y)";
        assert_eq!(market.quote_str(q).unwrap().price, Price::dollars(6));
        // A discount on σ_{S.Y=b1} flows into the derived price.
        market.set_price("S.Y=b1", Price::cents(25)).unwrap();
        assert_eq!(market.quote_str(q).unwrap().price, Price::cents(525));
        // An inconsistent revision is rejected atomically: σ_{S.X=a1}
        // above the full cover of S.Y ($2.25 now).
        let err = market.set_price("S.X=a1", Price::dollars(3));
        assert!(matches!(err, Err(MarketError::InconsistentPrices(_))));
        assert_eq!(market.quote_str(q).unwrap().price, Price::cents(525));
        // Garbage selectors rejected.
        assert!(market.set_price("S.X", Price::ZERO).is_err());
        assert!(market.set_price("S.X=zz", Price::ZERO).is_err());
        assert!(market.set_price("Nope.X=a1", Price::ZERO).is_err());
    }

    #[test]
    fn quote_cache_hits_and_invalidates() {
        let market = Market::open_qdp(FIG1_QDP).unwrap();
        let q = "Q(x, y) :- R(x), S(x, y), T(y)";
        let first = market.quote_str(q).unwrap();
        // Cached: same (equivalent) query, different whitespace.
        let second = market.quote_str("Q(x,y) :- R(x), S(x,y), T(y)").unwrap();
        assert_eq!(first.price, second.price);
        assert_eq!(first.views, second.views);
        // Insertion invalidates: price may change (and here does).
        market.insert("T", [tuple!["b2"]]).unwrap();
        let third = market.quote_str(q).unwrap();
        assert!(
            third.price > first.price,
            "{} !> {}",
            third.price,
            first.price
        );
    }

    #[test]
    fn quote_batch_matches_serial_and_fills_cache() {
        let queries = [
            "Q(x, y) :- R(x), S(x, y), T(y)",
            "Q(x) :- R(x)",
            "Q(y) :- T(y)",
            "Q(x, y) :- S(x, y)",
        ];
        // Serial reference prices from an identical, separate market so
        // the batched market starts with a cold cache.
        let reference = Market::open_qdp(FIG1_QDP).unwrap();
        let serial: Vec<Price> = queries
            .iter()
            .map(|q| reference.quote_str(q).unwrap().price)
            .collect();
        let market = Market::open_qdp(FIG1_QDP).unwrap();
        assert_eq!(market.cached_quotes(), 0);
        let batch = market.quote_batch(&queries);
        let batch_prices: Vec<Price> = batch.into_iter().map(|r| r.unwrap().price).collect();
        // S(a3, b3) joins nothing priced here, so prices are unchanged.
        assert_eq!(batch_prices, serial);
        assert_eq!(market.cached_quotes(), queries.len());
        // Second batch is served from the cache (same prices).
        let again: Vec<Price> = market
            .quote_batch(&queries)
            .into_iter()
            .map(|r| r.unwrap().price)
            .collect();
        assert_eq!(again, serial);
    }

    #[test]
    fn quote_batch_isolates_per_slot_failures() {
        let market = Market::open_qdp(FIG1_QDP).unwrap();
        let out = market.quote_batch(&["Q(x) :- R(x)", "not a rule at all", "Q(y) :- T(y)"]);
        assert_eq!(out.len(), 3);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(MarketError::Query(_))), "{:?}", out[1]);
        assert!(out[2].is_ok());
    }

    /// Regression: a batch of `k` queries must count as `k` in-flight
    /// jobs against `max_in_flight`, not 1 — otherwise one batch call
    /// could run `k` concurrent pricing jobs past the admission cap.
    #[test]
    fn batch_admission_counts_every_query() {
        let market = Market::open_qdp(FIG1_QDP).unwrap();
        market.set_policy(MarketPolicy {
            max_in_flight: 2,
            ..MarketPolicy::default()
        });
        let queries = ["Q(x) :- R(x)", "Q(y) :- T(y)", "Q(x, y) :- S(x, y)"];
        let refused = market.quote_batch(&queries);
        assert_eq!(refused.len(), 3);
        for slot in &refused {
            assert!(matches!(slot, Err(MarketError::Overloaded)), "{slot:?}");
        }
        // A batch within the cap is admitted, and the refused batch
        // released its (tentative) slots.
        let ok = market.quote_batch(&queries[..2]);
        assert!(ok.iter().all(|r| r.is_ok()));
        // Serial quoting still works afterwards: no slots leaked.
        assert!(market.quote_str("Q(x) :- R(x)").is_ok());
    }

    #[test]
    fn empty_batch_is_empty() {
        let market = Market::open_qdp(FIG1_QDP).unwrap();
        assert!(market.quote_batch(&[]).is_empty());
    }

    #[test]
    fn explain_narrates_the_quote() {
        let market = Market::open_qdp(FIG1_QDP).unwrap();
        let text = market
            .explain_str("Q(x, y) :- R(x), S(x, y), T(y)")
            .unwrap();
        assert!(text.contains("GeneralizedChain"), "{text}");
        assert!(text.contains("price           : $6.00"), "{text}");
        assert!(text.contains("σ[S.Y=b1] @ $1.00"), "{text}");
        assert!(text.contains("arbitrage-freeness"), "{text}");
    }

    #[test]
    fn qdp_roundtrip_preserves_prices() {
        let market = Market::open_qdp(FIG1_QDP).unwrap();
        market.insert("T", [tuple!["b2"]]).unwrap();
        let before = market
            .quote_str("Q(x, y) :- R(x), S(x, y), T(y)")
            .unwrap()
            .price;
        let saved = market.to_qdp();
        let reopened = Market::open_qdp(&saved).unwrap();
        let after = reopened
            .quote_str("Q(x, y) :- R(x), S(x, y), T(y)")
            .unwrap()
            .price;
        assert_eq!(before, after);
    }

    #[test]
    fn bad_updates_rejected() {
        let market = Market::open_qdp(FIG1_QDP).unwrap();
        assert!(market.insert("Nope", [tuple!["a1"]]).is_err());
        assert!(market.insert("R", [tuple!["outside-column"]]).is_err());
        // State unchanged: the query still quotes at $6.
        assert_eq!(
            market
                .quote_str("Q(x, y) :- R(x), S(x, y), T(y)")
                .unwrap()
                .price,
            Price::dollars(6)
        );
    }
}
