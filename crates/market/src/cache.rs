//! The sharded, column-epoch-validated quote cache.
//!
//! Quoting is idempotent between data/price updates, and markets see the
//! same queries repeatedly, so the common case should be a hash lookup.
//! The cache lives *outside* the market's state lock: lookups and inserts
//! take only a per-shard `RwLock`, so a batch of workers filling the
//! cache never serializes on the state lock, and two workers quoting
//! different queries almost never touch the same shard.
//!
//! # Coherence protocol
//!
//! Staleness is ruled out by epoch tagging rather than by lock ordering —
//! but the epochs are **per column** (per [`AttrRef`]), not global, so an
//! update invalidates only the quotes it can actually change:
//!
//! * Every column of the catalog owns an `AtomicU64` **epoch**. A writer
//!   (data insert, price revision) bumps the epochs of exactly the
//!   columns it touches, *while it still holds the market's state write
//!   lock* ([`ShardedQuoteCache::invalidate_columns`]).
//! * A quote's **footprint** is the set of columns its price is derived
//!   from (every attribute of every relation the query mentions — see
//!   `qbdp_core::query_footprint`). Its **stamp** is the sum of its
//!   footprint's column epochs.
//! * A reader computes the stamp *under the state read lock* — so the
//!   value it sees names exactly the data snapshot it prices against —
//!   and tags its insert with it. [`ShardedQuoteCache::get`] recomputes
//!   the stamp from the entry's stored footprint and serves the entry
//!   only if it matches; [`ShardedQuoteCache::insert`] re-checks the
//!   stamp under the shard write lock and discards the entry if any of
//!   its columns has moved on.
//!
//! Soundness of the sum: epochs only grow, so an unchanged sum means
//! every term is unchanged — no footprint column was bumped since the
//! quote was computed. (Sums use wrapping arithmetic; aliasing would
//! need 2⁶⁴ bumps.) Any interleaving therefore serves only quotes
//! computed against the live snapshot. The payoff over a global epoch is
//! that entries whose footprint is **disjoint** from an update stay
//! servable: repricing `R.X=a` does not evict cached quotes over `S`.
//!
//! [`ShardedQuoteCache::invalidate_columns`] additionally sweeps the
//! shards, removing entries whose footprint intersects the touched
//! columns (bump-then-sweep: a racing insert tagged with the old stamp
//! either lands before the sweep and is removed, or after and is
//! discarded by its own stamp re-check), so no dead entry lingers and
//! memory stays bounded by the live entries.
//!
//! A separate **generation** counter is bumped once per mutation and
//! exposed as [`ShardedQuoteCache::epoch`]: the durable market's
//! purchase path revalidates quotes against it ("did *anything* change
//! between pricing and logging?"), and recovery rewinds it to 0.
//!
//! # Shard count
//!
//! 16 shards is deliberately modest: the point of sharding is to make
//! lock *hold times* irrelevant, not to scale to hundreds of cores.
//! With `W` workers the probability of two of them colliding on one of
//! 16 shards is small for the worker counts a pricing host realistically
//! runs (≤ 16 — pricing is CPU-bound), while the whole cache stays two
//! cache lines of lock words. Growing it costs nothing if hosts widen.

use crate::market::MarketQuote;
use parking_lot::RwLock;
use qbdp_catalog::fxhash::FxHasher;
use qbdp_catalog::{AttrRef, FxHashMap};
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independently locked shards. Must be a power of two (shard
/// selection masks the key hash).
pub(crate) const SHARDS: usize = 16;

struct Entry {
    /// Sum of the footprint's column epochs when the quote was computed;
    /// served only while every one of them is unchanged.
    stamp: u64,
    /// The columns the quote's price is derived from.
    footprint: Vec<AttrRef>,
    quote: MarketQuote,
}

/// A fixed array of lock-sharded maps from rendered (canonical) query
/// text to stamp-tagged quotes, validated against per-column epochs.
/// See the module docs for the protocol.
pub(crate) struct ShardedQuoteCache {
    /// Bumped once per mutation; the durable revalidation token.
    generation: AtomicU64,
    /// One epoch per catalog column, fixed at construction (the schema
    /// never changes after a market opens).
    columns: FxHashMap<AttrRef, AtomicU64>,
    shards: [RwLock<FxHashMap<String, Entry>>; SHARDS],
}

impl ShardedQuoteCache {
    /// Build a cache over the given catalog columns (every [`AttrRef`]
    /// of the schema).
    pub(crate) fn new(columns: impl IntoIterator<Item = AttrRef>) -> Self {
        ShardedQuoteCache {
            generation: AtomicU64::new(0),
            columns: columns
                .into_iter()
                .map(|a| (a, AtomicU64::new(0)))
                .collect(),
            shards: std::array::from_fn(|_| RwLock::new(FxHashMap::default())),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<FxHashMap<String, Entry>> {
        let mut h = FxHasher::default();
        h.write(key.as_bytes());
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// The stamp of a footprint: the (wrapping) sum of its column
    /// epochs. Compute it under the market's state **read lock** to pair
    /// it with the data snapshot being priced.
    // audit: bounded(footprint is one column list, fixed per query)
    pub(crate) fn stamp(&self, footprint: &[AttrRef]) -> u64 {
        footprint
            .iter()
            .map(|a| self.columns.get(a).map_or(0, |e| e.load(Ordering::SeqCst)))
            .fold(0u64, u64::wrapping_add)
    }

    /// The mutation generation. Bumped once per data/price update; the
    /// durable purchase path uses it to detect *any* intervening change.
    pub(crate) fn epoch(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Look up a quote; served only if none of the entry's footprint
    /// columns has been bumped since it was computed. Call under the
    /// market's state read lock so the comparison is against the live
    /// snapshot.
    // audit: holds-lock(cache-shard)
    pub(crate) fn get(&self, key: &str) -> Option<MarketQuote> {
        let hit = self.get_inner(key);
        // The registry is the single tally for cache effectiveness: a
        // stamp-invalidated entry counts as a miss (it must be repriced),
        // same as an absent one.
        qbdp_obs::record(
            if hit.is_some() {
                qbdp_obs::Ctr::MarketCacheHits
            } else {
                qbdp_obs::Ctr::MarketCacheMisses
            },
            1,
        );
        hit
    }

    // audit: holds-lock(cache-shard)
    fn get_inner(&self, key: &str) -> Option<MarketQuote> {
        let shard = self.shard(key).read();
        let entry = shard.get(key)?;
        if entry.stamp == self.stamp(&entry.footprint) {
            Some(entry.quote.clone())
        } else {
            None
        }
    }

    /// Insert a quote computed under `stamp` over `footprint`; silently
    /// discarded if any footprint column has been bumped since (caching
    /// it would serve a stale price until the *next* touching update).
    // audit: holds-lock(cache-shard)
    pub(crate) fn insert(
        &self,
        key: String,
        quote: MarketQuote,
        footprint: Vec<AttrRef>,
        stamp: u64,
    ) {
        let mut shard = self.shard(&key).write();
        // Re-check under the shard lock: an invalidation that has already
        // swept this shard must not see the entry reappear.
        if self.stamp(&footprint) == stamp {
            // audit: allow(R7: `shard` is the guard local — its `insert` is std HashMap surface, not the market's; cache-shard is innermost)
            shard.insert(
                key,
                Entry {
                    stamp,
                    footprint,
                    quote,
                },
            );
        }
    }

    /// Invalidate every cached quote whose footprint intersects `attrs`.
    /// Call while holding the market's state **write lock** so the bumps
    /// are ordered with the data mutation. Bump-then-sweep: a racing
    /// insert tagged with the old stamp either lands before the sweep
    /// (and is removed) or after (and is discarded by its own stamp
    /// re-check), so no dead entry lingers. Entries disjoint from
    /// `attrs` keep their stamps valid and stay servable.
    // audit: holds-lock(cache-shard)
    pub(crate) fn invalidate_columns(&self, attrs: &[AttrRef]) {
        qbdp_obs::record(qbdp_obs::Ctr::MarketInvalidations, 1);
        qbdp_obs::record(qbdp_obs::Ctr::MarketColumnsInvalidated, attrs.len() as u64);
        self.generation.fetch_add(1, Ordering::SeqCst);
        for a in attrs {
            if let Some(e) = self.columns.get(a) {
                e.fetch_add(1, Ordering::SeqCst);
            }
        }
        for shard in &self.shards {
            shard
                .write()
                .retain(|_, e| !e.footprint.iter().any(|f| attrs.contains(f)));
        }
    }

    /// Total cached quotes across all shards (test/introspection aid).
    // audit: holds-lock(cache-shard)
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Clear the shards and rewind every epoch to 0. Recovery uses this
    /// after replay: the replayed mutations bumped the epochs many
    /// times, but a recovered market starts with an empty cache and
    /// should tag fresh quotes from zeroed epochs like a newly opened
    /// one (pre-crash cache entries died with the process; none can
    /// survive to here).
    // audit: holds-lock(cache-shard)
    pub(crate) fn reset(&self) {
        self.generation.store(0, Ordering::SeqCst);
        for e in self.columns.values() {
            e.store(0, Ordering::SeqCst);
        }
        for shard in &self.shards {
            shard.write().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_catalog::RelId;
    use qbdp_core::dichotomy::QueryClass;
    use qbdp_core::{Price, PricingMethod, QuoteQuality};

    fn quote(price: Price) -> MarketQuote {
        MarketQuote {
            query: "Q() :- R(x)".into(),
            price,
            receipt: Vec::new(),
            views: Vec::new(),
            method: PricingMethod::Trivial,
            class: QueryClass::GeneralizedChain,
            quality: QuoteQuality::Exact,
            lower_bound: price,
        }
    }

    /// Two relations, two columns each: R.{0,1} and S.{0,1}.
    fn attrs() -> Vec<AttrRef> {
        vec![
            AttrRef::new(RelId(0), 0),
            AttrRef::new(RelId(0), 1),
            AttrRef::new(RelId(1), 0),
            AttrRef::new(RelId(1), 1),
        ]
    }

    fn cache() -> ShardedQuoteCache {
        ShardedQuoteCache::new(attrs())
    }

    #[test]
    fn serves_only_current_stamp() {
        let cache = cache();
        let fp = vec![AttrRef::new(RelId(0), 0)];
        let s = cache.stamp(&fp);
        cache.insert("q1".into(), quote(Price::dollars(1)), fp.clone(), s);
        assert_eq!(cache.get("q1").unwrap().price, Price::dollars(1));
        cache.invalidate_columns(&fp);
        assert!(cache.get("q1").is_none(), "stale stamp must not serve");
        assert_eq!(cache.len(), 0, "the sweep removed the touched entry");
    }

    #[test]
    fn disjoint_entries_survive_invalidation() {
        let cache = cache();
        let over_r = vec![AttrRef::new(RelId(0), 0), AttrRef::new(RelId(0), 1)];
        let over_s = vec![AttrRef::new(RelId(1), 0), AttrRef::new(RelId(1), 1)];
        let sr = cache.stamp(&over_r);
        let ss = cache.stamp(&over_s);
        cache.insert("qr".into(), quote(Price::dollars(1)), over_r, sr);
        cache.insert("qs".into(), quote(Price::dollars(2)), over_s, ss);
        // Touching an R column kills the R quote but leaves the S quote
        // servable — the whole point of column-scoped epochs.
        cache.invalidate_columns(&[AttrRef::new(RelId(0), 1)]);
        assert!(cache.get("qr").is_none());
        assert_eq!(cache.get("qs").unwrap().price, Price::dollars(2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn stale_insert_is_discarded() {
        let cache = cache();
        let fp = vec![AttrRef::new(RelId(0), 0)];
        let s = cache.stamp(&fp);
        cache.invalidate_columns(&fp);
        cache.insert("q1".into(), quote(Price::dollars(1)), fp, s);
        assert!(cache.get("q1").is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn generation_counts_every_mutation() {
        let cache = cache();
        assert_eq!(cache.epoch(), 0);
        cache.invalidate_columns(&[AttrRef::new(RelId(0), 0)]);
        cache.invalidate_columns(&[AttrRef::new(RelId(1), 0)]);
        assert_eq!(cache.epoch(), 2, "one bump per mutation, any column");
        cache.reset();
        assert_eq!(cache.epoch(), 0, "recovery rewinds to a cold cache");
    }

    #[test]
    fn reset_rewinds_column_epochs_too() {
        let cache = cache();
        let fp = vec![AttrRef::new(RelId(0), 0)];
        cache.invalidate_columns(&fp);
        let bumped = cache.stamp(&fp);
        assert_ne!(bumped, 0);
        cache.reset();
        assert_eq!(cache.stamp(&fp), 0, "stamps restart from zero");
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn keys_spread_over_shards() {
        let cache = cache();
        let fp = vec![AttrRef::new(RelId(0), 0)];
        let s = cache.stamp(&fp);
        for i in 0..256u64 {
            cache.insert(
                format!("Q{i}(x) :- R(x)"),
                quote(Price::cents(i)),
                fp.clone(),
                s,
            );
        }
        assert_eq!(cache.len(), 256);
        let occupied = cache.shards.iter().filter(|s| !s.read().is_empty()).count();
        assert!(occupied > SHARDS / 2, "fx-hash should spread: {occupied}");
        for i in 0..256u64 {
            assert_eq!(
                cache.get(&format!("Q{i}(x) :- R(x)")).unwrap().price,
                Price::cents(i)
            );
        }
    }
}
