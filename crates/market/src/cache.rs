//! The sharded, epoch-validated quote cache.
//!
//! Quoting is idempotent between data/price updates, and markets see the
//! same queries repeatedly, so the common case should be a hash lookup.
//! The cache lives *outside* the market's state lock: lookups and inserts
//! take only a per-shard `RwLock`, so a batch of workers filling the
//! cache never serializes on the state lock, and two workers quoting
//! different queries almost never touch the same shard.
//!
//! # Coherence protocol
//!
//! Staleness is ruled out by epoch tagging rather than by lock ordering:
//!
//! * The current **epoch** is an `AtomicU64` bumped by every writer
//!   (data insert, price revision) *while it still holds the market's
//!   state write lock*.
//! * A reader loads the epoch *under the state read lock* — so the value
//!   it sees is the epoch of exactly the data snapshot it prices
//!   against — and tags its insert with it.
//! * [`ShardedQuoteCache::insert`] discards the entry if the epoch has
//!   moved on; [`ShardedQuoteCache::get`] serves an entry only if its tag
//!   equals the current epoch.
//!
//! Any interleaving therefore serves only quotes computed against the
//! live snapshot: an entry tagged `e` can only be served while the epoch
//! still *is* `e`, i.e. before any update invalidated it.
//! [`ShardedQuoteCache::invalidate`] additionally clears the shards
//! (bump-then-clear, so no dead entry survives) to keep memory bounded.
//!
//! # Shard count
//!
//! 16 shards is deliberately modest: the point of sharding is to make
//! lock *hold times* irrelevant, not to scale to hundreds of cores.
//! With `W` workers the probability of two of them colliding on one of
//! 16 shards is small for the worker counts a pricing host realistically
//! runs (≤ 16 — pricing is CPU-bound), while the whole cache stays two
//! cache lines of lock words. Growing it costs nothing if hosts widen.

use crate::market::MarketQuote;
use parking_lot::RwLock;
use qbdp_catalog::fxhash::FxHasher;
use qbdp_catalog::FxHashMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independently locked shards. Must be a power of two (shard
/// selection masks the key hash).
pub(crate) const SHARDS: usize = 16;

struct Entry {
    /// Epoch the quote was computed under; served only while current.
    epoch: u64,
    quote: MarketQuote,
}

/// A fixed array of lock-sharded maps from rendered (canonical) query
/// text to epoch-tagged quotes. See the module docs for the protocol.
pub(crate) struct ShardedQuoteCache {
    epoch: AtomicU64,
    shards: [RwLock<FxHashMap<String, Entry>>; SHARDS],
}

impl ShardedQuoteCache {
    pub(crate) fn new() -> Self {
        ShardedQuoteCache {
            epoch: AtomicU64::new(0),
            shards: std::array::from_fn(|_| RwLock::new(FxHashMap::default())),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<FxHashMap<String, Entry>> {
        let mut h = FxHasher::default();
        h.write(key.as_bytes());
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// The current epoch. Load it under the market's state **read lock**
    /// to pair it with the data snapshot being priced.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Look up a quote; only entries tagged with the current epoch are
    /// served.
    // audit: holds-lock(cache-shard)
    pub(crate) fn get(&self, key: &str) -> Option<MarketQuote> {
        let shard = self.shard(key).read();
        let entry = shard.get(key)?;
        if entry.epoch == self.epoch.load(Ordering::SeqCst) {
            Some(entry.quote.clone())
        } else {
            None
        }
    }

    /// Insert a quote computed under `epoch`; silently discarded if an
    /// update has bumped the epoch since (caching it would serve a stale
    /// price until the *next* update).
    // audit: holds-lock(cache-shard)
    pub(crate) fn insert(&self, key: String, quote: MarketQuote, epoch: u64) {
        let mut shard = self.shard(&key).write();
        // Re-check under the shard lock: an invalidation that has already
        // cleared this shard must not see the entry reappear.
        if self.epoch.load(Ordering::SeqCst) == epoch {
            shard.insert(key, Entry { epoch, quote });
        }
    }

    /// Invalidate everything. Call while holding the market's state
    /// **write lock** so the bump is ordered with the data mutation.
    /// Bump-then-clear: a racing insert tagged with the old epoch either
    /// lands before the clear (and is removed) or after (and is discarded
    /// by its own epoch re-check), so no dead entry lingers.
    // audit: holds-lock(cache-shard)
    pub(crate) fn invalidate(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    /// Total cached quotes across all shards (test/introspection aid).
    // audit: holds-lock(cache-shard)
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Clear the shards and rewind the epoch to 0. Recovery uses this
    /// after replay: the replayed inserts bumped the epoch many times,
    /// but a recovered market starts with an empty cache and should tag
    /// fresh quotes from epoch 0 like a newly opened one (pre-crash
    /// cache entries died with the process; none can survive to here).
    // audit: holds-lock(cache-shard)
    pub(crate) fn reset(&self) {
        self.epoch.store(0, Ordering::SeqCst);
        for shard in &self.shards {
            shard.write().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_core::dichotomy::QueryClass;
    use qbdp_core::{Price, PricingMethod, QuoteQuality};

    fn quote(price: Price) -> MarketQuote {
        MarketQuote {
            query: "Q() :- R(x)".into(),
            price,
            receipt: Vec::new(),
            views: Vec::new(),
            method: PricingMethod::Trivial,
            class: QueryClass::GeneralizedChain,
            quality: QuoteQuality::Exact,
            lower_bound: price,
        }
    }

    #[test]
    fn serves_only_current_epoch() {
        let cache = ShardedQuoteCache::new();
        let e = cache.epoch();
        cache.insert("q1".into(), quote(Price::dollars(1)), e);
        assert_eq!(cache.get("q1").unwrap().price, Price::dollars(1));
        cache.invalidate();
        assert!(cache.get("q1").is_none(), "stale epoch must not serve");
        assert_eq!(cache.len(), 0, "invalidate clears shards");
    }

    #[test]
    fn stale_insert_is_discarded() {
        let cache = ShardedQuoteCache::new();
        let e = cache.epoch();
        cache.invalidate();
        cache.insert("q1".into(), quote(Price::dollars(1)), e);
        assert!(cache.get("q1").is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn keys_spread_over_shards() {
        let cache = ShardedQuoteCache::new();
        let e = cache.epoch();
        for i in 0..256u64 {
            cache.insert(format!("Q{i}(x) :- R(x)"), quote(Price::cents(i)), e);
        }
        assert_eq!(cache.len(), 256);
        let occupied = cache.shards.iter().filter(|s| !s.read().is_empty()).count();
        assert!(occupied > SHARDS / 2, "fx-hash should spread: {occupied}");
        for i in 0..256u64 {
            assert_eq!(
                cache.get(&format!("Q{i}(x) :- R(x)")).unwrap().price,
                Price::cents(i)
            );
        }
    }
}
