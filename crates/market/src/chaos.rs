//! The chaos harness: randomized fault schedules against a full market
//! workload, with the three robustness invariants checked as data.
//!
//! One [`run_schedule`] call drives a [`DurableMarket`] on a
//! [`FaultFs`] through a seeded stream of inserts, price revisions,
//! purchases, and quotes while the injector rolls transient faults,
//! `ENOSPC`, poisoning fsync failures, and torn writes under it — then
//! power-cycles the filesystem and recovers. Everything is
//! deterministic in the seed, so a failing schedule replays exactly
//! (the `qbdp chaos` CLI verb prints the seed for that reason).
//!
//! # The invariants
//!
//! 1. **Prefix consistency / no lost ack** (checked under
//!    [`FsyncPolicy::Always`]): the recovered state equals the state
//!    after the last *acknowledged* mutation — or, when the final
//!    store error was a poisoning fsync (whose append may or may not
//!    have reached the platter), that state plus exactly the one
//!    uncertain tail event. Never a blend, never less, never more.
//! 2. **Degraded-quote soundness**: once the market degrades to
//!    read-only, every served quote still carries a sound
//!    `[lower_bound, price]` interval and equals the quote a fresh
//!    market over the same frozen state would give.
//! 3. **Clean recovery**: reopening after the fault clears always
//!    succeeds, comes back [`MarketHealth::Healthy`], and both serves
//!    and accepts mutations again.
//!
//! Violations are collected into [`ChaosReport::violations`] rather
//! than panicking, so a single schedule reports *all* the damage and
//! the harness stays usable from the CLI.

use crate::durable::{DurableMarket, MarketHealth};
use crate::error::MarketError;
use crate::ledger::Ledger;
use crate::market::Market;
use qbdp_catalog::{Tuple, Value};
use qbdp_core::Price;
use qbdp_store::vfs::SplitMix64;
use qbdp_store::{FaultFs, FaultPlan, FsyncPolicy, RetryPolicy, SeededFaults, StoreError};
use std::path::Path;
use std::sync::Arc;

/// Per-mille fault rates for the seeded injector; each rate applies to
/// the operations [`SeededFaults`] documents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultMix {
    /// `EINTR`/`EAGAIN`, per mille of filesystem operations.
    pub transient: u32,
    /// `ENOSPC` partial write, per mille of writes.
    pub enospc: u32,
    /// Poisoning fsync failure, per mille of fsyncs.
    pub fsync_fail: u32,
    /// Torn write + power cut, per mille of writes.
    pub torn_write: u32,
}

impl FaultMix {
    /// Every fault class armed at the rates the CI chaos job uses.
    pub fn all() -> FaultMix {
        FaultMix {
            transient: 40,
            enospc: 12,
            fsync_fail: 12,
            torn_write: 8,
        }
    }

    /// No faults: the clean-path configuration the E16 bench uses to
    /// measure pure injector + retry-policy overhead.
    pub fn none() -> FaultMix {
        FaultMix {
            transient: 0,
            enospc: 0,
            fsync_fail: 0,
            torn_write: 0,
        }
    }

    fn seeded(&self, seed: u64) -> Option<SeededFaults> {
        if self.transient == 0 && self.enospc == 0 && self.fsync_fail == 0 && self.torn_write == 0 {
            return None;
        }
        Some(SeededFaults {
            seed,
            transient_per_mille: self.transient,
            enospc_per_mille: self.enospc,
            fsync_fail_per_mille: self.fsync_fail,
            torn_write_per_mille: self.torn_write,
        })
    }
}

/// One chaos schedule: a seed, a number of workload operations, the
/// fault mix, and the fsync policy the market runs under.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed for both the workload stream and the fault injector.
    pub seed: u64,
    /// Workload operations to attempt before the power cycle.
    pub ops: u32,
    /// Seeded fault rates.
    pub fault: FaultMix,
    /// Fsync policy. The no-lost-ack half of invariant 1 is only
    /// asserted under [`FsyncPolicy::Always`]; weaker policies
    /// deliberately trade acked-tail durability for latency.
    pub fsync: FsyncPolicy,
}

impl ChaosConfig {
    /// The standard schedule: `ops` operations under every fault class
    /// with `FsyncPolicy::Always`, ready for invariant checking.
    pub fn new(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            ops: 40,
            fault: FaultMix::all(),
            fsync: FsyncPolicy::Always,
        }
    }
}

/// What one schedule did and found. `violations` empty means every
/// invariant held.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Workload operations attempted.
    pub ops_attempted: u64,
    /// Mutations acknowledged (durably logged and applied).
    pub acked: u64,
    /// Mutations refused with a store-layer error.
    pub store_errors: u64,
    /// Mutations refused because the market had degraded to read-only.
    pub degraded_ops: u64,
    /// Quotes served while degraded (each checked for soundness).
    pub degraded_quotes: u64,
    /// Faults the injector actually fired.
    pub faults_injected: u64,
    /// True when recovery surfaced the one uncertain tail event of a
    /// poisoning fsync (legal; counted to prove the window is real).
    pub recovered_pending_tail: bool,
    /// Invariant violations, human-readable. Empty = sound.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// True when every invariant held.
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} op(s): {} acked, {} store error(s), {} degraded-refused, \
             {} degraded quote(s), {} fault(s) injected{}",
            self.ops_attempted,
            self.acked,
            self.store_errors,
            self.degraded_ops,
            self.degraded_quotes,
            self.faults_injected,
            if self.recovered_pending_tail {
                ", pending tail recovered"
            } else {
                ""
            }
        )?;
        for v in &self.violations {
            write!(f, "\nVIOLATION: {v}")?;
        }
        Ok(())
    }
}

/// The market's shape as mined from its canonical `.qdp` text: what the
/// op generator needs to produce valid-by-construction (and a few
/// deliberately refusable) operations against *any* market, scenario
/// generators included.
struct Shape {
    /// relation name → attribute names.
    relations: Vec<(String, Vec<String>)>,
    /// `R.X` → declared value literals.
    columns: Vec<(String, Vec<String>)>,
    /// Priced selectors (`R.X=a1`).
    views: Vec<String>,
}

impl Shape {
    fn parse(qdp: &str) -> Result<Shape, MarketError> {
        let mut shape = Shape {
            relations: Vec::new(),
            columns: Vec::new(),
            views: Vec::new(),
        };
        for line in qdp.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("schema ") {
                let (name, args) = split_call(rest)
                    .ok_or_else(|| MarketError::Update(format!("bad schema line: {line}")))?;
                shape.relations.push((name, args));
            } else if let Some(rest) = line.strip_prefix("column ") {
                let (attr, body) = rest
                    .split_once('=')
                    .ok_or_else(|| MarketError::Update(format!("bad column line: {line}")))?;
                let body = body.trim();
                let inner = body
                    .strip_prefix('{')
                    .and_then(|b| b.strip_suffix('}'))
                    .ok_or_else(|| MarketError::Update(format!("bad column line: {line}")))?;
                // Values whose rendering embeds a comma would mis-split
                // here; they are skipped (harmless — the generator just
                // never picks them) rather than mis-parsed, because
                // only literals `parse_literal` accepts survive.
                let values: Vec<String> = inner
                    .split(',')
                    .map(str::trim)
                    .filter(|v| Value::parse_literal(v).is_some())
                    .map(str::to_string)
                    .collect();
                shape.columns.push((attr.trim().to_string(), values));
            } else if let Some(rest) = line.strip_prefix("price ") {
                if let Some((sel, _)) = rest.rsplit_once(char::is_whitespace) {
                    shape.views.push(sel.trim().to_string());
                }
            }
        }
        if shape.relations.is_empty() {
            return Err(MarketError::Update("no relations in market".to_string()));
        }
        Ok(shape)
    }

    fn column_values(&self, attr: &str) -> &[String] {
        self.columns
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }
}

/// Parse `Name(a, b, c)` into name + argument names.
fn split_call(s: &str) -> Option<(String, Vec<String>)> {
    let open = s.find('(')?;
    let body = s.get(open + 1..)?.strip_suffix(')')?;
    let name = s[..open].trim().to_string();
    let args = body
        .split(',')
        .map(|a| a.trim().to_string())
        .filter(|a| !a.is_empty())
        .collect();
    Some((name, args))
}

/// Render a stored column literal as a datalog constant: integers stay
/// bare, text is single-quoted.
fn datalog_const(literal: &str) -> Option<String> {
    match Value::parse_literal(literal)? {
        Value::Int(i) => Some(i.to_string()),
        v => {
            let text = v.render_literal();
            let bare = text.trim_matches('\'');
            if bare.contains('\'') {
                None // unquotable in the datalog grammar; skip
            } else {
                Some(format!("'{bare}'"))
            }
        }
    }
}

/// One generated workload operation, kept replayable so the pending
/// (maybe-durable) state after a poisoning fault can be computed on a
/// clone.
#[derive(Clone, Debug)]
enum Op {
    Insert {
        relation: String,
        values: Vec<Value>,
    },
    SetPrice {
        view: String,
        cents: u64,
    },
    Purchase {
        query: String,
    },
    Quote {
        query: String,
    },
}

fn gen_query(shape: &Shape, rng: &mut SplitMix64) -> Option<String> {
    let (rel, attrs) = &shape.relations[rng.next_below(shape.relations.len() as u64) as usize];
    let vars: Vec<String> = (0..attrs.len()).map(|i| format!("x{i}")).collect();
    if rng.next_below(2) == 0 {
        // Full scan.
        let head = vars.join(", ");
        return Some(format!("Q({head}) :- {rel}({head})"));
    }
    // Bind one position to a declared constant.
    let pos = rng.next_below(attrs.len() as u64) as usize;
    let values = shape.column_values(&format!("{rel}.{}", attrs[pos]));
    if values.is_empty() {
        return None;
    }
    let constant = datalog_const(&values[rng.next_below(values.len() as u64) as usize])?;
    let body: Vec<String> = vars
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if i == pos {
                constant.clone()
            } else {
                v.clone()
            }
        })
        .collect();
    let head: Vec<String> = vars
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != pos)
        .map(|(_, v)| v.clone())
        .collect();
    Some(format!(
        "Q({}) :- {rel}({})",
        head.join(", "),
        body.join(", ")
    ))
}

fn gen_op(shape: &Shape, rng: &mut SplitMix64) -> Option<Op> {
    match rng.next_below(10) {
        0..=2 => {
            let (rel, attrs) =
                &shape.relations[rng.next_below(shape.relations.len() as u64) as usize];
            let mut values = Vec::with_capacity(attrs.len());
            for attr in attrs {
                let pool = shape.column_values(&format!("{rel}.{attr}"));
                if pool.is_empty() {
                    return None;
                }
                values.push(Value::parse_literal(
                    &pool[rng.next_below(pool.len() as u64) as usize],
                )?);
            }
            Some(Op::Insert {
                relation: rel.clone(),
                values,
            })
        }
        3..=4 => {
            if shape.views.is_empty() {
                return None;
            }
            let view = shape.views[rng.next_below(shape.views.len() as u64) as usize].clone();
            Some(Op::SetPrice {
                view,
                cents: 50 + rng.next_below(500),
            })
        }
        5..=6 => Some(Op::Purchase {
            query: gen_query(shape, rng)?,
        }),
        _ => Some(Op::Quote {
            query: gen_query(shape, rng)?,
        }),
    }
}

/// The state fingerprint the invariants compare: data + prices (the
/// canonical `.qdp` text), the revenue, and the full transaction
/// ledger. Public because recovery-equivalence checks outside the chaos
/// harness (the serving layer's SIGTERM drill in E19) compare the same
/// three components.
pub type Fingerprint = (String, u64, String);

/// Name the first component (and line) where two fingerprints diverge,
/// so a chaos violation is triageable from the message alone.
fn fingerprint_diff(got: &Fingerprint, want: &Fingerprint) -> String {
    if got.1 != want.1 {
        return format!("revenue {} vs acked {}", got.1, want.1);
    }
    for (label, g, w) in [("qdp", &got.0, &want.0), ("ledger", &got.2, &want.2)] {
        if g != w {
            let mismatch = g
                .lines()
                .zip(w.lines())
                .find(|(a, b)| a != b)
                .map(|(a, b)| format!("`{a}` vs acked `{b}`"))
                .unwrap_or_else(|| {
                    format!("{} vs acked {} lines", g.lines().count(), w.lines().count())
                });
            return format!("{label} diverges: {mismatch}");
        }
    }
    "identical components (unexpected)".to_string()
}

/// Canonical state fingerprint of a market: sorted `.qdp` lines,
/// revenue cents, and the ledger snapshot text. Two markets with equal
/// fingerprints hold identical data, prices, books, and history.
pub fn fingerprint(m: &Market) -> Fingerprint {
    // Every `.qdp` line is an independent directive, but `to_qdp`'s line
    // order tracks map insertion history, which differs between a market
    // parsed from the scenario text and one re-parsed from a snapshot's
    // canonical text. Sort so the fingerprint compares state, not order.
    let qdp = m.to_qdp();
    let mut lines: Vec<&str> = qdp.lines().collect();
    lines.sort_unstable();
    (
        lines.join("\n"),
        m.revenue().as_cents(),
        m.with_ledger(Ledger::to_snapshot_text),
    )
}

/// Clone a market's full state (data, prices, ledger, policy) into a
/// fresh in-memory market, for computing what the state *would* be if a
/// maybe-durable event turned out to have reached the platter.
fn clone_state(m: &Market) -> Result<Market, MarketError> {
    let clone = Market::open_qdp(&m.to_qdp())?;
    let ledger = Ledger::from_snapshot_text(&m.with_ledger(Ledger::to_snapshot_text))
        .map_err(|e| MarketError::Internal(format!("ledger clone: {e}")))?;
    clone.restore_ledger(ledger);
    clone.set_policy(m.policy());
    Ok(clone)
}

/// Apply a mutation op to an in-memory clone, ignoring its verdict (a
/// validation refusal mutates nothing, same as replay would).
fn apply_to_clone(clone: &Market, op: &Op) {
    match op {
        Op::Insert { relation, values } => {
            let _ = clone.insert(relation, [Tuple::new(values.clone())]);
        }
        Op::SetPrice { view, cents } => {
            let _ = clone.set_price(view, Price::cents(*cents));
        }
        Op::Purchase { query } => {
            let _ = clone.purchase_str(query);
        }
        Op::Quote { .. } => {}
    }
}

/// Run one chaos schedule in `dir` (recreated from scratch) against the
/// market described by `qdp`. Returns the report; setup failures that
/// precede any fault injection (bad seed text, unwritable dir) surface
/// as errors instead.
pub fn run_schedule(qdp: &str, dir: &Path, cfg: &ChaosConfig) -> Result<ChaosReport, MarketError> {
    let mut report = ChaosReport::default();
    std::fs::remove_dir_all(dir).ok();

    // Genesis runs fault-free: the schedule targets the workload, not
    // the one-time directory setup.
    let fs = FaultFs::new(FaultPlan::none());
    let retry = RetryPolicy {
        attempts: 3,
        base_delay_micros: 1,
        max_delay_micros: 10,
        jitter_seed: cfg.seed,
    };
    let dm = DurableMarket::create_with(Arc::new(fs.clone()), dir, qdp, cfg.fsync, retry)?;
    let shape = Shape::parse(&dm.market().to_qdp())?;
    let mut rng = SplitMix64::new(cfg.seed);
    fs.set_plan(FaultPlan {
        script: Vec::new(),
        seeded: cfg.fault.seeded(rng.next_u64()),
    });

    let mut acked_fp = fingerprint(dm.market());
    // The at-most-one event whose durability a poisoning fsync left
    // uncertain: the state the market would hold had it survived.
    let mut pending_fp: Option<Fingerprint> = None;
    // The state the market froze at when it degraded, for checking
    // quotes keep serving it verbatim.
    let mut frozen: Option<Market> = None;

    // audit: bounded(fixed op budget from the schedule config)
    for _ in 0..cfg.ops {
        report.ops_attempted += 1;
        let Some(op) = gen_op(&shape, &mut rng) else {
            continue;
        };
        if let Op::Quote { query } = &op {
            let degraded = matches!(dm.health(), MarketHealth::ReadOnly { .. });
            match dm.quote_str(query) {
                Ok(quote) => {
                    if quote.lower_bound > quote.price {
                        report.violations.push(format!(
                            "unsound quote interval [{:?}, {:?}] for {query}",
                            quote.lower_bound, quote.price
                        ));
                    }
                    if degraded {
                        report.degraded_quotes += 1;
                        if let Some(frozen) = &frozen {
                            match frozen.quote_str(query) {
                                Ok(expected) if expected.price == quote.price => {}
                                Ok(expected) => report.violations.push(format!(
                                    "degraded quote drifted from frozen state: \
                                     {:?} vs {:?} for {query}",
                                    quote.price, expected.price
                                )),
                                Err(e) => report.violations.push(format!(
                                    "frozen state refuses {query} the degraded \
                                     market served: {e}"
                                )),
                            }
                        }
                    }
                }
                Err(MarketError::Store(e)) => report
                    .violations
                    .push(format!("quote touched the store: {e}")),
                Err(MarketError::Degraded(e)) => report.violations.push(format!(
                    "quote refused under degradation (quotes must keep serving): {e}"
                )),
                Err(_) => {} // NotForSale etc.: a valid refusal
            }
            continue;
        }
        let result: Result<(), MarketError> = match &op {
            Op::Insert { relation, values } => dm
                .insert(relation, [Tuple::new(values.clone())])
                .map(|_| ()),
            Op::SetPrice { view, cents } => dm.set_price(view, Price::cents(*cents)),
            Op::Purchase { query } => dm.purchase_str(query).map(|_| ()),
            Op::Quote { .. } => Ok(()),
        };
        match result {
            Ok(()) => {
                report.acked += 1;
                acked_fp = fingerprint(dm.market());
                pending_fp = None;
            }
            Err(MarketError::Store(e)) => {
                report.store_errors += 1;
                if matches!(e, StoreError::Poisoned { .. }) {
                    // The append may or may not have reached the
                    // platter; compute the state it would produce.
                    let clone = clone_state(dm.market())?;
                    apply_to_clone(&clone, &op);
                    pending_fp = Some(fingerprint(&clone));
                }
                if matches!(dm.health(), MarketHealth::ReadOnly { .. }) && frozen.is_none() {
                    frozen = Some(clone_state(dm.market())?);
                }
            }
            Err(MarketError::Degraded(_)) => {
                report.degraded_ops += 1;
                if !matches!(dm.health(), MarketHealth::ReadOnly { .. }) {
                    report
                        .violations
                        .push("Degraded error from a healthy market".to_string());
                }
            }
            Err(_) => {} // validation refusal: no state change, no ack
        }
    }

    report.faults_injected = fs.injected_count() as u64;

    // Power-cycle: stop injecting, crash, recover clean.
    drop(dm);
    fs.clear_plan();
    let crash_seed = rng.next_u64();
    if let Err(e) = fs.simulate_crash(crash_seed) {
        report
            .violations
            .push(format!("crash simulation failed: {e}"));
        return Ok(report);
    }
    let recovered = match DurableMarket::open_on(
        Arc::new(fs.clone()),
        dir,
        FsyncPolicy::Never,
        RetryPolicy::none(),
    ) {
        Ok(m) => m,
        Err(e) => {
            report
                .violations
                .push(format!("recovery failed after crash: {e}"));
            return Ok(report);
        }
    };

    // Invariant 1: prefix consistency / no lost ack (fsync=Always).
    if cfg.fsync == FsyncPolicy::Always {
        let fp = fingerprint(recovered.market());
        if fp == acked_fp {
            // exact acknowledged history
        } else if pending_fp.as_ref() == Some(&fp) {
            report.recovered_pending_tail = true;
        } else {
            report.violations.push(format!(
                "recovered state is neither the acked history nor \
                 acked+pending-tail: {}",
                fingerprint_diff(&fp, &acked_fp)
            ));
        }
    }

    // Invariant 3: clean recovery — healthy, serving, and writable.
    if recovered.health() != MarketHealth::Healthy {
        report
            .violations
            .push(format!("recovered unhealthy: {:?}", recovered.health()));
    }
    if let Some((rel, attrs)) = shape.relations.first() {
        let values: Option<Vec<Value>> = attrs
            .iter()
            .map(|a| {
                shape
                    .column_values(&format!("{rel}.{a}"))
                    .first()
                    .and_then(|v| Value::parse_literal(v))
            })
            .collect();
        if let Some(values) = values {
            if let Err(e) = recovered.insert(rel, [Tuple::new(values)]) {
                report
                    .violations
                    .push(format!("recovered market refuses mutations: {e}"));
            }
        }
    }
    if let Some(query) = gen_query(&shape, &mut rng) {
        match recovered.quote_str(&query) {
            Ok(quote) => {
                if quote.lower_bound > quote.price {
                    report
                        .violations
                        .push(format!("unsound post-recovery quote for {query}"));
                }
            }
            Err(e @ (MarketError::Store(_) | MarketError::Degraded(_))) => report
                .violations
                .push(format!("post-recovery quote failed on the store: {e}")),
            Err(_) => {}
        }
    }

    drop(recovered);
    std::fs::remove_dir_all(dir).ok();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const QDP: &str = "\
schema R(X)
schema S(X, Y)
column R.X = {a1, a2, a3}
column S.X = {a1, a2, a3}
column S.Y = {b1, b2}
tuple R(a1)
tuple S(a1, b1)
price R.X=a1 100
price R.X=a2 100
price R.X=a3 100
price S.X=a1 100
price S.X=a2 100
price S.X=a3 100
price S.Y=b1 100
price S.Y=b2 100
";

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "qbdp_chaos_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn shape_parses_the_canonical_text() {
        let m = Market::open_qdp(QDP).unwrap();
        let shape = Shape::parse(&m.to_qdp()).unwrap();
        assert_eq!(shape.relations.len(), 2);
        assert_eq!(shape.column_values("S.Y"), ["b1", "b2"]);
        assert_eq!(shape.views.len(), 8);
    }

    #[test]
    fn query_generation_is_deterministic_and_parseable() {
        let m = Market::open_qdp(QDP).unwrap();
        let shape = Shape::parse(&m.to_qdp()).unwrap();
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..50 {
            let qa = gen_query(&shape, &mut a);
            assert_eq!(qa, gen_query(&shape, &mut b));
            if let Some(q) = qa {
                // Every generated query must at least parse (quoting is
                // accepted); NotForSale is fine, Query errors are not.
                match m.quote_str(&q) {
                    Ok(_) | Err(MarketError::NotForSale) => {}
                    Err(e) => panic!("generated query `{q}` invalid: {e}"),
                }
            }
        }
    }

    #[test]
    fn clean_schedule_acks_everything() {
        let dir = temp_dir("clean");
        let cfg = ChaosConfig {
            seed: 11,
            ops: 30,
            fault: FaultMix::none(),
            fsync: FsyncPolicy::Always,
        };
        let report = run_schedule(QDP, &dir, &cfg).unwrap();
        assert!(report.is_sound(), "{report}");
        assert_eq!(report.store_errors, 0);
        assert_eq!(report.degraded_ops, 0);
        assert_eq!(report.faults_injected, 0);
        assert!(report.acked > 0);
    }

    #[test]
    fn faulty_schedules_hold_the_invariants() {
        let mut injected = 0;
        let mut refused = 0;
        for seed in 0..8 {
            let dir = temp_dir("faulty");
            let report = run_schedule(QDP, &dir, &ChaosConfig::new(seed)).unwrap();
            assert!(report.is_sound(), "seed {seed}: {report}");
            injected += report.faults_injected;
            refused += report.store_errors + report.degraded_ops;
        }
        // The pass must not be vacuous: across the seeds, faults fired
        // and the market actually refused work because of them.
        assert!(injected > 0, "no faults injected across any seed");
        assert!(refused > 0, "no operation ever hit a fault");
    }
}
