//! [`DurableMarket`]: a [`Market`] whose every mutation is written to a
//! `qbdp-store` write-ahead log before it is applied, so the market can
//! be reopened — or recovered after a crash — byte-exactly from a
//! directory.
//!
//! # Layout
//!
//! ```text
//! <dir>/snapshot.qdps   atomic checksummed snapshot (state @ wal_pos)
//! <dir>/market.wal      CRC-framed event log (suffix since snapshot)
//! ```
//!
//! The snapshot's `market` section is the existing [`Market::to_qdp`]
//! text; `ledger` and `policy` sections carry what `.qdp` does not.
//! Recovery is snapshot-load + suffix-replay.
//!
//! # Write protocol
//!
//! Every mutating call takes the WAL mutex, appends the event, and only
//! then applies it to the in-memory market (which takes the state write
//! lock internally, preserving the epoch/cache invalidation protocol —
//! the cache epoch is still bumped under the state write lock by the
//! apply itself). Holding the WAL mutex across append + apply makes log
//! order equal apply order, so replay reproduces the live sequence.
//!
//! A mutation that fails *validation* during apply (unknown relation,
//! value outside its column, an arbitrage-inducing price revision) has
//! already been logged; that is harmless, because validation is a pure
//! function of market state and replay — seeing the identical state —
//! skips it with the identical verdict. What can never happen is the
//! converse: an applied-but-unlogged mutation, the one that would make
//! recovery forget acknowledged state.
//!
//! # Recovery invariants
//!
//! * **Prefix consistency**: for any byte the log was cut at, recovery
//!   produces the state of a market that applied exactly the durable
//!   prefix (the torn tail is truncated by [`Wal::open`]).
//! * **Checked books**: ledger replay uses checked revenue arithmetic;
//!   an overflowing history surfaces [`MarketError::RevenueOverflow`]
//!   instead of wrapping.
//! * **Cold cache at epoch 0**: replay bumps the quote-cache epoch once
//!   per mutation like live traffic would, and the epilogue resets the
//!   (empty) cache to epoch 0 — a recovered market is indistinguishable
//!   from a freshly opened one and cannot serve pre-crash entries.

use crate::error::MarketError;
use crate::ledger::Ledger;
use crate::market::{Market, MarketPolicy, MarketQuote, Purchase};
use parking_lot::{Mutex, RwLock};
use qbdp_catalog::{Tuple, Value};
use qbdp_core::Price;
use qbdp_store::scrub::ScrubReport;
use qbdp_store::{FsyncPolicy, MarketEvent, RealFs, RetryPolicy, Snapshot, StoreError, Vfs, Wal};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Snapshot filename inside a durable market directory.
pub const SNAPSHOT_FILE: &str = "snapshot.qdps";
/// WAL filename inside a durable market directory.
pub const WAL_FILE: &str = "market.wal";

/// One step of a recovery replay, as seen by an observer callback.
#[derive(Debug)]
pub enum ReplayStep<'a> {
    /// The snapshot has been loaded; no log events applied yet.
    SnapshotLoaded,
    /// One log event has just been applied.
    Applied(&'a MarketEvent),
}

/// Whether the durable market is accepting mutations. See
/// [`DurableMarket::health`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MarketHealth {
    /// Mutations and reads both served.
    Healthy,
    /// The durability layer can no longer acknowledge writes (disk
    /// full, or an fsync failure poisoned the log). Quotes keep serving
    /// from the last consistent state; mutations return
    /// [`MarketError::Degraded`]. Reopening the market after the fault
    /// clears recovers cleanly.
    ReadOnly {
        /// The store-layer diagnosis that triggered the degradation.
        reason: String,
    },
}

/// A market with a write-ahead log and snapshots under a directory.
pub struct DurableMarket {
    market: Market,
    wal: Mutex<Wal>,
    vfs: Arc<dyn Vfs>,
    retry: RetryPolicy,
    health: RwLock<MarketHealth>,
    dir: PathBuf,
}

impl std::fmt::Debug for DurableMarket {
    // audit: holds-lock(wal)
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableMarket")
            .field("dir", &self.dir)
            .field("wal_position", &self.wal.lock().position())
            .finish_non_exhaustive()
    }
}

fn corrupt(offset: u64, reason: impl Into<String>) -> MarketError {
    MarketError::Store(StoreError::CorruptRecord {
        offset,
        reason: reason.into(),
    })
}

fn policy_text(p: &MarketPolicy) -> String {
    let opt = |v: Option<u64>| v.map_or("-".to_string(), |v| v.to_string());
    format!(
        "deadline_ms {}\nfuel {}\nsell_degraded {}\nmax_in_flight {}\nbatch_workers {}\n",
        opt(p.deadline.map(|d| d.as_millis() as u64)),
        opt(p.fuel),
        u8::from(p.sell_degraded),
        p.max_in_flight,
        p.batch_workers,
    )
}

fn parse_policy(text: &str) -> Result<MarketPolicy, StoreError> {
    let bad = |m: &str| StoreError::CorruptSnapshot(format!("policy section: {m}"));
    let mut lines = text.lines();
    let mut field = |key: &str| -> Result<String, StoreError> {
        lines
            .next()
            .and_then(|l| l.strip_prefix(key))
            .map(|v| v.trim().to_string())
            .ok_or_else(|| bad(&format!("missing `{key}`")))
    };
    let opt = |v: &str| -> Result<Option<u64>, StoreError> {
        if v == "-" {
            Ok(None)
        } else {
            v.parse().map(Some).map_err(|_| bad("bad number"))
        }
    };
    let deadline = opt(&field("deadline_ms ")?)?.map(Duration::from_millis);
    let fuel = opt(&field("fuel ")?)?;
    let sell_degraded = field("sell_degraded ")? == "1";
    let max_in_flight = field("max_in_flight ")?
        .parse::<u64>()
        .map_err(|_| bad("bad max_in_flight"))? as usize;
    let batch_workers = field("batch_workers ")?
        .parse::<u64>()
        .map_err(|_| bad("bad batch_workers"))? as usize;
    Ok(MarketPolicy {
        deadline,
        fuel,
        sell_degraded,
        max_in_flight,
        batch_workers,
        // In-process serving knobs, deliberately not persisted: a
        // recovered market prices cold until the operator re-enables
        // the incremental engine (its plan cache died with the process
        // anyway, so there is nothing warm to preserve), and telemetry
        // is an operator decision about *this* process, not market
        // state.
        incremental: false,
        telemetry: false,
    })
}

fn policy_event(p: &MarketPolicy) -> MarketEvent {
    MarketEvent::PolicyChange {
        deadline_ms: p.deadline.map(|d| d.as_millis() as u64),
        fuel: p.fuel,
        sell_degraded: p.sell_degraded,
        max_in_flight: p.max_in_flight as u64,
        batch_workers: p.batch_workers as u64,
    }
}

impl DurableMarket {
    /// Initialize `dir` as a durable market seeded from `.qdp` text:
    /// write the genesis snapshot (covering log position 0) and an empty
    /// log. Fails with [`StoreError::AlreadyInitialized`] if a snapshot
    /// already exists.
    pub fn create(
        dir: impl AsRef<Path>,
        qdp: &str,
        fsync: FsyncPolicy,
    ) -> Result<DurableMarket, MarketError> {
        Self::create_with(Arc::new(RealFs), dir, qdp, fsync, RetryPolicy::default())
    }

    /// [`DurableMarket::create`] on an explicit [`Vfs`] with an explicit
    /// transient-fault [`RetryPolicy`] — the chaos harness's entry
    /// point, and the seam a future replicated store plugs into.
    pub fn create_with(
        vfs: Arc<dyn Vfs>,
        dir: impl AsRef<Path>,
        qdp: &str,
        fsync: FsyncPolicy,
        retry: RetryPolicy,
    ) -> Result<DurableMarket, MarketError> {
        let dir = dir.as_ref().to_path_buf();
        vfs.create_dir_all(&dir).map_err(StoreError::from)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        if vfs.exists(&snapshot_path) {
            return Err(MarketError::Store(StoreError::AlreadyInitialized));
        }
        // Validate the seed (consistency check included) before touching
        // disk, and serialize the *parsed* form so the snapshot is
        // canonical from day one.
        let market = Market::open_qdp(qdp)?;
        // A stale log without a snapshot is not a market; drop it
        // *before* the genesis snapshot exists, so a crash anywhere in
        // create() leaves an uninitialized directory (no snapshot)
        // rather than a genesis snapshot beside an orphaned old log
        // whose events the next open() would replay into the freshly
        // seeded market. Deleting (rather than truncating) also lets
        // create() succeed over a corrupt leftover log.
        let wal_path = dir.join(WAL_FILE);
        match vfs.remove_file(&wal_path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(MarketError::Store(e.into())),
        }
        let wal = Wal::open_with(Arc::clone(&vfs), &wal_path, fsync, retry)?;
        let mut snapshot = Snapshot::new(0);
        snapshot.push_section("market", market.to_qdp());
        snapshot.push_section("ledger", Ledger::new().to_snapshot_text());
        snapshot.push_section("policy", policy_text(&market.policy()));
        snapshot.write_with(vfs.as_ref(), &snapshot_path, &retry)?;
        Ok(DurableMarket {
            market,
            wal: Mutex::new(wal),
            vfs,
            retry,
            health: RwLock::new(MarketHealth::Healthy),
            dir,
        })
    }

    /// Open an initialized durable market: load the snapshot, replay the
    /// log suffix it does not cover, reset the quote cache to epoch 0.
    pub fn open(dir: impl AsRef<Path>, fsync: FsyncPolicy) -> Result<DurableMarket, MarketError> {
        Self::open_with_observer(dir, fsync, |_, _| {})
    }

    /// [`DurableMarket::open`] on an explicit [`Vfs`] with an explicit
    /// retry policy. Recovery always reopens Healthy: whatever poisoned
    /// the previous handle, the reopened log starts from a repaired,
    /// verified prefix.
    pub fn open_on(
        vfs: Arc<dyn Vfs>,
        dir: impl AsRef<Path>,
        fsync: FsyncPolicy,
        retry: RetryPolicy,
    ) -> Result<DurableMarket, MarketError> {
        Self::open_with_observer_on(vfs, dir, fsync, retry, |_, _| {})
    }

    /// [`DurableMarket::open`] with a callback invoked once after the
    /// snapshot loads and once after each replayed event — the hook the
    /// CLI `replay` verb uses to record §2.7 price trajectories without
    /// duplicating recovery logic.
    pub fn open_with_observer(
        dir: impl AsRef<Path>,
        fsync: FsyncPolicy,
        observer: impl FnMut(ReplayStep<'_>, &Market),
    ) -> Result<DurableMarket, MarketError> {
        Self::open_with_observer_on(
            Arc::new(RealFs),
            dir,
            fsync,
            RetryPolicy::default(),
            observer,
        )
    }

    /// [`DurableMarket::open_with_observer`] on an explicit [`Vfs`].
    pub fn open_with_observer_on(
        vfs: Arc<dyn Vfs>,
        dir: impl AsRef<Path>,
        fsync: FsyncPolicy,
        retry: RetryPolicy,
        mut observer: impl FnMut(ReplayStep<'_>, &Market),
    ) -> Result<DurableMarket, MarketError> {
        let dir = dir.as_ref().to_path_buf();
        let mut snapshot = Snapshot::load_with(vfs.as_ref(), dir.join(SNAPSHOT_FILE))?;
        let qdp = snapshot
            .section("market")
            .ok_or_else(|| StoreError::CorruptSnapshot("missing `market` section".into()))?;
        let market = Market::open_qdp(qdp)?;
        let ledger_text = snapshot
            .section("ledger")
            .ok_or_else(|| StoreError::CorruptSnapshot("missing `ledger` section".into()))?;
        let ledger = Ledger::from_snapshot_text(ledger_text)
            .map_err(|m| StoreError::CorruptSnapshot(format!("ledger section: {m}")))?;
        market.restore_ledger(ledger);
        if let Some(text) = snapshot.section("policy") {
            market.set_policy(parse_policy(text)?);
        }
        let wal = Wal::open_with(Arc::clone(&vfs), dir.join(WAL_FILE), fsync, retry)?;
        // Compaction crash window: a crash between `wal.reset()` and the
        // final snapshot rewrite in `compact()` leaves the snapshot
        // claiming a position past the now-empty log. The *state* is
        // correct (the snapshot covers every truncated event), but the
        // stale position must be rebased on disk before any new append
        // lands at a smaller offset — otherwise the next open's
        // `replay_from(wal_pos)` would silently drop those appends (log
        // still shorter than `wal_pos`) or refuse them as corrupt (scan
        // starting mid-record once the log outgrows `wal_pos`). An
        // ordinary crash can never produce `wal_pos > position`: the
        // torn-tail truncation in `Wal::open` only cuts *incomplete*
        // frames appended after the snapshot's record boundary.
        if snapshot.wal_pos > wal.position() {
            snapshot.wal_pos = wal.position();
            snapshot.write_with(vfs.as_ref(), dir.join(SNAPSHOT_FILE), &retry)?;
        }
        observer(ReplayStep::SnapshotLoaded, &market);
        for record in wal.replay_from(snapshot.wal_pos)? {
            apply_event(&market, &record.event, record.start)?;
            observer(ReplayStep::Applied(&record.event), &market);
        }
        market.reset_cache();
        Ok(DurableMarket {
            market,
            wal: Mutex::new(wal),
            vfs,
            retry,
            health: RwLock::new(MarketHealth::Healthy),
            dir,
        })
    }

    /// Open `dir` if initialized; otherwise, when seed `.qdp` text is
    /// provided, initialize it. The CLI `serve-dir` verb's semantics.
    pub fn open_or_create(
        dir: impl AsRef<Path>,
        seed_qdp: Option<&str>,
        fsync: FsyncPolicy,
    ) -> Result<DurableMarket, MarketError> {
        Self::open_or_create_with(
            Arc::new(RealFs),
            dir,
            seed_qdp,
            fsync,
            RetryPolicy::default(),
        )
    }

    /// [`DurableMarket::open_or_create`] on an explicit [`Vfs`].
    pub fn open_or_create_with(
        vfs: Arc<dyn Vfs>,
        dir: impl AsRef<Path>,
        seed_qdp: Option<&str>,
        fsync: FsyncPolicy,
        retry: RetryPolicy,
    ) -> Result<DurableMarket, MarketError> {
        let dir = dir.as_ref();
        if vfs.exists(&dir.join(SNAPSHOT_FILE)) {
            Self::open_on(vfs, dir, fsync, retry)
        } else if let Some(qdp) = seed_qdp {
            Self::create_with(vfs, dir, qdp, fsync, retry)
        } else {
            Err(MarketError::Store(StoreError::SnapshotMissing))
        }
    }

    /// Whether the market is accepting mutations or has degraded to
    /// read-only serving. Degradation is one-way for a given handle —
    /// recovery (reopening the directory) is the repair path.
    // audit: holds-lock(health)
    pub fn health(&self) -> MarketHealth {
        self.health.read().clone()
    }

    /// Refuse mutations once degraded. Checked *before* the WAL mutex
    /// is taken so a degraded market never queues writers behind it.
    // audit: holds-lock(health)
    fn ensure_writable(&self) -> Result<(), MarketError> {
        match &*self.health.read() {
            MarketHealth::Healthy => Ok(()),
            MarketHealth::ReadOnly { reason } => Err(MarketError::Degraded(reason.clone())),
        }
    }

    /// Classify a store failure: faults that void the durability
    /// contract ([`StoreError::degrades_to_read_only`]) flip the market
    /// to read-only serving; everything else (transient exhaustion,
    /// validation-adjacent corruption) passes through typed, leaving
    /// the market healthy.
    // audit: holds-lock(health)
    fn degrade_on(&self, e: StoreError) -> MarketError {
        if e.degrades_to_read_only() {
            let mut health = self.health.write();
            if *health == MarketHealth::Healthy {
                *health = MarketHealth::ReadOnly {
                    reason: e.to_string(),
                };
                qbdp_obs::record(qbdp_obs::Ctr::MarketHealthFlips, 1);
                qbdp_obs::record_gauge(qbdp_obs::Gauge::HealthReadOnly, 1);
            }
        }
        MarketError::Store(e)
    }

    /// Walk the snapshot and WAL verifying every checksum, reporting
    /// damage before it is load-bearing. Read-only and background-free:
    /// safe against a live market between syncs.
    pub fn scrub(&self) -> ScrubReport {
        qbdp_store::scrub(
            self.vfs.as_ref(),
            &self.dir.join(SNAPSHOT_FILE),
            &self.dir.join(WAL_FILE),
        )
    }

    /// The wrapped in-memory market, for read-side access (quotes,
    /// explains, introspection). Mutations **must** go through the
    /// durable methods or they will not survive a restart.
    pub fn market(&self) -> &Market {
        &self.market
    }

    /// The directory this market persists under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current end-of-log position (bytes).
    // audit: holds-lock(wal)
    pub fn wal_position(&self) -> u64 {
        self.wal.lock().position()
    }

    /// Durable seller-side tuple insertion (§2.7). Logged and applied
    /// one tuple at a time so replay reproduces the exact ledger
    /// sequence; returns the number of tuples actually added (duplicates
    /// are logged but add 0, same as the in-memory market).
    // audit: holds-lock(wal)
    pub fn insert(
        &self,
        relation: &str,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<usize, MarketError> {
        self.ensure_writable()?;
        let mut wal = self.wal.lock();
        let mut added = 0usize;
        for tuple in tuples {
            let event = MarketEvent::InsertTuple {
                relation: relation.to_string(),
                values: tuple.iter().map(Value::render_literal).collect(),
            };
            wal.append(&event).map_err(|e| self.degrade_on(e))?;
            added += self.market.insert(relation, [tuple])?;
        }
        Ok(added)
    }

    /// Durable seller-side price revision (`R.X=a` selector syntax).
    // audit: holds-lock(wal)
    pub fn set_price(&self, view: &str, price: Price) -> Result<(), MarketError> {
        self.ensure_writable()?;
        let mut wal = self.wal.lock();
        wal.append(&MarketEvent::SetPrice {
            view: view.to_string(),
            cents: price.as_cents(),
        })
        .map_err(|e| self.degrade_on(e))?;
        self.market.set_price(view, price)
    }

    /// Durable purchase: price and evaluate *outside* the WAL mutex (the
    /// pricing engine must never run under it — qbdp-audit rule R3),
    /// then take the lock and revalidate before logging. The cache epoch
    /// names the data/price snapshot the quote was derived from: every
    /// mutation bumps it, and durable mutations serialize on the WAL
    /// mutex, so an unchanged epoch observed *under* the lock proves the
    /// quoted terms still hold when the event is appended. An epoch that
    /// moved means an update landed mid-purchase; the stale quote is
    /// discarded and the purchase re-priced (bounded retries, then
    /// [`MarketError::Contended`]). Overflowing revenue is refused
    /// *before* the event is logged, so the log never contains an
    /// unreplayable purchase.
    // audit: holds-lock(wal)
    pub fn purchase_str(&self, query: &str) -> Result<Purchase, MarketError> {
        const RETRIES: usize = 8;
        let sw = qbdp_obs::Stopwatch::start();
        self.ensure_writable()?;
        // audit: bounded(fixed retry cap; each round does one pricing call)
        for _ in 0..RETRIES {
            let epoch = self.market.cache_epoch();
            let (quote, answer) = self.market.evaluate_purchase(query)?;
            self.ensure_writable()?;
            let mut wal = self.wal.lock();
            if self.market.cache_epoch() != epoch {
                // A mutation slipped in between pricing and the append;
                // the quote may no longer match the market. Drop the
                // lock and re-price against the new state.
                drop(wal);
                qbdp_obs::record(qbdp_obs::Ctr::MarketPurchaseRetries, 1);
                continue;
            }
            if self.market.revenue().checked_add(quote.price).is_none() {
                return Err(MarketError::RevenueOverflow);
            }
            wal.append(&MarketEvent::Purchase {
                query: quote.query.clone(),
                price_cents: quote.price.as_cents(),
                answer_tuples: answer.len() as u64,
                views: quote.views.len() as u64,
            })
            .map_err(|e| self.degrade_on(e))?;
            let transaction_id = self.market.apply_recorded_sale(
                quote.query.clone(),
                quote.price,
                answer.len(),
                quote.views.len(),
            )?;
            qbdp_obs::record(qbdp_obs::Ctr::MarketPurchases, 1);
            sw.stop(qbdp_obs::Hst::PurchaseLatencyUs);
            return Ok(Purchase {
                transaction_id,
                quote,
                answer,
            });
        }
        qbdp_obs::record(qbdp_obs::Ctr::MarketPurchaseContended, 1);
        qbdp_obs::flight::capture(
            qbdp_obs::flight::Why::Contended,
            query,
            sw.elapsed_us().unwrap_or(0),
            format!("{RETRIES} revalidation retries exhausted"),
            Vec::new(),
        );
        Err(MarketError::Contended)
    }

    /// Durable policy change.
    // audit: holds-lock(wal)
    pub fn set_policy(&self, policy: MarketPolicy) -> Result<(), MarketError> {
        self.ensure_writable()?;
        let mut wal = self.wal.lock();
        wal.append(&policy_event(&policy))
            .map_err(|e| self.degrade_on(e))?;
        self.market.set_policy(policy);
        Ok(())
    }

    /// Quote (read-only; served from the in-memory market and its cache).
    pub fn quote_str(&self, query: &str) -> Result<MarketQuote, MarketError> {
        self.market.quote_str(query)
    }

    /// Batch quote (read-only).
    pub fn quote_batch(&self, queries: &[&str]) -> Vec<Result<MarketQuote, MarketError>> {
        self.market.quote_batch(queries)
    }

    /// Force the log to stable storage regardless of the fsync policy.
    // audit: holds-lock(wal)
    pub fn sync(&self) -> Result<(), MarketError> {
        self.wal.lock().sync().map_err(|e| self.degrade_on(e))
    }

    /// Write a fresh snapshot covering the whole log, then truncate the
    /// log. Two-phase so a crash at any point recovers correctly: the
    /// snapshot covering position `P` lands atomically *before* the log
    /// is truncated (crash between the two → replay-from-`P` of a
    /// shorter log is empty), and the final snapshot rewrite just
    /// rebases the recorded position to the now-empty log. A crash
    /// between the truncation and that rebasing rewrite leaves
    /// `wal_pos = P` over an empty log; [`DurableMarket::open`] detects
    /// `wal_pos` past the log end and rewrites the snapshot before
    /// accepting new appends, so no post-recovery mutation can land at
    /// an offset the recorded position would skip.
    ///
    /// Returns the log position the snapshot covers (bytes compacted).
    ///
    /// Failure typing: a transient fault that outlives its retries while
    /// building the temp snapshot (create/write/fsync of `.tmp`)
    /// surfaces as the typed [`StoreError::Transient`] and leaves the
    /// market **healthy** — nothing past the temp file was touched, the
    /// previous snapshot still covers the full log, and the caller may
    /// simply compact again later. Only contract-voiding faults
    /// (`ENOSPC`, fsync-poison) degrade the market to read-only.
    // audit: holds-lock(wal)
    pub fn compact(&self) -> Result<u64, MarketError> {
        let sw = qbdp_obs::Stopwatch::start();
        self.ensure_writable()?;
        let mut wal = self.wal.lock();
        let covered = wal.position();
        wal.append(&MarketEvent::SnapshotMark { wal_pos: covered })
            .map_err(|e| self.degrade_on(e))?;
        wal.sync().map_err(|e| self.degrade_on(e))?;
        let mut snapshot = Snapshot::new(wal.position());
        snapshot.push_section("market", self.market.to_qdp());
        snapshot.push_section("ledger", self.market.with_ledger(Ledger::to_snapshot_text));
        snapshot.push_section("policy", policy_text(&self.market.policy()));
        let path = self.dir.join(SNAPSHOT_FILE);
        snapshot
            .write_with(self.vfs.as_ref(), &path, &self.retry)
            .map_err(|e| self.degrade_on(e))?;
        wal.reset().map_err(|e| self.degrade_on(e))?;
        snapshot.wal_pos = 0;
        snapshot
            .write_with(self.vfs.as_ref(), &path, &self.retry)
            .map_err(|e| self.degrade_on(e))?;
        qbdp_obs::record(qbdp_obs::Ctr::StoreCompactions, 1);
        sw.stop(qbdp_obs::Hst::CompactionUs);
        Ok(covered)
    }
}

/// Apply one logged event to a recovering market. Validation failures
/// are skipped (they were returned to the live caller as errors and
/// mutated nothing — see the module docs); undecodable literals and
/// overflowing books are hard errors.
fn apply_event(market: &Market, event: &MarketEvent, offset: u64) -> Result<(), MarketError> {
    match event {
        MarketEvent::SetPrice { view, cents } => {
            let _ = market.set_price(view, Price::cents(*cents));
        }
        MarketEvent::InsertTuple { relation, values } => {
            let parsed: Option<Vec<Value>> =
                values.iter().map(|v| Value::parse_literal(v)).collect();
            let Some(parsed) = parsed else {
                return Err(corrupt(offset, "unparseable tuple literal"));
            };
            let _ = market.insert(relation, [Tuple::new(parsed)]);
        }
        MarketEvent::Purchase {
            query,
            price_cents,
            answer_tuples,
            views,
        } => {
            market.apply_recorded_sale(
                query.clone(),
                Price::cents(*price_cents),
                *answer_tuples as usize,
                *views as usize,
            )?;
        }
        MarketEvent::PolicyChange {
            deadline_ms,
            fuel,
            sell_degraded,
            max_in_flight,
            batch_workers,
        } => {
            market.set_policy(MarketPolicy {
                deadline: deadline_ms.map(Duration::from_millis),
                fuel: *fuel,
                sell_degraded: *sell_degraded,
                max_in_flight: *max_in_flight as usize,
                batch_workers: *batch_workers as usize,
                // Not carried by the event; see `parse_policy`.
                incremental: false,
                telemetry: false,
            });
        }
        MarketEvent::SnapshotMark { .. } => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const QDP: &str = r#"
schema R(X)
schema S(X, Y)
schema T(Y)
column R.X = {a1, a2, a3, a4}
column S.X = {a1, a2, a3, a4}
column S.Y = {b1, b2, b3}
column T.Y = {b1, b2, b3}
tuple R(a1)
tuple R(a2)
tuple S(a1, b1)
tuple S(a1, b2)
tuple S(a2, b2)
tuple S(a4, b1)
tuple T(b1)
tuple T(b3)
price R.X=a1 100
price R.X=a2 100
price R.X=a3 100
price R.X=a4 100
price S.X=a1 100
price S.X=a2 100
price S.X=a3 100
price S.X=a4 100
price S.Y=b1 100
price S.Y=b2 100
price S.Y=b3 100
price T.Y=b1 100
price T.Y=b2 100
price T.Y=b3 100
"#;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "qbdp_durable_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn drive(dm: &DurableMarket) {
        dm.insert("R", [Tuple::new([Value::text("a3")])]).unwrap();
        dm.set_price("T.Y=b2", Price::cents(250)).unwrap();
        dm.purchase_str("Q(x) :- R(x)").unwrap();
        dm.purchase_str("Q(x, y) :- R(x), S(x, y), T(y)").unwrap();
        let mut policy = dm.market().policy();
        policy.fuel = Some(1_000_000);
        dm.set_policy(policy).unwrap();
    }

    fn assert_same(a: &Market, b: &Market) {
        assert_eq!(a.to_qdp(), b.to_qdp());
        assert_eq!(a.revenue(), b.revenue());
        assert_eq!(
            a.with_ledger(Ledger::to_snapshot_text),
            b.with_ledger(Ledger::to_snapshot_text)
        );
        assert_eq!(a.policy(), b.policy());
        let q = "Q(x, y) :- R(x), S(x, y)";
        let qa = a.quote_str(q).unwrap();
        let qb = b.quote_str(q).unwrap();
        assert_eq!(qa.price, qb.price);
        assert_eq!(qa.quality, qb.quality);
    }

    #[test]
    fn reopen_replays_to_identical_state() {
        let dir = temp_dir("reopen");
        let dm = DurableMarket::create(&dir, QDP, FsyncPolicy::Never).unwrap();
        drive(&dm);
        let live_qdp = dm.market().to_qdp();
        drop(dm);
        let back = DurableMarket::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(back.market().to_qdp(), live_qdp);
        assert_eq!(back.market().cache_epoch(), 0, "recovered cache is cold");
        let fresh = Market::open_qdp(&live_qdp).unwrap();
        assert_eq!(fresh.to_qdp(), back.market().to_qdp());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_then_reopen_matches_wal_reopen() {
        let dir_a = temp_dir("compact_a");
        let dir_b = temp_dir("compact_b");
        let a = DurableMarket::create(&dir_a, QDP, FsyncPolicy::Never).unwrap();
        let b = DurableMarket::create(&dir_b, QDP, FsyncPolicy::Never).unwrap();
        drive(&a);
        drive(&b);
        let compacted = a.compact().unwrap();
        assert!(compacted > 0);
        assert_eq!(a.wal_position(), 0, "compaction truncates the log");
        // Post-compaction mutations land in the fresh log.
        a.insert("T", [Tuple::new([Value::text("b2")])]).unwrap();
        b.insert("T", [Tuple::new([Value::text("b2")])]).unwrap();
        drop(a);
        drop(b);
        let a = DurableMarket::open(&dir_a, FsyncPolicy::Never).unwrap();
        let b = DurableMarket::open(&dir_b, FsyncPolicy::Never).unwrap();
        assert_same(a.market(), b.market());
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn compact_crash_window_rebases_stale_snapshot_position() {
        let dir = temp_dir("compact_crash");
        let dm = DurableMarket::create(&dir, QDP, FsyncPolicy::Never).unwrap();
        drive(&dm);
        let covered = dm.compact().unwrap();
        assert!(covered > 0);
        let live_qdp = dm.market().to_qdp();
        drop(dm);
        // Reproduce a crash between `wal.reset()` and the rebasing
        // snapshot rewrite inside compact(): the on-disk state is the
        // compacted snapshot, but its recorded position is still the
        // pre-truncation offset over a now-empty log.
        let path = dir.join(SNAPSHOT_FILE);
        let mut snap = Snapshot::load(&path).unwrap();
        snap.wal_pos = covered;
        snap.write(&path).unwrap();
        // Recovery must load the full state, repair the stale position…
        let dm = DurableMarket::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(dm.market().to_qdp(), live_qdp);
        assert_eq!(
            Snapshot::load(&path).unwrap().wal_pos,
            0,
            "open() rewrites the stale snapshot position before accepting appends"
        );
        // …so acknowledged post-recovery mutations land at offsets the
        // snapshot no longer skips, and the *next* open replays them.
        dm.insert("T", [Tuple::new([Value::text("b2")])]).unwrap();
        dm.purchase_str("Q(x) :- R(x)").unwrap();
        let qdp = dm.market().to_qdp();
        let revenue = dm.market().revenue();
        let ledger = dm.market().with_ledger(Ledger::to_snapshot_text);
        drop(dm);
        let back = DurableMarket::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(back.market().to_qdp(), qdp);
        assert_eq!(back.market().revenue(), revenue);
        assert_eq!(back.market().with_ledger(Ledger::to_snapshot_text), ledger);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_discards_stale_wal_before_writing_the_snapshot() {
        let dir = temp_dir("stale_wal");
        // Leave behind a log from a "previous market instance" — no
        // snapshot next to it, as after a crash mid-create.
        std::fs::create_dir_all(&dir).unwrap();
        {
            let mut wal = Wal::open(dir.join(WAL_FILE), FsyncPolicy::Never).unwrap();
            wal.append(&MarketEvent::SetPrice {
                view: "R.X=a1".into(),
                cents: 9999,
            })
            .unwrap();
        }
        let dm = DurableMarket::create(&dir, QDP, FsyncPolicy::Never).unwrap();
        assert_eq!(dm.wal_position(), 0, "stale log is gone before genesis");
        let seeded_qdp = dm.market().to_qdp();
        drop(dm);
        // Reopening replays nothing: the orphaned event never leaks into
        // the freshly seeded market.
        let back = DurableMarket::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(back.market().to_qdp(), seeded_qdp);
        assert_eq!(
            back.quote_str("Q(x) :- R(x)").unwrap().price,
            Market::open_qdp(QDP)
                .unwrap()
                .quote_str("Q(x) :- R(x)")
                .unwrap()
                .price
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_existing_directory() {
        let dir = temp_dir("exists");
        let dm = DurableMarket::create(&dir, QDP, FsyncPolicy::Never).unwrap();
        drop(dm);
        match DurableMarket::create(&dir, QDP, FsyncPolicy::Never) {
            Err(MarketError::Store(StoreError::AlreadyInitialized)) => {}
            other => panic!("expected AlreadyInitialized, got {other:?}"),
        }
        // open_or_create falls through to open.
        assert!(DurableMarket::open_or_create(&dir, None, FsyncPolicy::Never).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_uninitialized_is_snapshot_missing() {
        let dir = temp_dir("missing");
        match DurableMarket::open(&dir, FsyncPolicy::Never) {
            Err(MarketError::Store(StoreError::SnapshotMissing)) => {}
            other => panic!("expected SnapshotMissing, got {other:?}"),
        }
        match DurableMarket::open_or_create(&dir, None, FsyncPolicy::Never) {
            Err(MarketError::Store(StoreError::SnapshotMissing)) => {}
            other => panic!("expected SnapshotMissing, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejected_mutations_replay_as_no_ops() {
        let dir = temp_dir("rejected");
        let dm = DurableMarket::create(&dir, QDP, FsyncPolicy::Never).unwrap();
        dm.insert("R", [Tuple::new([Value::text("a3")])]).unwrap();
        // Outside the declared column: refused live, logged, and must be
        // skipped identically on replay.
        assert!(dm.insert("R", [Tuple::new([Value::text("zz")])]).is_err());
        assert!(dm.set_price("R.X=zz", Price::cents(5)).is_err());
        dm.purchase_str("Q(x) :- R(x)").unwrap();
        let live_qdp = dm.market().to_qdp();
        let live_revenue = dm.market().revenue();
        drop(dm);
        let back = DurableMarket::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(back.market().to_qdp(), live_qdp);
        assert_eq!(back.market().revenue(), live_revenue);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn fault_setup(
        tag: &str,
        script: Vec<qbdp_store::ScriptedFault>,
    ) -> (PathBuf, qbdp_store::FaultFs, DurableMarket) {
        let dir = temp_dir(tag);
        let fs = qbdp_store::FaultFs::new(qbdp_store::FaultPlan {
            script,
            seeded: None,
        });
        let retry = RetryPolicy {
            attempts: 3,
            base_delay_micros: 1,
            max_delay_micros: 2,
            jitter_seed: 7,
        };
        let dm =
            DurableMarket::create_with(Arc::new(fs.clone()), &dir, QDP, FsyncPolicy::Always, retry)
                .unwrap();
        (dir, fs, dm)
    }

    #[test]
    fn enospc_degrades_to_read_only_and_reopen_recovers() {
        use qbdp_store::{FaultKind, FaultOp, ScriptedFault};
        let (dir, fs, dm) = fault_setup(
            "enospc",
            vec![ScriptedFault {
                op: FaultOp::Write,
                path_contains: "market.wal".into(),
                skip: 1,
                kind: FaultKind::Enospc { keep: 3 },
            }],
        );
        dm.purchase_str("Q(x) :- R(x)").unwrap();
        let revenue = dm.market().revenue();
        let quote_before = dm.quote_str("Q(x, y) :- R(x), S(x, y)").unwrap();
        // The scripted ENOSPC hits this append: mutation refused, market
        // flips to read-only.
        let err = dm.set_price("T.Y=b2", Price::cents(250)).unwrap_err();
        assert!(matches!(err, MarketError::Store(ref e) if e.degrades_to_read_only()));
        assert!(matches!(dm.health(), MarketHealth::ReadOnly { .. }));
        // Quotes keep serving the last consistent state; further
        // mutations are refused with the typed Degraded error.
        let quote_after = dm.quote_str("Q(x, y) :- R(x), S(x, y)").unwrap();
        assert_eq!(quote_before.price, quote_after.price);
        assert!(quote_after.lower_bound <= quote_after.price);
        assert!(matches!(
            dm.purchase_str("Q(x) :- R(x)"),
            Err(MarketError::Degraded(_))
        ));
        assert!(matches!(dm.compact(), Err(MarketError::Degraded(_))));
        assert_eq!(dm.market().revenue(), revenue, "no phantom sale recorded");
        // Reopening (fault cleared) recovers the acknowledged state and
        // a healthy market.
        drop(dm);
        let back =
            DurableMarket::open_on(Arc::new(fs), &dir, FsyncPolicy::Never, RetryPolicy::none())
                .unwrap();
        assert_eq!(back.health(), MarketHealth::Healthy);
        assert_eq!(back.market().revenue(), revenue);
        back.set_price("T.Y=b2", Price::cents(250)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_poison_degrades_and_loses_at_most_the_unacked_tail() {
        use qbdp_store::{FaultKind, FaultOp, ScriptedFault};
        // skip=2: the genesis create fsyncs once (snapshot tmp) on a
        // different file; target the WAL path so only its fsyncs count.
        let (dir, fs, dm) = fault_setup(
            "fsyncpoison",
            vec![ScriptedFault {
                op: FaultOp::Fsync,
                path_contains: "market.wal".into(),
                skip: 1,
                kind: FaultKind::FsyncFail,
            }],
        );
        dm.purchase_str("Q(x) :- R(x)").unwrap();
        let revenue = dm.market().revenue();
        let err = dm.purchase_str("Q(x) :- R(x)").unwrap_err();
        assert!(
            matches!(err, MarketError::Store(StoreError::Poisoned { .. })),
            "{err:?}"
        );
        assert!(matches!(dm.health(), MarketHealth::ReadOnly { .. }));
        assert!(dm.quote_str("Q(x) :- R(x)").is_ok());
        drop(dm);
        let back =
            DurableMarket::open_on(Arc::new(fs), &dir, FsyncPolicy::Never, RetryPolicy::none())
                .unwrap();
        // The acked purchase survives; the refused one may or may not
        // have reached disk (fsyncgate uncertainty) but never partially.
        let doubled = revenue.checked_add(revenue);
        assert!(
            back.market().revenue() == revenue || Some(back.market().revenue()) == doubled,
            "revenue {:?} vs acked {revenue:?}",
            back.market().revenue()
        );
        assert_eq!(back.health(), MarketHealth::Healthy);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_transient_fsync_is_typed_and_non_degrading() {
        use qbdp_store::{FaultKind, FaultOp, ScriptedFault};
        let dir = temp_dir("compact_transient");
        let fs = qbdp_store::FaultFs::new(qbdp_store::FaultPlan {
            script: Vec::new(),
            seeded: None,
        });
        // Zero retries: a single transient immediately exhausts the
        // budget and must surface as the typed Transient error.
        let dm = DurableMarket::create_with(
            Arc::new(fs.clone()),
            &dir,
            QDP,
            FsyncPolicy::Never,
            RetryPolicy::none(),
        )
        .unwrap();
        dm.purchase_str("Q(x) :- R(x)").unwrap();
        fs.set_plan(qbdp_store::FaultPlan {
            script: vec![ScriptedFault {
                op: FaultOp::Fsync,
                path_contains: "snapshot.tmp".into(),
                skip: 0,
                kind: FaultKind::Eintr,
            }],
            seeded: None,
        });
        let err = dm.compact().unwrap_err();
        match &err {
            MarketError::Store(StoreError::Transient { op, path, .. }) => {
                assert_eq!(*op, "snapshot-tmp");
                assert!(path.contains(".tmp"), "{path}");
            }
            other => panic!("expected typed Transient, got {other:?}"),
        }
        // Non-degrading: the market stays healthy and the retried
        // compaction succeeds.
        assert_eq!(dm.health(), MarketHealth::Healthy);
        dm.compact().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scrub_reports_clean_then_detects_rot() {
        let dir = temp_dir("scrub");
        let dm = DurableMarket::create(&dir, QDP, FsyncPolicy::Always).unwrap();
        dm.purchase_str("Q(x) :- R(x)").unwrap();
        let report = dm.scrub();
        assert!(report.is_clean(), "{report}");
        assert!(report.wal_records >= 1);
        // Rot one byte in the log body behind the market's back.
        let wal_path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&wal_path, &bytes).unwrap();
        let report = dm.scrub();
        assert!(!report.is_clean());
        assert_eq!(report.findings[0].file, "wal");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn policy_text_roundtrips() {
        let p = MarketPolicy {
            deadline: Some(Duration::from_millis(1500)),
            fuel: Some(42),
            sell_degraded: true,
            batch_workers: 8,
            ..Default::default()
        };
        let back = parse_policy(&policy_text(&p)).unwrap();
        assert_eq!(back, p);
        assert!(parse_policy("garbage").is_err());
    }
}
