//! The transaction ledger: every quote that turned into a purchase, plus
//! data-update events, with running revenue.

use qbdp_core::Price;
use std::time::Instant;

/// One recorded event.
#[derive(Clone, Debug)]
pub enum Transaction {
    /// A completed purchase.
    Sale {
        /// Monotone id.
        id: u64,
        /// The query, rendered.
        query: String,
        /// The price paid.
        price: Price,
        /// Number of answer tuples delivered.
        answer_tuples: usize,
        /// Number of views in the receipt.
        views: usize,
        /// When it happened (relative to ledger creation).
        at: Instant,
    },
    /// A data update by the seller.
    Update {
        /// Monotone id.
        id: u64,
        /// Relation name.
        relation: String,
        /// Tuples added.
        added: usize,
        /// When it happened.
        at: Instant,
    },
}

/// Append-only ledger with revenue accounting.
#[derive(Debug)]
pub struct Ledger {
    transactions: Vec<Transaction>,
    revenue: Price,
    next_id: u64,
}

impl Default for Ledger {
    fn default() -> Self {
        Ledger::new()
    }
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger {
            transactions: Vec::new(),
            revenue: Price::ZERO,
            next_id: 1,
        }
    }

    /// Record a sale; returns its id.
    pub fn record_sale(
        &mut self,
        query: String,
        price: Price,
        answer_tuples: usize,
        views: usize,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.revenue = self.revenue.saturating_add(price);
        self.transactions.push(Transaction::Sale {
            id,
            query,
            price,
            answer_tuples,
            views,
            at: Instant::now(),
        });
        id
    }

    /// Record a sale with **checked** revenue arithmetic: `None` (and no
    /// state change) if the new total would overflow. The durable paths
    /// use this — both live appends and recovery replay — so the books
    /// can never silently wrap or saturate, and a replayed history is
    /// guaranteed to reproduce the live totals digit for digit.
    pub fn record_sale_checked(
        &mut self,
        query: String,
        price: Price,
        answer_tuples: usize,
        views: usize,
    ) -> Option<u64> {
        let revenue = self.revenue.checked_add(price)?;
        let id = self.next_id;
        self.next_id += 1;
        self.revenue = revenue;
        self.transactions.push(Transaction::Sale {
            id,
            query,
            price,
            answer_tuples,
            views,
            at: Instant::now(),
        });
        Some(id)
    }

    /// Record an update; returns its id.
    pub fn record_update(&mut self, relation: String, added: usize) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.transactions.push(Transaction::Update {
            id,
            relation,
            added,
            at: Instant::now(),
        });
        id
    }

    /// All transactions, oldest first.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Total revenue.
    pub fn revenue(&self) -> Price {
        self.revenue
    }

    /// Number of sales.
    pub fn sales(&self) -> usize {
        self.transactions
            .iter()
            .filter(|t| matches!(t, Transaction::Sale { .. }))
            .count()
    }

    /// Serialize for a durable snapshot: one header line each for the
    /// running totals, then one line per transaction. Timestamps are
    /// process-relative [`Instant`]s and are deliberately not persisted.
    pub fn to_snapshot_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("revenue {}\n", self.revenue.as_cents()));
        out.push_str(&format!("next_id {}\n", self.next_id));
        for t in &self.transactions {
            match t {
                Transaction::Sale {
                    id,
                    query,
                    price,
                    answer_tuples,
                    views,
                    at: _,
                } => {
                    out.push_str(&format!(
                        "sale {id} {} {answer_tuples} {views} {query}\n",
                        price.as_cents()
                    ));
                }
                Transaction::Update {
                    id,
                    relation,
                    added,
                    at: _,
                } => {
                    out.push_str(&format!("update {id} {added} {relation}\n"));
                }
            }
        }
        out
    }

    /// Rebuild a ledger from [`Ledger::to_snapshot_text`] output. The
    /// stored revenue total is cross-checked against the checked sum of
    /// the sale lines, so a tampered or wrapped total is refused.
    pub fn from_snapshot_text(text: &str) -> Result<Ledger, String> {
        let mut lines = text.lines();
        let header = |line: Option<&str>, key: &str| -> Result<u64, String> {
            line.and_then(|l| l.strip_prefix(key))
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| format!("bad ledger `{key}` line"))
        };
        let revenue = Price::cents(header(lines.next(), "revenue ")?);
        let next_id = header(lines.next(), "next_id ")?;
        let mut transactions = Vec::new();
        let mut sum = Price::ZERO;
        for line in lines {
            let mut parts = line.splitn(2, ' ');
            let kind = parts.next().unwrap_or_default();
            let rest = parts.next().unwrap_or_default();
            match kind {
                "sale" => {
                    let mut f = rest.splitn(5, ' ');
                    let mut num = |name: &str| -> Result<u64, String> {
                        f.next()
                            .and_then(|v| v.parse().ok())
                            .ok_or_else(|| format!("bad sale {name} in `{line}`"))
                    };
                    let id = num("id")?;
                    let price = Price::cents(num("price")?);
                    let answer_tuples = num("answer_tuples")? as usize;
                    let views = num("views")? as usize;
                    let query = f.next().unwrap_or_default().to_string();
                    sum = sum
                        .checked_add(price)
                        .ok_or_else(|| "ledger revenue overflows".to_string())?;
                    transactions.push(Transaction::Sale {
                        id,
                        query,
                        price,
                        answer_tuples,
                        views,
                        at: Instant::now(),
                    });
                }
                "update" => {
                    let mut f = rest.splitn(3, ' ');
                    let id = f
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| format!("bad update id in `{line}`"))?;
                    let added = f
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| format!("bad update count in `{line}`"))?
                        as usize;
                    let relation = f.next().unwrap_or_default().to_string();
                    transactions.push(Transaction::Update {
                        id,
                        relation,
                        added,
                        at: Instant::now(),
                    });
                }
                other => return Err(format!("unknown ledger line kind `{other}`")),
            }
        }
        if sum != revenue {
            return Err(format!(
                "ledger revenue {} does not match the sum of its sales {}",
                revenue.as_cents(),
                sum.as_cents()
            ));
        }
        // next_id must clear every recorded id (and be at least 1, the
        // empty ledger's counter), or a tampered snapshot would hand out
        // duplicate transaction ids after recovery.
        let max_id = transactions
            .iter()
            .map(|t| match t {
                Transaction::Sale { id, .. } | Transaction::Update { id, .. } => *id,
            })
            .max()
            .unwrap_or(0);
        if next_id <= max_id {
            return Err(format!(
                "ledger next_id {next_id} does not exceed the largest transaction id {max_id}"
            ));
        }
        Ok(Ledger {
            transactions,
            revenue,
            next_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revenue_accumulates() {
        let mut l = Ledger::new();
        let a = l.record_sale("Q1".into(), Price::dollars(3), 10, 2);
        let b = l.record_sale("Q2".into(), Price::dollars(4), 0, 1);
        let c = l.record_update("R".into(), 5);
        assert!(a < b && b < c);
        assert_eq!(l.revenue(), Price::dollars(7));
        assert_eq!(l.sales(), 2);
        assert_eq!(l.transactions().len(), 3);
    }

    #[test]
    fn checked_sale_refuses_overflow() {
        let mut l = Ledger::new();
        let big = Price::cents(Price::INFINITE.as_cents() - 1);
        assert!(l.record_sale_checked("Q1".into(), big, 1, 1).is_some());
        // The second near-MAX sale would cross the sentinel: refused,
        // and the ledger is untouched.
        assert!(l.record_sale_checked("Q2".into(), big, 1, 1).is_none());
        assert_eq!(l.sales(), 1);
        assert_eq!(l.revenue(), big);
    }

    #[test]
    fn snapshot_text_roundtrip() {
        let mut l = Ledger::new();
        l.record_sale("Q(x, y) :- R(x), S(x, y)".into(), Price::dollars(6), 1, 6);
        l.record_update("T".into(), 2);
        l.record_sale("Q(x) :- R(x)".into(), Price::cents(425), 3, 4);
        let text = l.to_snapshot_text();
        let back = Ledger::from_snapshot_text(&text).unwrap();
        assert_eq!(back.revenue(), l.revenue());
        assert_eq!(back.sales(), l.sales());
        assert_eq!(back.transactions().len(), l.transactions().len());
        // Ids keep counting from where the live ledger stopped.
        let mut back = back;
        assert_eq!(back.record_update("R".into(), 1), 4);
    }

    #[test]
    fn snapshot_text_rejects_stale_next_id() {
        let mut l = Ledger::new();
        l.record_sale("Q(x) :- R(x)".into(), Price::dollars(2), 1, 1);
        l.record_update("R".into(), 3);
        // next_id 3 is correct; rewinding it to a recorded id would hand
        // out duplicates after recovery.
        let text = l.to_snapshot_text();
        assert!(Ledger::from_snapshot_text(&text).is_ok());
        for bad in ["next_id 2", "next_id 1", "next_id 0"] {
            let tampered = text.replace("next_id 3", bad);
            assert!(
                Ledger::from_snapshot_text(&tampered).is_err(),
                "accepted {bad}"
            );
        }
    }

    #[test]
    fn snapshot_text_rejects_tampered_totals() {
        let mut l = Ledger::new();
        l.record_sale("Q(x) :- R(x)".into(), Price::dollars(2), 1, 1);
        let text = l.to_snapshot_text().replace("revenue 200", "revenue 999");
        assert!(Ledger::from_snapshot_text(&text).is_err());
        assert!(Ledger::from_snapshot_text("garbage").is_err());
    }
}
