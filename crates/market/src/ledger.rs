//! The transaction ledger: every quote that turned into a purchase, plus
//! data-update events, with running revenue.

use qbdp_core::Price;
use std::time::Instant;

/// One recorded event.
#[derive(Clone, Debug)]
pub enum Transaction {
    /// A completed purchase.
    Sale {
        /// Monotone id.
        id: u64,
        /// The query, rendered.
        query: String,
        /// The price paid.
        price: Price,
        /// Number of answer tuples delivered.
        answer_tuples: usize,
        /// Number of views in the receipt.
        views: usize,
        /// When it happened (relative to ledger creation).
        at: Instant,
    },
    /// A data update by the seller.
    Update {
        /// Monotone id.
        id: u64,
        /// Relation name.
        relation: String,
        /// Tuples added.
        added: usize,
        /// When it happened.
        at: Instant,
    },
}

/// Append-only ledger with revenue accounting.
#[derive(Debug)]
pub struct Ledger {
    transactions: Vec<Transaction>,
    revenue: Price,
    next_id: u64,
}

impl Default for Ledger {
    fn default() -> Self {
        Ledger::new()
    }
}

impl Ledger {
    /// An empty ledger.
    pub fn new() -> Self {
        Ledger {
            transactions: Vec::new(),
            revenue: Price::ZERO,
            next_id: 1,
        }
    }

    /// Record a sale; returns its id.
    pub fn record_sale(
        &mut self,
        query: String,
        price: Price,
        answer_tuples: usize,
        views: usize,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.revenue = self.revenue.saturating_add(price);
        self.transactions.push(Transaction::Sale {
            id,
            query,
            price,
            answer_tuples,
            views,
            at: Instant::now(),
        });
        id
    }

    /// Record an update; returns its id.
    pub fn record_update(&mut self, relation: String, added: usize) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.transactions.push(Transaction::Update {
            id,
            relation,
            added,
            at: Instant::now(),
        });
        id
    }

    /// All transactions, oldest first.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Total revenue.
    pub fn revenue(&self) -> Price {
        self.revenue
    }

    /// Number of sales.
    pub fn sales(&self) -> usize {
        self.transactions
            .iter()
            .filter(|t| matches!(t, Transaction::Sale { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revenue_accumulates() {
        let mut l = Ledger::new();
        let a = l.record_sale("Q1".into(), Price::dollars(3), 10, 2);
        let b = l.record_sale("Q2".into(), Price::dollars(4), 0, 1);
        let c = l.record_update("R".into(), 5);
        assert!(a < b && b < c);
        assert_eq!(l.revenue(), Price::dollars(7));
        assert_eq!(l.sales(), 2);
        assert_eq!(l.transactions().len(), 3);
    }
}
