//! [`MarketOps`]: one mutation-polymorphic surface over [`Market`] and
//! [`DurableMarket`].
//!
//! Hosts (the CLI, tests, embedders) are generic over `M: MarketOps` and
//! serve either flavor through the same code path. Reads always come
//! from the in-memory market ([`MarketOps::base`]) — quoting, explains,
//! catalog introspection, and `.qdp` serialization are identical whether
//! or not a log sits underneath. Mutations go through the trait so the
//! durable implementation can write ahead; the in-memory implementation
//! just forwards.

use crate::durable::{DurableMarket, MarketHealth};
use crate::error::MarketError;
use crate::market::{Market, MarketPolicy, Purchase};
use qbdp_catalog::Tuple;
use qbdp_core::Price;

/// The common market surface. See the module docs.
///
/// The trait is **object-safe** by contract: the serving layer holds a
/// `&dyn MarketOps` so plain and durable markets share one code path.
/// The assertion below (and its twin in `qbdp-serve`) turns an
/// accidental generic method into a compile error here rather than a
/// confusing one downstream. `Sync` is a supertrait because a served
/// market is shared with the event-loop thread (and load harnesses)
/// by reference.
pub trait MarketOps: Sync {
    /// The in-memory market answering all read-side calls.
    fn base(&self) -> &Market;

    /// Seller-side tuple insertion (§2.7); durable when the
    /// implementation is. Returns the number of tuples actually added.
    fn insert(&self, relation: &str, tuples: Vec<Tuple>) -> Result<usize, MarketError>;

    /// Seller-side price revision (`R.X=a` selector syntax).
    fn set_price(&self, view: &str, price: Price) -> Result<(), MarketError>;

    /// Purchase a query given in datalog syntax.
    fn purchase_str(&self, query: &str) -> Result<Purchase, MarketError>;

    /// Replace the governance policy. Fallible because the durable
    /// implementation logs the change before applying it.
    fn set_policy(&self, policy: MarketPolicy) -> Result<(), MarketError>;

    /// The durable wrapper, when this market has one — for operations
    /// that only make sense with a log (compaction, forced sync).
    fn durable(&self) -> Option<&DurableMarket> {
        None
    }

    /// Serving health: an in-memory market is always [`Healthy`]
    /// (mutations cannot fail for durability reasons); the durable
    /// implementation reports [`ReadOnly`] once its log stops
    /// acknowledging writes. Servers probe this for `/health` instead
    /// of downcasting through [`MarketOps::durable`].
    ///
    /// [`Healthy`]: MarketHealth::Healthy
    /// [`ReadOnly`]: MarketHealth::ReadOnly
    fn health(&self) -> MarketHealth {
        MarketHealth::Healthy
    }

    /// A Prometheus-text snapshot of the process-wide telemetry registry
    /// (counters, gauges, and latency histograms). Metrics are recorded
    /// only while [`MarketPolicy::telemetry`] is on; the snapshot itself
    /// is always available (all-zero when telemetry never ran).
    fn metrics_snapshot(&self) -> String {
        qbdp_obs::export::prometheus(qbdp_obs::global())
    }
}

impl MarketOps for Market {
    fn base(&self) -> &Market {
        self
    }

    fn insert(&self, relation: &str, tuples: Vec<Tuple>) -> Result<usize, MarketError> {
        Market::insert(self, relation, tuples)
    }

    fn set_price(&self, view: &str, price: Price) -> Result<(), MarketError> {
        Market::set_price(self, view, price)
    }

    fn purchase_str(&self, query: &str) -> Result<Purchase, MarketError> {
        Market::purchase_str(self, query)
    }

    fn set_policy(&self, policy: MarketPolicy) -> Result<(), MarketError> {
        Market::set_policy(self, policy);
        Ok(())
    }
}

impl MarketOps for DurableMarket {
    fn base(&self) -> &Market {
        self.market()
    }

    fn insert(&self, relation: &str, tuples: Vec<Tuple>) -> Result<usize, MarketError> {
        DurableMarket::insert(self, relation, tuples)
    }

    fn set_price(&self, view: &str, price: Price) -> Result<(), MarketError> {
        DurableMarket::set_price(self, view, price)
    }

    fn purchase_str(&self, query: &str) -> Result<Purchase, MarketError> {
        DurableMarket::purchase_str(self, query)
    }

    fn set_policy(&self, policy: MarketPolicy) -> Result<(), MarketError> {
        DurableMarket::set_policy(self, policy)
    }

    fn durable(&self) -> Option<&DurableMarket> {
        Some(self)
    }

    fn health(&self) -> MarketHealth {
        DurableMarket::health(self)
    }
}

/// Compile-time object-safety assertion: this line fails to build the
/// moment a generic method or `Self`-returning signature sneaks into
/// the trait.
const _: Option<&dyn MarketOps> = None;

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_catalog::{CatalogBuilder, Column};
    use qbdp_core::PriceList;

    fn tiny_market() -> Market {
        let col = Column::int_range(0, 3);
        let catalog = CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .build()
            .expect("catalog");
        let d = catalog.empty_instance();
        let prices = PriceList::uniform(&catalog, qbdp_core::Price::dollars(1));
        Market::open(catalog, d, prices).expect("market")
    }

    #[test]
    fn dyn_market_ops_serves_reads_and_health() {
        let m = tiny_market();
        let ops: &dyn MarketOps = &m;
        assert!(matches!(ops.health(), MarketHealth::Healthy));
        assert!(ops.durable().is_none());
        let quotes = ops.base().quote_batch(&["Q() :- R(0)"]);
        assert_eq!(quotes.len(), 1);
        assert!(quotes[0].is_ok(), "{quotes:?}");
    }
}
