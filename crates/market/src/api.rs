//! [`MarketOps`]: one mutation-polymorphic surface over [`Market`] and
//! [`DurableMarket`].
//!
//! Hosts (the CLI, tests, embedders) are generic over `M: MarketOps` and
//! serve either flavor through the same code path. Reads always come
//! from the in-memory market ([`MarketOps::base`]) — quoting, explains,
//! catalog introspection, and `.qdp` serialization are identical whether
//! or not a log sits underneath. Mutations go through the trait so the
//! durable implementation can write ahead; the in-memory implementation
//! just forwards.

use crate::durable::DurableMarket;
use crate::error::MarketError;
use crate::market::{Market, MarketPolicy, Purchase};
use qbdp_catalog::Tuple;
use qbdp_core::Price;

/// The common market surface. See the module docs.
pub trait MarketOps {
    /// The in-memory market answering all read-side calls.
    fn base(&self) -> &Market;

    /// Seller-side tuple insertion (§2.7); durable when the
    /// implementation is. Returns the number of tuples actually added.
    fn insert(&self, relation: &str, tuples: Vec<Tuple>) -> Result<usize, MarketError>;

    /// Seller-side price revision (`R.X=a` selector syntax).
    fn set_price(&self, view: &str, price: Price) -> Result<(), MarketError>;

    /// Purchase a query given in datalog syntax.
    fn purchase_str(&self, query: &str) -> Result<Purchase, MarketError>;

    /// Replace the governance policy. Fallible because the durable
    /// implementation logs the change before applying it.
    fn set_policy(&self, policy: MarketPolicy) -> Result<(), MarketError>;

    /// The durable wrapper, when this market has one — for operations
    /// that only make sense with a log (compaction, forced sync).
    fn durable(&self) -> Option<&DurableMarket> {
        None
    }

    /// A Prometheus-text snapshot of the process-wide telemetry registry
    /// (counters, gauges, and latency histograms). Metrics are recorded
    /// only while [`MarketPolicy::telemetry`] is on; the snapshot itself
    /// is always available (all-zero when telemetry never ran).
    fn metrics_snapshot(&self) -> String {
        qbdp_obs::export::prometheus(qbdp_obs::global())
    }
}

impl MarketOps for Market {
    fn base(&self) -> &Market {
        self
    }

    fn insert(&self, relation: &str, tuples: Vec<Tuple>) -> Result<usize, MarketError> {
        Market::insert(self, relation, tuples)
    }

    fn set_price(&self, view: &str, price: Price) -> Result<(), MarketError> {
        Market::set_price(self, view, price)
    }

    fn purchase_str(&self, query: &str) -> Result<Purchase, MarketError> {
        Market::purchase_str(self, query)
    }

    fn set_policy(&self, policy: MarketPolicy) -> Result<(), MarketError> {
        Market::set_policy(self, policy);
        Ok(())
    }
}

impl MarketOps for DurableMarket {
    fn base(&self) -> &Market {
        self.market()
    }

    fn insert(&self, relation: &str, tuples: Vec<Tuple>) -> Result<usize, MarketError> {
        DurableMarket::insert(self, relation, tuples)
    }

    fn set_price(&self, view: &str, price: Price) -> Result<(), MarketError> {
        DurableMarket::set_price(self, view, price)
    }

    fn purchase_str(&self, query: &str) -> Result<Purchase, MarketError> {
        DurableMarket::purchase_str(self, query)
    }

    fn set_policy(&self, policy: MarketPolicy) -> Result<(), MarketError> {
        DurableMarket::set_policy(self, policy)
    }

    fn durable(&self) -> Option<&DurableMarket> {
        Some(self)
    }
}
