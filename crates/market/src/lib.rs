#![warn(missing_docs)]

//! # qbdp-market — a query-priced data marketplace
//!
//! The downstream-facing layer: a thread-safe [`Market`] wrapping the
//! pricing engine with the workflow a real marketplace needs —
//!
//! * sellers publish a catalog, data, and explicit selection-view prices,
//!   validated against Proposition 3.2 so no arbitrage is possible;
//! * buyers ask for **quotes** on arbitrary queries (datalog-syntax
//!   strings or ASTs) and **purchase** them, receiving the answer plus an
//!   itemized receipt of the views their payment stands for;
//! * the seller inserts new data at any time (§2.7); consistency is
//!   preserved automatically (Prop 3.2 is instance-independent) and
//!   full-query prices never drop (Prop 2.22);
//! * a [`ledger::Ledger`] records every transaction and the running
//!   revenue.
//!
//! Concurrency: quoting is read-only and proceeds under a shared lock;
//! insertions take the write lock. The `concurrent` test module hammers a
//! market from multiple threads (crossbeam) to validate the locking.

pub mod error;
pub mod ledger;
pub mod market;

pub use error::MarketError;
pub use ledger::{Ledger, Transaction};
pub use market::{Market, MarketQuote, Purchase};
