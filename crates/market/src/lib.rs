#![warn(missing_docs)]
// The serving layer must never panic on buyer input: unwrap/expect are
// banned outside tests (enforced by the CI clippy step).
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # qbdp-market — a query-priced data marketplace
//!
//! The downstream-facing layer: a thread-safe [`Market`] wrapping the
//! pricing engine with the workflow a real marketplace needs —
//!
//! * sellers publish a catalog, data, and explicit selection-view prices,
//!   validated against Proposition 3.2 so no arbitrage is possible;
//! * buyers ask for **quotes** on arbitrary queries (datalog-syntax
//!   strings or ASTs) and **purchase** them, receiving the answer plus an
//!   itemized receipt of the views their payment stands for;
//! * the seller inserts new data at any time (§2.7); consistency is
//!   preserved automatically (Prop 3.2 is instance-independent) and
//!   full-query prices never drop (Prop 2.22);
//! * a [`ledger::Ledger`] records every transaction and the running
//!   revenue.
//!
//! Concurrency: quoting is read-only and proceeds under a shared lock;
//! insertions take the write lock. Exact quotes are cached in a sharded,
//! epoch-validated cache (`cache`, 16 `RwLock` shards outside the state
//! lock) so a quote raced by a concurrent update is never served stale,
//! and [`market::Market::quote_batch`] prices many queries at once on a
//! scoped worker pool ([`market::MarketPolicy::batch_workers`]). The
//! `concurrent` test module hammers a market from multiple threads
//! (crossbeam) to validate the locking.
//!
//! Resource governance: a [`market::MarketPolicy`] bounds each pricing
//! call with a fuel budget and/or wall-clock deadline, caps concurrent
//! in-flight requests, and decides whether budget-degraded (sound
//! upper-bound) quotes are sold or refused. Engine panics are contained
//! at the market boundary ([`MarketError::Internal`]); the market keeps
//! serving.

pub mod api;
mod cache;
pub mod chaos;
pub mod durable;
pub mod error;
pub mod ledger;
pub mod market;

pub use api::MarketOps;
pub use chaos::{fingerprint, ChaosConfig, ChaosReport, FaultMix, Fingerprint};
pub use durable::{DurableMarket, MarketHealth, ReplayStep};
pub use error::MarketError;
pub use ledger::{Ledger, Transaction};
pub use market::{Market, MarketPolicy, MarketQuote, Purchase};
pub use qbdp_store::{FsyncPolicy, MarketEvent, StoreError};
