//! Market-layer errors.

use qbdp_core::PricingError;
use qbdp_query::QueryError;
use qbdp_store::StoreError;
use std::fmt;

/// Errors surfaced by the marketplace.
#[derive(Debug)]
pub enum MarketError {
    /// The seller's price list admits arbitrage (Proposition 3.2); the
    /// violations are rendered in the message.
    InconsistentPrices(String),
    /// Pricing failed.
    Pricing(PricingError),
    /// The buyer's query did not parse or validate.
    Query(QueryError),
    /// The query is not for sale at any finite price (the price points do
    /// not determine it).
    NotForSale,
    /// Data update rejected (e.g. value outside a declared column).
    Update(String),
    /// The per-quote budget ran out and the market's policy forbids
    /// selling degraded (upper-bound) quotes.
    DeadlineExceeded,
    /// Too many quotes in flight (the market's admission cap); retry later.
    Overloaded,
    /// A pricing engine panicked; the panic was contained at the market
    /// boundary and the market keeps serving other requests.
    Internal(String),
    /// The durability layer failed (I/O, corrupt log record, damaged
    /// snapshot…). For a live mutation this means the event was **not**
    /// durably recorded and the in-memory state was left unchanged.
    Store(StoreError),
    /// Replaying the recorded history would push total revenue past the
    /// representable range. Recovery refuses rather than wrapping or
    /// silently saturating (the recovered books must equal the real ones).
    RevenueOverflow,
    /// A durable purchase kept colliding with concurrent data or price
    /// mutations: every quote was invalidated before it could be logged.
    /// Nothing was recorded; retry when the update stream quiets down.
    Contended,
    /// The market has degraded to read-only serving: the durability
    /// layer can no longer acknowledge mutations (disk full, or an fsync
    /// failure poisoned the log), so accepting this one could lose it.
    /// Quotes keep serving from the last consistent state — they are
    /// still sound arbitrage-free prices — and reopening the market
    /// after the fault clears recovers cleanly. The string carries the
    /// originating store-layer diagnosis.
    Degraded(String),
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::InconsistentPrices(m) => {
                write!(f, "price list admits arbitrage: {m}")
            }
            MarketError::Pricing(e) => write!(f, "{e}"),
            MarketError::Query(e) => write!(f, "{e}"),
            MarketError::NotForSale => {
                write!(f, "the explicit price points do not determine this query")
            }
            MarketError::Update(m) => write!(f, "update rejected: {m}"),
            MarketError::DeadlineExceeded => {
                write!(
                    f,
                    "the pricing budget ran out before an exact price was found \
                     (enable degraded quotes to sell an upper bound)"
                )
            }
            MarketError::Overloaded => {
                write!(f, "too many quotes in flight; retry later")
            }
            MarketError::Internal(m) => {
                write!(f, "internal pricing failure (contained): {m}")
            }
            MarketError::Store(e) => write!(f, "durability failure: {e}"),
            MarketError::RevenueOverflow => {
                write!(
                    f,
                    "replayed revenue exceeds the representable range; \
                     refusing to recover wrapped books"
                )
            }
            MarketError::Contended => {
                write!(
                    f,
                    "purchase repeatedly invalidated by concurrent updates; retry later"
                )
            }
            MarketError::Degraded(reason) => {
                write!(
                    f,
                    "market is read-only (durability degraded: {reason}); \
                     quotes keep serving, mutations are refused"
                )
            }
        }
    }
}

impl std::error::Error for MarketError {}

impl From<PricingError> for MarketError {
    fn from(e: PricingError) -> Self {
        MarketError::Pricing(e)
    }
}

impl From<QueryError> for MarketError {
    fn from(e: QueryError) -> Self {
        MarketError::Query(e)
    }
}

impl From<StoreError> for MarketError {
    fn from(e: StoreError) -> Self {
        MarketError::Store(e)
    }
}
