//! Market-layer errors.

use qbdp_core::PricingError;
use qbdp_query::QueryError;
use std::fmt;

/// Errors surfaced by the marketplace.
#[derive(Debug)]
pub enum MarketError {
    /// The seller's price list admits arbitrage (Proposition 3.2); the
    /// violations are rendered in the message.
    InconsistentPrices(String),
    /// Pricing failed.
    Pricing(PricingError),
    /// The buyer's query did not parse or validate.
    Query(QueryError),
    /// The query is not for sale at any finite price (the price points do
    /// not determine it).
    NotForSale,
    /// Data update rejected (e.g. value outside a declared column).
    Update(String),
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::InconsistentPrices(m) => {
                write!(f, "price list admits arbitrage: {m}")
            }
            MarketError::Pricing(e) => write!(f, "{e}"),
            MarketError::Query(e) => write!(f, "{e}"),
            MarketError::NotForSale => {
                write!(f, "the explicit price points do not determine this query")
            }
            MarketError::Update(m) => write!(f, "update rejected: {m}"),
        }
    }
}

impl std::error::Error for MarketError {}

impl From<PricingError> for MarketError {
    fn from(e: PricingError) -> Self {
        MarketError::Pricing(e)
    }
}

impl From<QueryError> for MarketError {
    fn from(e: QueryError) -> Self {
        MarketError::Query(e)
    }
}
