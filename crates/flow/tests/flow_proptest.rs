//! Property tests for the max-flow solvers: the two independently
//! implemented algorithms agree, cuts have the right weight, and cuts
//! disconnect.

use proptest::prelude::*;
use qbdp_flow::{dinic, edmonds_karp, FlowGraph, INF};

#[derive(Debug, Clone)]
struct RandomGraph {
    nodes: usize,
    edges: Vec<(usize, usize, u64)>,
}

fn graph_strategy() -> impl Strategy<Value = RandomGraph> {
    (3usize..12).prop_flat_map(|nodes| {
        let edge = (0..nodes, 0..nodes, prop_oneof![1u64..100, Just(INF)]);
        proptest::collection::vec(edge, 0..40).prop_map(move |edges| RandomGraph { nodes, edges })
    })
}

fn build(rg: &RandomGraph) -> FlowGraph {
    let mut g = FlowGraph::with_nodes(rg.nodes);
    for &(u, v, c) in &rg.edges {
        if u != v {
            g.add_edge(u, v, c);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dinic_equals_edmonds_karp(rg in graph_strategy()) {
        let g = build(&rg);
        let (s, t) = (0, rg.nodes - 1);
        prop_assert_eq!(dinic(&g, s, t).value, edmonds_karp(&g, s, t).value);
    }

    #[test]
    fn cut_weight_equals_flow_and_disconnects(rg in graph_strategy()) {
        let g = build(&rg);
        let (s, t) = (0, rg.nodes - 1);
        let r = dinic(&g, s, t);
        if r.value < INF {
            let cut = r.min_cut_edges(&g, s);
            let weight: u64 = cut.iter().map(|&e| g.edge(e).2).sum();
            prop_assert_eq!(weight, r.value, "weak duality violated");
            // Removing the cut disconnects t from s: BFS over non-cut edges.
            let cut_set: std::collections::HashSet<usize> = cut.into_iter().collect();
            let mut seen = vec![false; g.num_nodes()];
            seen[s] = true;
            let mut stack = vec![s];
            while let Some(v) = stack.pop() {
                for e in (0..g.num_edges()).map(|i| 2 * i) {
                    let (from, to, _) = g.edge(e);
                    if from == v && !cut_set.contains(&e) && !seen[to] {
                        seen[to] = true;
                        stack.push(to);
                    }
                }
            }
            prop_assert!(!seen[t], "cut does not disconnect");
        }
    }

    #[test]
    fn flow_on_edges_bounded_by_capacity(rg in graph_strategy()) {
        let g = build(&rg);
        let (s, t) = (0, rg.nodes - 1);
        let r = dinic(&g, s, t);
        if r.value >= INF {
            return Ok(()); // saturated: flow bookkeeping is approximate
        }
        for e in (0..g.num_edges()).map(|i| 2 * i) {
            let (_, _, cap) = g.edge(e);
            prop_assert!(r.flow_on(&g, e) <= cap);
        }
    }

    #[test]
    fn flow_conservation(rg in graph_strategy()) {
        let g = build(&rg);
        let (s, t) = (0, rg.nodes - 1);
        let r = dinic(&g, s, t);
        if r.value >= INF {
            return Ok(()); // saturated: flow bookkeeping is approximate
        }
        // Net flow at every internal node is zero.
        let mut net = vec![0i128; g.num_nodes()];
        for e in (0..g.num_edges()).map(|i| 2 * i) {
            let (from, to, _) = g.edge(e);
            let f = r.flow_on(&g, e) as i128;
            net[from] -= f;
            net[to] += f;
        }
        for (v, &balance) in net.iter().enumerate() {
            if v != s && v != t {
                prop_assert_eq!(balance, 0, "conservation at {}", v);
            }
        }
        prop_assert_eq!(net[t], r.value as i128);
        prop_assert_eq!(net[s], -(r.value as i128));
    }
}
