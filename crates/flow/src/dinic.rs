//! Dinic's max-flow algorithm: BFS level graph + DFS blocking flows.
//!
//! The implementation lives in [`crate::arena::DinicArena`], which owns the
//! reusable scratch buffers; the free functions here run one-shot solves on
//! a fresh arena.

use crate::arena::DinicArena;
use crate::graph::{FlowGraph, MaxFlowResult, NodeId};
use crate::meter::{Interrupted, Ticker, Unmetered};

/// Compute the maximum `s`–`t` flow with Dinic's algorithm.
///
/// Runs in `O(V²E)` in general; on the pricing reductions (short layered
/// graphs with small integral capacities) it behaves near-linearly.
pub fn dinic(g: &FlowGraph, s: NodeId, t: NodeId) -> MaxFlowResult {
    match dinic_metered(g, s, t, &Unmetered) {
        Ok(r) => r,
        Err(_) => unreachable!("Unmetered never interrupts"),
    }
}

/// [`dinic`] under a cooperative [`Ticker`]: each BFS phase charges
/// `V + E` units and each augmenting path a constant. When the ticker
/// stops the computation, the error reports the flow pushed so far (a
/// lower bound on the max flow).
pub fn dinic_metered(
    g: &FlowGraph,
    s: NodeId,
    t: NodeId,
    ticker: &impl Ticker,
) -> Result<MaxFlowResult, Interrupted> {
    DinicArena::new().max_flow(g, s, t, ticker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::INF;

    /// CLRS-style diamond network with known max flow.
    #[test]
    fn textbook_network() {
        let mut g = FlowGraph::with_nodes(6);
        let (s, a, b, c, d, t) = (0, 1, 2, 3, 4, 5);
        g.add_edge(s, a, 16);
        g.add_edge(s, b, 13);
        g.add_edge(a, b, 10);
        g.add_edge(b, a, 4);
        g.add_edge(a, c, 12);
        g.add_edge(b, d, 14);
        g.add_edge(c, b, 9);
        g.add_edge(d, c, 7);
        g.add_edge(c, t, 20);
        g.add_edge(d, t, 4);
        let r = dinic(&g, s, t);
        assert_eq!(r.value, 23);
        // The reported cut has the same weight as the flow.
        let cut = r.min_cut_edges(&g, s);
        let weight: u64 = cut.iter().map(|&e| g.edge(e).2).sum();
        assert_eq!(weight, 23);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut g = FlowGraph::with_nodes(3);
        g.add_edge(0, 1, 5);
        let r = dinic(&g, 0, 2);
        assert_eq!(r.value, 0);
        assert!(r.min_cut_edges(&g, 0).is_empty());
    }

    #[test]
    fn parallel_and_antiparallel_edges() {
        let mut g = FlowGraph::with_nodes(2);
        g.add_edge(0, 1, 3);
        g.add_edge(0, 1, 4);
        g.add_edge(1, 0, 100);
        let r = dinic(&g, 0, 1);
        assert_eq!(r.value, 7);
    }

    #[test]
    fn inf_edges_never_cut() {
        // s -INF-> a -5-> b -INF-> t: the only finite cut is {a->b}.
        let mut g = FlowGraph::with_nodes(4);
        g.add_edge(0, 1, INF);
        let mid = g.add_edge(1, 2, 5);
        g.add_edge(2, 3, INF);
        let r = dinic(&g, 0, 3);
        assert_eq!(r.value, 5);
        assert_eq!(r.min_cut_edges(&g, 0), vec![mid]);
        assert_eq!(r.flow_on(&g, mid), 5);
    }

    #[test]
    fn no_finite_cut_reports_inf_scale() {
        let mut g = FlowGraph::with_nodes(2);
        g.add_edge(0, 1, INF);
        g.add_edge(0, 1, INF);
        let r = dinic(&g, 0, 1);
        assert!(r.value >= INF);
    }
}
