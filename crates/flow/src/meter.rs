//! Cooperative work metering for the flow algorithms.
//!
//! The pricing layer above this crate runs max-flow under wall-clock
//! deadlines and work budgets. Rather than depend on that layer, the flow
//! algorithms accept a [`Ticker`]: a callback charged with units of work at
//! loop boundaries. Returning `false` stops the computation; the metered
//! entry points then report the flow pushed so far, which is a sound
//! **lower bound** on the max flow (and hence, by duality, on the min cut).

/// A cooperative work meter. Implementations are charged `n` abstract work
/// units at algorithm checkpoints and answer whether to continue.
pub trait Ticker {
    /// Charge `n` work units; `false` aborts the computation.
    fn tick(&self, n: u64) -> bool;
}

/// A [`Ticker`] that never stops: runs the algorithm to completion.
#[derive(Clone, Copy, Debug, Default)]
pub struct Unmetered;

impl Ticker for Unmetered {
    #[inline]
    fn tick(&self, _n: u64) -> bool {
        true
    }
}

/// A flow computation stopped by its [`Ticker`] before completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interrupted {
    /// Flow pushed before the interruption: a lower bound on the max flow,
    /// and therefore on the min-cut value.
    pub partial_value: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::FlowGraph;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A ticker with a fixed fuel tank.
    struct Fuel(AtomicU64);

    impl Ticker for Fuel {
        fn tick(&self, n: u64) -> bool {
            let mut cur = self.0.load(Ordering::Relaxed);
            loop {
                if cur < n {
                    return false;
                }
                match self.0.compare_exchange_weak(
                    cur,
                    cur - n,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return true,
                    Err(c) => cur = c,
                }
            }
        }
    }

    fn wide_graph() -> FlowGraph {
        // 64 disjoint unit paths s -> m_i -> t: many augmenting rounds.
        let mut g = FlowGraph::with_nodes(66);
        for i in 0..64 {
            g.add_edge(0, 2 + i, 1);
            g.add_edge(2 + i, 1, 1);
        }
        g
    }

    #[test]
    fn interrupted_partial_value_is_a_lower_bound() {
        let g = wide_graph();
        let full = crate::dinic(&g, 0, 1).value;
        assert_eq!(full, 64);
        // Enough fuel for the first phase but not the whole run.
        let r = crate::dinic_metered(&g, 0, 1, &Fuel(AtomicU64::new(300)));
        if let Err(Interrupted { partial_value }) = r {
            assert!(partial_value <= full);
        }
        // Zero fuel interrupts immediately with value 0.
        let r = crate::dinic_metered(&g, 0, 1, &Fuel(AtomicU64::new(0)));
        assert!(matches!(r, Err(Interrupted { partial_value: 0 })));
        let r = crate::edmonds_karp_metered(&g, 0, 1, &Fuel(AtomicU64::new(0)));
        assert!(matches!(r, Err(Interrupted { partial_value: 0 })));
    }

    #[test]
    fn ample_fuel_matches_unmetered() {
        let g = wide_graph();
        let m = crate::dinic_metered(&g, 0, 1, &Fuel(AtomicU64::new(u64::MAX))).unwrap();
        assert_eq!(m.value, crate::dinic(&g, 0, 1).value);
        let m = crate::edmonds_karp_metered(&g, 0, 1, &Fuel(AtomicU64::new(u64::MAX))).unwrap();
        assert_eq!(m.value, crate::edmonds_karp(&g, 0, 1).value);
    }
}
