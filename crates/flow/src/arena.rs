//! A reusable solver arena for Dinic's algorithm.
//!
//! Every max-flow run needs four scratch buffers: the residual capacities,
//! the BFS level array, the DFS edge iterators, and the BFS queue. Pricing
//! workloads solve many graphs in sequence (one per quote, or one per
//! Step-3 branch), so rebuilding those buffers per run dominates small
//! instances. A [`DinicArena`] owns the buffers and reuses their
//! allocations across runs; batch-pricing workers keep one arena each and
//! amortize allocation across an entire job stream.
//!
//! The arena is [`Ticker`]-aware: runs are metered
//! exactly like [`crate::dinic_metered`], charging each BFS phase and each
//! augmenting path, and interruption reports the partial flow value.

use crate::graph::{FlowGraph, MaxFlowResult, NodeId};
use crate::meter::{Interrupted, Ticker};

/// Reusable scratch space for [`DinicArena::max_flow`].
///
/// The residual buffer is *moved into* each returned [`MaxFlowResult`]
/// (cut extraction needs it); hand the result back via
/// [`DinicArena::recycle`] once the cut is extracted to recover the
/// allocation for the next run.
#[derive(Debug, Default)]
pub struct DinicArena {
    /// Spare residual buffer, recovered by [`DinicArena::recycle`].
    spare: Vec<u64>,
    level: Vec<u32>,
    it: Vec<usize>,
    queue: Vec<usize>,
}

impl DinicArena {
    /// A fresh arena with empty buffers.
    pub fn new() -> Self {
        DinicArena::default()
    }

    /// Compute the maximum `s`–`t` flow with Dinic's algorithm, reusing
    /// this arena's buffers. Semantics are identical to
    /// [`crate::dinic_metered`].
    pub fn max_flow(
        &mut self,
        g: &FlowGraph,
        s: NodeId,
        t: NodeId,
        ticker: &impl Ticker,
    ) -> Result<MaxFlowResult, Interrupted> {
        assert_ne!(s, t, "source and sink must differ");
        qbdp_obs::record(qbdp_obs::Ctr::FlowSolvesCold, 1);
        if self.spare.capacity() > 0 {
            qbdp_obs::record(qbdp_obs::Ctr::FlowArenaReuses, 1);
        }
        // Recycle the spare residual buffer if one is available.
        let mut residual = std::mem::take(&mut self.spare);
        residual.clear();
        residual.extend_from_slice(&g.cap);
        let mut value: u64 = 0;
        match self.phases(g, s, t, &mut residual, &mut value, ticker) {
            Ok(()) => Ok(MaxFlowResult { value, residual }),
            Err(()) => {
                self.spare = residual;
                qbdp_obs::record(qbdp_obs::Ctr::BudgetExhaustedFlow, 1);
                Err(Interrupted {
                    partial_value: value,
                })
            }
        }
    }

    /// The Dinic phase loop over an **existing** feasible flow: BFS level
    /// graph + DFS blocking flow until no augmenting path remains. Starting
    /// from the all-zero flow this is a cold solve; starting from a
    /// repaired [`crate::residual::ResidualState`] it resumes augmentation
    /// (a feasible flow with no augmenting path is a maximum flow, so
    /// resumption is exact). `Err(())` means the ticker refused; `value`
    /// then holds the partial (still feasible) flow value.
    pub(crate) fn phases(
        &mut self,
        g: &FlowGraph,
        s: NodeId,
        t: NodeId,
        residual: &mut [u64],
        value: &mut u64,
        ticker: &impl Ticker,
    ) -> Result<(), ()> {
        let n = g.num_nodes();
        let phase_cost = (n + g.num_edges()) as u64;
        self.level.clear();
        self.level.resize(n, u32::MAX);
        self.it.clear();
        self.it.resize(n, 0);
        self.queue.clear();
        self.queue.reserve(n);
        // Fuel accounting is accumulated locally and recorded once at
        // exit: one atomic add per solve, not per phase.
        let mut spent: u64 = 0;
        let out = 'solve: loop {
            if !ticker.tick(phase_cost) {
                break 'solve Err(());
            }
            spent += phase_cost;
            // BFS: build level graph on residual edges.
            self.level.fill(u32::MAX);
            self.level[s] = 0;
            self.queue.clear();
            self.queue.push(s);
            let mut head = 0;
            // audit: bounded(one BFS pass, pre-charged by tick(phase_cost = n + m) above)
            while head < self.queue.len() {
                let v = self.queue[head];
                head += 1;
                // audit: bounded(adjacency scan within the pre-charged BFS pass)
                for &e in &g.adj[v] {
                    let e = e as usize;
                    let w = g.to[e] as usize;
                    if residual[e] > 0 && self.level[w] == u32::MAX {
                        self.level[w] = self.level[v] + 1;
                        self.queue.push(w);
                    }
                }
            }
            if self.level[t] == u32::MAX {
                break 'solve Ok(());
            }
            // DFS blocking flow with edge iterators.
            self.it.fill(0);
            loop {
                let pushed = dfs(g, residual, &self.level, &mut self.it, s, t, u64::MAX);
                if pushed == 0 {
                    break;
                }
                *value = value.saturating_add(pushed);
                if !ticker.tick(8) {
                    break 'solve Err(());
                }
                spent += 8;
            }
        };
        qbdp_obs::record(qbdp_obs::Ctr::FlowFuelSpent, spent);
        out
    }

    /// Reclaim the residual allocation of a finished result so the next
    /// [`DinicArena::max_flow`] run can reuse it. Call after cut
    /// extraction; dropping the result instead merely forgoes the reuse.
    pub fn recycle(&mut self, result: MaxFlowResult) {
        if result.residual.capacity() > self.spare.capacity() {
            self.spare = result.residual;
        }
    }
}

fn dfs(
    g: &FlowGraph,
    residual: &mut [u64],
    level: &[u32],
    it: &mut [usize],
    v: NodeId,
    t: NodeId,
    limit: u64,
) -> u64 {
    if v == t {
        return limit;
    }
    // audit: bounded(edge iterators advance monotonically, amortized into the phase tick)
    while it[v] < g.adj[v].len() {
        let e = g.adj[v][it[v]] as usize;
        let w = g.to[e] as usize;
        if residual[e] > 0 && level[w] == level[v] + 1 {
            let pushed = dfs(g, residual, level, it, w, t, limit.min(residual[e]));
            if pushed > 0 {
                residual[e] -= pushed;
                residual[e ^ 1] = residual[e ^ 1].saturating_add(pushed);
                return pushed;
            }
        }
        it[v] += 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::Unmetered;

    fn diamond() -> FlowGraph {
        let mut g = FlowGraph::with_nodes(6);
        let (s, a, b, c, d, t) = (0, 1, 2, 3, 4, 5);
        g.add_edge(s, a, 16);
        g.add_edge(s, b, 13);
        g.add_edge(a, b, 10);
        g.add_edge(b, a, 4);
        g.add_edge(a, c, 12);
        g.add_edge(b, d, 14);
        g.add_edge(c, b, 9);
        g.add_edge(d, c, 7);
        g.add_edge(c, t, 20);
        g.add_edge(d, t, 4);
        g
    }

    #[test]
    fn arena_matches_one_shot_dinic() {
        let g = diamond();
        let mut arena = DinicArena::new();
        for _ in 0..3 {
            let r = arena.max_flow(&g, 0, 5, &Unmetered).unwrap();
            assert_eq!(r.value, crate::dinic(&g, 0, 5).value);
            let cut = r.min_cut_edges(&g, 0);
            let weight: u64 = cut.iter().map(|&e| g.edge(e).2).sum();
            assert_eq!(weight, 23);
            arena.recycle(r);
        }
    }

    #[test]
    fn recycled_buffers_are_reused_across_sizes() {
        let mut arena = DinicArena::new();
        // Solve a big graph, recycle, then a small one: the residual
        // buffer from the big run must be reused (no shrink below need).
        let mut big = FlowGraph::with_nodes(100);
        for i in 1..99 {
            big.add_edge(0, i, 1);
            big.add_edge(i, 99, 1);
        }
        let r = arena.max_flow(&big, 0, 99, &Unmetered).unwrap();
        assert_eq!(r.value, 98);
        arena.recycle(r);
        let cap_before = arena.spare.capacity();
        assert!(cap_before >= 2 * 2 * 98);
        let small = diamond();
        let r = arena.max_flow(&small, 0, 5, &Unmetered).unwrap();
        assert_eq!(r.value, 23);
        arena.recycle(r);
        assert_eq!(arena.spare.capacity(), cap_before);
    }

    #[test]
    fn interruption_returns_buffer_to_arena() {
        struct Never;
        impl Ticker for Never {
            fn tick(&self, _n: u64) -> bool {
                false
            }
        }
        let g = diamond();
        let mut arena = DinicArena::new();
        let r = arena.max_flow(&g, 0, 5, &Never);
        assert!(matches!(r, Err(Interrupted { partial_value: 0 })));
        // The residual buffer came back despite the interruption.
        assert!(arena.spare.capacity() >= g.cap.len());
    }
}
