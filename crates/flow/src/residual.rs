//! Warm-started min-cut: persist the final flow of a solved instance and
//! *repair* it after a capacity change instead of recomputing from zero.
//!
//! The pricing engine's §2.7 dynamics change one price point at a time,
//! which perturbs exactly one view edge of the Step 4 network. A
//! [`ResidualState`] keeps the residual capacities of the last solve;
//! [`DinicArena::warm_start`] then restores a maximum flow after a batch
//! of single-edge capacity changes:
//!
//! * **increase** — the old flow stays feasible; the freed capacity is
//!   added to the residual and augmentation resumes;
//! * **decrease within flow** — the flow on the edge already fits; the
//!   old flow is still feasible *and maximal* (shrinking a capacity
//!   cannot raise the max flow), so resumption finds nothing to do;
//! * **decrease below flow** — the flow on `e = (u, v)` is clamped to the
//!   new capacity, leaving `x` units of excess at `u` and deficit at `v`.
//!   The excess is drained in two moves: reroute up to `x` units along
//!   residual `u → v` paths (value-neutral — this also cancels any flow
//!   cycles through `e`), then cancel the remainder `r` by pushing `r`
//!   units along residual `u → s` and `t → v` paths (flow decomposition
//!   guarantees both exist) and lowering the flow value by `r`.
//!
//! After the repair the flow is feasible, so resuming Dinic's phase loop
//! yields a maximum flow: a feasible flow with no augmenting path is
//! maximal. Crucially the *canonical* minimum cut — the residual-reachable
//! source side — is identical for every maximum flow, so a warm-started
//! solve reports bit-identical value **and** cut edges to a cold solve.
//!
//! The whole repair is metered against an internal fuel budget of
//! [`warm_fuel_phases`]`(n)` BFS-phase equivalents — a fraction of the
//! `O(n)`-phase cold worst case. If the repair (or the resumed
//! augmentation) exceeds it, the warm attempt is abandoned and a cold
//! solve runs instead; either way the caller ends with a valid
//! [`ResidualState`] for the updated graph.

use crate::arena::DinicArena;
use crate::graph::{
    residual_min_cut, residual_source_side, EdgeId, FlowGraph, MaxFlowResult, NodeId,
};
use crate::meter::{Interrupted, Ticker};
use std::cell::Cell;

/// The persisted outcome of a max-flow solve: flow value plus residual
/// capacities, reusable across capacity changes via
/// [`DinicArena::warm_start`].
#[derive(Clone, Debug)]
pub struct ResidualState {
    value: u64,
    residual: Vec<u64>,
}

impl From<MaxFlowResult> for ResidualState {
    fn from(r: MaxFlowResult) -> Self {
        ResidualState {
            value: r.value,
            residual: r.residual,
        }
    }
}

impl ResidualState {
    /// The current max-flow value == min-cut capacity.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Flow pushed through forward edge `e`.
    pub fn flow_on(&self, g: &FlowGraph, e: EdgeId) -> u64 {
        g.edge(e).2.saturating_sub(self.residual[e])
    }

    /// Source side of the canonical minimum cut (see
    /// [`MaxFlowResult::source_side`]).
    pub fn source_side(&self, g: &FlowGraph, s: NodeId) -> Vec<bool> {
        residual_source_side(g, &self.residual, s)
    }

    /// Edges of the canonical minimum cut, ascending (see
    /// [`MaxFlowResult::min_cut_edges`]).
    pub fn min_cut_edges(&self, g: &FlowGraph, s: NodeId) -> Vec<EdgeId> {
        residual_min_cut(g, &self.residual, s)
    }
}

/// What [`DinicArena::warm_start`] actually did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WarmOutcome {
    /// `true` when the repair exceeded its fuel fraction (or came up
    /// short on a drain path) and a cold solve ran instead. The resulting
    /// state is identical either way; this is for instrumentation.
    pub fell_back: bool,
}

/// Fuel granted to a warm repair, in BFS-phase equivalents (each worth
/// `n + m` ticks): a quarter of the `O(n)`-phase cold worst case, floored
/// at 4 phases so small graphs get a real attempt.
pub fn warm_fuel_phases(nodes: usize) -> u64 {
    4 + nodes as u64 / 4
}

/// An internal fuel tank chained in front of an outer ticker: a tick must
/// pass both. Exhausting the tank aborts the warm attempt (fallback to
/// cold); exhausting the outer ticker surfaces as [`Interrupted`] from the
/// cold fallback, exactly like a cold solve would.
struct Fueled<'a, T> {
    left: Cell<u64>,
    outer: &'a T,
}

impl<T: Ticker> Ticker for Fueled<'_, T> {
    fn tick(&self, n: u64) -> bool {
        if !self.outer.tick(n) {
            return false;
        }
        let left = self.left.get();
        if left < n {
            return false;
        }
        self.left.set(left - n);
        true
    }
}

impl DinicArena {
    /// Apply `changes` (`(forward edge, new capacity)`) to `g` and repair
    /// `state` into a maximum flow of the updated graph, falling back to a
    /// cold solve when the repair exceeds its fuel fraction. `state` must
    /// be the result of a solve (cold or warm) of `g` in its pre-change
    /// capacities; on return it is a valid max-flow state for the updated
    /// graph, with the same value and canonical cut a cold solve reports.
    pub fn warm_start(
        &mut self,
        g: &mut FlowGraph,
        s: NodeId,
        t: NodeId,
        state: &mut ResidualState,
        changes: &[(EdgeId, u64)],
        ticker: &impl Ticker,
    ) -> Result<WarmOutcome, Interrupted> {
        assert_ne!(s, t, "source and sink must differ");
        debug_assert_eq!(
            state.residual.len(),
            g.cap.len(),
            "state does not belong to this graph"
        );
        let mut applied: Vec<(EdgeId, u64, u64)> = Vec::with_capacity(changes.len());
        // audit: bounded(one slot per requested change)
        for &(e, new_cap) in changes {
            let old = g.set_capacity(e, new_cap);
            applied.push((e, old, new_cap));
        }
        let phase_cost = (g.num_nodes() + g.num_edges()) as u64;
        let fueled = Fueled {
            left: Cell::new(phase_cost.saturating_mul(warm_fuel_phases(g.num_nodes()))),
            outer: ticker,
        };
        match self.try_warm(g, s, t, state, &applied, &fueled) {
            Ok(()) => {
                qbdp_obs::record(qbdp_obs::Ctr::FlowSolvesWarm, 1);
                Ok(WarmOutcome { fell_back: false })
            }
            Err(()) => {
                // The partially repaired residual is garbage now; a cold
                // solve rebuilds from the updated capacities under the
                // *outer* ticker only (the fuel fraction governed just
                // the warm attempt).
                qbdp_obs::record(qbdp_obs::Ctr::FlowWarmFallbacks, 1);
                let cold = self.max_flow(g, s, t, ticker)?;
                *state = ResidualState::from(cold);
                Ok(WarmOutcome { fell_back: true })
            }
        }
    }

    /// The warm repair proper. `Err(())` = out of fuel or a drain path
    /// came up short (possible only for flows not produced by our own
    /// solvers); the caller falls back to a cold solve.
    fn try_warm(
        &mut self,
        g: &FlowGraph,
        s: NodeId,
        t: NodeId,
        state: &mut ResidualState,
        applied: &[(EdgeId, u64, u64)],
        ticker: &impl Ticker,
    ) -> Result<(), ()> {
        // audit: bounded(one iteration per applied change; drains tick inside push_paths)
        for &(e, old, new) in applied {
            if new == old {
                continue;
            }
            let res = &mut state.residual;
            let flow = old.saturating_sub(res[e]);
            if new >= old {
                res[e] = res[e].saturating_add(new - old);
            } else if flow <= new {
                res[e] = new - flow;
            } else {
                // The flow violates the shrunk capacity: clamp it and
                // drain the excess (module docs).
                let x = flow - new;
                res[e] = 0;
                res[e ^ 1] = new;
                let u = g.to[e ^ 1] as usize;
                let v = g.to[e] as usize;
                if u == v {
                    continue; // self-loop: conservation unaffected
                }
                let rerouted = push_paths(g, res, u, v, x, ticker)?;
                let r = x - rerouted;
                if r > 0 {
                    if u != s && push_paths(g, res, u, s, r, ticker)? < r {
                        return Err(());
                    }
                    if v != t && push_paths(g, res, t, v, r, ticker)? < r {
                        return Err(());
                    }
                    state.value = state.value.saturating_sub(r);
                }
            }
        }
        // Feasible again: resume augmentation to restore maximality.
        self.phases(g, s, t, &mut state.residual, &mut state.value, ticker)
    }
}

/// Push up to `limit` units along residual paths `from → to`, returning
/// the amount pushed. Each path attempt charges one BFS-phase equivalent;
/// `Err(())` means the ticker refused mid-drain (residual is then
/// inconsistent — callers must discard it).
fn push_paths(
    g: &FlowGraph,
    residual: &mut [u64],
    from: NodeId,
    to: NodeId,
    limit: u64,
    ticker: &impl Ticker,
) -> Result<u64, ()> {
    let n = g.num_nodes();
    let phase_cost = (n + g.num_edges()) as u64;
    // `parent[w]` = edge id that entered `w` (u32::MAX = unvisited).
    let mut parent: Vec<u32> = vec![u32::MAX; n];
    let mut stack: Vec<usize> = Vec::with_capacity(n);
    let mut total = 0u64;
    // audit: bounded(each iteration pushes ≥ 1 unit or breaks; every iteration ticks one phase_cost)
    while total < limit {
        if !ticker.tick(phase_cost) {
            return Err(());
        }
        parent.fill(u32::MAX);
        stack.clear();
        stack.push(from);
        let mut found = false;
        // audit: bounded(DFS visits each node once, pre-charged by tick(phase_cost) above)
        'dfs: while let Some(v) = stack.pop() {
            // audit: bounded(adjacency scan within the pre-charged DFS pass)
            for &e in &g.adj[v] {
                let e = e as usize;
                if residual[e] == 0 {
                    continue;
                }
                let w = g.to[e] as usize;
                if w != from && parent[w] == u32::MAX {
                    parent[w] = e as u32;
                    if w == to {
                        found = true;
                        break 'dfs;
                    }
                    stack.push(w);
                }
            }
        }
        if !found {
            break;
        }
        // Bottleneck, then apply, walking parent edges back to `from`.
        let mut bottleneck = limit - total;
        let mut x = to;
        // audit: bounded(parent chain is a simple path, pre-charged by the phase tick)
        while x != from {
            let e = parent[x] as usize;
            bottleneck = bottleneck.min(residual[e]);
            x = g.to[e ^ 1] as usize;
        }
        let mut x = to;
        // audit: bounded(parent chain is a simple path, pre-charged by the phase tick)
        while x != from {
            let e = parent[x] as usize;
            residual[e] -= bottleneck;
            residual[e ^ 1] = residual[e ^ 1].saturating_add(bottleneck);
            x = g.to[e ^ 1] as usize;
        }
        total += bottleneck;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::Unmetered;

    /// Deterministic xorshift64* so the randomized battery needs no deps.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    fn diamond() -> FlowGraph {
        let mut g = FlowGraph::with_nodes(6);
        let (s, a, b, c, d, t) = (0, 1, 2, 3, 4, 5);
        g.add_edge(s, a, 16);
        g.add_edge(s, b, 13);
        g.add_edge(a, b, 10);
        g.add_edge(b, a, 4);
        g.add_edge(a, c, 12);
        g.add_edge(b, d, 14);
        g.add_edge(c, b, 9);
        g.add_edge(d, c, 7);
        g.add_edge(c, t, 20);
        g.add_edge(d, t, 4);
        g
    }

    fn assert_matches_cold(g: &FlowGraph, s: NodeId, t: NodeId, state: &ResidualState) {
        let cold = crate::dinic(g, s, t);
        assert_eq!(state.value(), cold.value, "warm value diverged");
        assert_eq!(
            state.min_cut_edges(g, s),
            cold.min_cut_edges(g, s),
            "warm canonical cut diverged"
        );
    }

    #[test]
    fn single_edge_changes_match_cold() {
        let mut arena = DinicArena::new();
        for e in (0..10 * 2).step_by(2) {
            for &new_cap in &[0u64, 1, 5, 30] {
                let mut g = diamond();
                let mut state: ResidualState = arena.max_flow(&g, 0, 5, &Unmetered).unwrap().into();
                arena
                    .warm_start(&mut g, 0, 5, &mut state, &[(e, new_cap)], &Unmetered)
                    .unwrap();
                assert_matches_cold(&g, 0, 5, &state);
            }
        }
    }

    #[test]
    fn randomized_update_streams_match_cold() {
        let mut rng = Rng(0x9E3779B97F4A7C15);
        let mut arena = DinicArena::new();
        for case in 0..60 {
            let n = 4 + rng.below(8) as usize;
            let mut g = FlowGraph::with_nodes(n);
            let m = n + rng.below(3 * n as u64) as usize;
            let mut edges = Vec::new();
            for _ in 0..m {
                let a = rng.below(n as u64) as usize;
                let b = rng.below(n as u64) as usize;
                if a == b {
                    continue;
                }
                edges.push(g.add_edge(a, b, rng.below(20)));
            }
            if edges.is_empty() {
                continue;
            }
            let (s, t) = (0, n - 1);
            let mut state: ResidualState = arena.max_flow(&g, s, t, &Unmetered).unwrap().into();
            for step in 0..20 {
                let e = edges[rng.below(edges.len() as u64) as usize];
                let new_cap = rng.below(25);
                arena
                    .warm_start(&mut g, s, t, &mut state, &[(e, new_cap)], &Unmetered)
                    .unwrap();
                let cold = crate::dinic(&g, s, t);
                assert_eq!(
                    state.value(),
                    cold.value,
                    "case {case} step {step}: value diverged"
                );
                assert_eq!(
                    state.min_cut_edges(&g, s),
                    cold.min_cut_edges(&g, s),
                    "case {case} step {step}: cut diverged"
                );
            }
        }
    }

    #[test]
    fn batched_changes_match_cold() {
        let mut rng = Rng(42);
        let mut arena = DinicArena::new();
        for _ in 0..40 {
            let mut g = diamond();
            let mut state: ResidualState = arena.max_flow(&g, 0, 5, &Unmetered).unwrap().into();
            let changes: Vec<(EdgeId, u64)> = (0..3)
                .map(|_| ((rng.below(10) * 2) as usize, rng.below(30)))
                .collect();
            arena
                .warm_start(&mut g, 0, 5, &mut state, &changes, &Unmetered)
                .unwrap();
            assert_matches_cold(&g, 0, 5, &state);
        }
    }

    #[test]
    fn small_repair_stays_warm() {
        let mut g = diamond();
        let mut arena = DinicArena::new();
        let mut state: ResidualState = arena.max_flow(&g, 0, 5, &Unmetered).unwrap().into();
        let out = arena
            .warm_start(&mut g, 0, 5, &mut state, &[(8 * 2 / 2, 21)], &Unmetered)
            .unwrap();
        assert!(!out.fell_back, "a one-unit slack change must repair warm");
        assert_matches_cold(&g, 0, 5, &state);
    }

    /// A decrease whose drain needs one path per parallel branch: with
    /// enough branches the repair exceeds its fuel fraction and must fall
    /// back to a cold solve — and still match it exactly.
    #[test]
    fn oversized_repair_falls_back_to_cold() {
        let k = 64usize;
        let mut g = FlowGraph::new();
        let s = g.add_node();
        let u = g.add_node();
        let v = g.add_node();
        let t = g.add_node();
        for _ in 0..k {
            let a = g.add_node();
            g.add_edge(s, a, 1);
            g.add_edge(a, u, 1);
        }
        let bottleneck = g.add_edge(u, v, k as u64);
        g.add_edge(v, t, k as u64);
        let mut arena = DinicArena::new();
        let mut state: ResidualState = arena.max_flow(&g, s, t, &Unmetered).unwrap().into();
        assert_eq!(state.value(), k as u64);
        let out = arena
            .warm_start(&mut g, s, t, &mut state, &[(bottleneck, 0)], &Unmetered)
            .unwrap();
        assert!(
            out.fell_back,
            "draining {k} unit paths must exhaust the fuel fraction"
        );
        assert_matches_cold(&g, s, t, &state);
        assert_eq!(state.value(), 0);
    }

    #[test]
    fn outer_interruption_propagates() {
        struct Never;
        impl Ticker for Never {
            fn tick(&self, _n: u64) -> bool {
                false
            }
        }
        let mut g = diamond();
        let mut arena = DinicArena::new();
        let mut state: ResidualState = arena.max_flow(&g, 0, 5, &Unmetered).unwrap().into();
        let r = arena.warm_start(&mut g, 0, 5, &mut state, &[(0, 1)], &Never);
        assert!(matches!(r, Err(Interrupted { .. })));
    }

    #[test]
    fn increase_reaugments() {
        // s → a → t with a tight middle edge: raising it raises the flow.
        let mut g = FlowGraph::with_nodes(3);
        g.add_edge(0, 1, 10);
        let mid = g.add_edge(1, 2, 2);
        let mut arena = DinicArena::new();
        let mut state: ResidualState = arena.max_flow(&g, 0, 2, &Unmetered).unwrap().into();
        assert_eq!(state.value(), 2);
        let out = arena
            .warm_start(&mut g, 0, 2, &mut state, &[(mid, 7)], &Unmetered)
            .unwrap();
        assert!(!out.fell_back);
        assert_eq!(state.value(), 7);
        assert_matches_cold(&g, 0, 2, &state);
    }
}
