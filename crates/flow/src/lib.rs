#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! # qbdp-flow — max-flow / min-cut, from scratch
//!
//! Step 4 of the paper's GChQ pricing algorithm reduces price computation to
//! **Min-Cut** in a weighted directed graph ("which is the dual of the
//! Max-Flow problem", §3.1). This crate provides:
//!
//! * [`graph::FlowGraph`] — a compact directed graph with `u64` capacities
//!   and an [`graph::INF`] sentinel for uncuttable edges,
//! * [`dinic()`](fn@crate::dinic) — Dinic's algorithm (BFS level graph + blocking flow),
//!   `O(V²E)` worst case and much faster on the unit-ish graphs produced by
//!   the pricing reduction,
//! * [`edmonds_karp()`](fn@crate::edmonds_karp) — the textbook BFS augmenting-path algorithm, kept as
//!   an independently-implemented baseline for cross-validation and for the
//!   `flow_ablation` benchmark,
//! * [`graph::MaxFlowResult::min_cut_edges`] — extraction of a minimum cut
//!   from the residual network (the cut is what the pricing algorithm
//!   actually returns: the set of views the savvy buyer purchases),
//! * [`meter::Ticker`] + the `*_metered` entry points — cooperative work
//!   metering so the pricing layer can run flows under deadlines and
//!   budgets, recovering the partial flow value (a sound lower bound on
//!   the cut) when interrupted,
//! * [`arena::DinicArena`] — a reusable, `Ticker`-aware solver arena that
//!   amortizes the scratch-buffer allocations across many runs; batch
//!   pricing keeps one arena per worker thread,
//! * [`residual::ResidualState`] + [`arena::DinicArena::warm_start`] —
//!   incremental re-solving: persist the final flow of a solve and repair
//!   it after edge-capacity changes instead of recomputing from zero, with
//!   a metered fallback to a cold solve when the repair exceeds its fuel
//!   fraction.

pub mod arena;
pub mod dinic;
pub mod edmonds_karp;
pub mod graph;
pub mod meter;
pub mod residual;

pub use arena::DinicArena;
pub use dinic::{dinic, dinic_metered};
pub use edmonds_karp::{edmonds_karp, edmonds_karp_metered};
pub use graph::{EdgeId, FlowGraph, MaxFlowResult, NodeId, INF};
pub use meter::{Interrupted, Ticker, Unmetered};
pub use residual::{warm_fuel_phases, ResidualState, WarmOutcome};
