//! The flow network representation shared by both solvers.

/// Node handle (dense index).
pub type NodeId = usize;

/// Edge handle: index of the *forward* edge as returned by
/// [`FlowGraph::add_edge`]. Internally edge `e` and its residual twin `e^1`
/// are stored adjacently, so forward edges always have even indices.
pub type EdgeId = usize;

/// Effectively-infinite capacity. Chosen so that summing a graph's worth of
/// `INF` capacities cannot overflow `u64` (we also use saturating adds).
/// Edges with capacity ≥ `INF` are never part of a reported minimum cut.
pub const INF: u64 = u64::MAX / 16;

/// A directed flow network with `u64` capacities.
///
/// Built once, then solved by [`crate::dinic()`](fn@crate::dinic) or [`crate::edmonds_karp()`](fn@crate::edmonds_karp);
/// solving does not mutate the graph (the solver owns its residual state in
/// a [`MaxFlowResult`]), so one graph can be solved repeatedly, e.g. with
/// different source/sink choices.
#[derive(Clone, Debug, Default)]
pub struct FlowGraph {
    /// `to[e]` — head of edge `e` (twin edges adjacent: `e ^ 1` reverses).
    pub(crate) to: Vec<u32>,
    /// `cap[e]` — capacity of edge `e` (twin starts at 0).
    pub(crate) cap: Vec<u64>,
    /// `adj[v]` — incident edge ids (both directions).
    pub(crate) adj: Vec<Vec<u32>>,
}

impl FlowGraph {
    /// An empty network.
    pub fn new() -> Self {
        FlowGraph::default()
    }

    /// An empty network with `n` pre-allocated nodes.
    pub fn with_nodes(n: usize) -> Self {
        FlowGraph {
            to: Vec::new(),
            cap: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Add `n` nodes; returns the id of the first.
    pub fn add_nodes(&mut self, n: usize) -> NodeId {
        let first = self.adj.len();
        self.adj.resize(self.adj.len() + n, Vec::new());
        first
    }

    /// Add a directed edge `from → to` with the given capacity; returns the
    /// edge id usable with [`MaxFlowResult::min_cut_edges`] and
    /// [`FlowGraph::edge`].
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, capacity: u64) -> EdgeId {
        assert!(
            from < self.adj.len() && to < self.adj.len(),
            "node out of range"
        );
        let e = self.to.len();
        self.to.push(to as u32);
        self.cap.push(capacity);
        self.to.push(from as u32);
        self.cap.push(0);
        self.adj[from].push(e as u32);
        self.adj[to].push((e + 1) as u32);
        e
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of (forward) edges.
    pub fn num_edges(&self) -> usize {
        self.to.len() / 2
    }

    /// Endpoints and capacity of a forward edge: `(from, to, capacity)`.
    pub fn edge(&self, e: EdgeId) -> (NodeId, NodeId, u64) {
        debug_assert!(e.is_multiple_of(2), "edge ids are even (forward edges)");
        (self.to[e ^ 1] as usize, self.to[e] as usize, self.cap[e])
    }

    /// Replace the capacity of forward edge `e`, returning the old
    /// capacity. Any [`MaxFlowResult`] computed before the change no
    /// longer describes a flow of this graph; a
    /// [`crate::residual::ResidualState`] can be *repaired* instead via
    /// [`crate::DinicArena::warm_start`].
    pub fn set_capacity(&mut self, e: EdgeId, capacity: u64) -> u64 {
        debug_assert!(e.is_multiple_of(2), "edge ids are even (forward edges)");
        std::mem::replace(&mut self.cap[e], capacity)
    }
}

/// Nodes reachable from `s` along positive-residual edges — the source
/// side of the *canonical* minimum cut. For **any** maximum flow this set
/// is the same (it is the minimal source side), which is what makes
/// warm-started and cold-started solves agree edge-for-edge on the cut.
pub(crate) fn residual_source_side(g: &FlowGraph, residual: &[u64], s: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.num_nodes()];
    let mut stack = vec![s];
    seen[s] = true;
    // audit: bounded(residual DFS visits each node once; cut extraction runs once per priced flow)
    while let Some(v) = stack.pop() {
        // audit: bounded(adjacency scan within the single residual DFS)
        for &e in &g.adj[v] {
            let e = e as usize;
            if residual[e] > 0 {
                let w = g.to[e] as usize;
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
    }
    seen
}

/// Saturated forward edges crossing from the canonical source side to the
/// sink side, in ascending edge-id order (deterministic).
pub(crate) fn residual_min_cut(g: &FlowGraph, residual: &[u64], s: NodeId) -> Vec<EdgeId> {
    let side = residual_source_side(g, residual, s);
    let mut cut = Vec::new();
    // audit: bounded(one pass over the edge list, once per priced flow)
    for e in (0..g.to.len()).step_by(2) {
        let from = g.to[e ^ 1] as usize;
        let to = g.to[e] as usize;
        if side[from] && !side[to] {
            cut.push(e);
        }
    }
    cut
}

/// The outcome of a max-flow computation: flow value plus the residual
/// capacities, from which minimum cuts are extracted.
#[derive(Clone, Debug)]
pub struct MaxFlowResult {
    /// The max-flow value == min-cut capacity (possibly ≥ [`INF`] when no
    /// finite cut exists).
    pub value: u64,
    /// Residual capacity per internal edge slot.
    pub(crate) residual: Vec<u64>,
}

impl MaxFlowResult {
    /// Flow pushed through forward edge `e`.
    pub fn flow_on(&self, g: &FlowGraph, e: EdgeId) -> u64 {
        g.cap[e] - self.residual[e]
    }

    /// Nodes reachable from `s` in the residual network (the source side of
    /// the canonical minimum cut).
    pub fn source_side(&self, g: &FlowGraph, s: NodeId) -> Vec<bool> {
        residual_source_side(g, &self.residual, s)
    }

    /// The edges of the canonical minimum cut: saturated forward edges from
    /// the source side to the sink side. Their capacities sum to `value`
    /// whenever a finite cut exists.
    pub fn min_cut_edges(&self, g: &FlowGraph, s: NodeId) -> Vec<EdgeId> {
        residual_min_cut(g, &self.residual, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut g = FlowGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let e = g.add_edge(a, b, 7);
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge(e), (a, b, 7));
        let first = g.add_nodes(3);
        assert_eq!(first, 2);
        assert_eq!(g.num_nodes(), 5);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn edge_to_missing_node_panics() {
        let mut g = FlowGraph::new();
        let a = g.add_node();
        g.add_edge(a, 5, 1);
    }
}
