//! Edmonds–Karp max-flow: BFS shortest augmenting paths.
//!
//! Independently implemented from [`crate::dinic()`](fn@crate::dinic) so the two can
//! cross-validate each other in property tests, and benchmarked against it
//! in the `flow_ablation` experiment (E12).

use crate::graph::{FlowGraph, MaxFlowResult, NodeId};
use crate::meter::{Interrupted, Ticker, Unmetered};

/// Compute the maximum `s`–`t` flow with the Edmonds–Karp algorithm
/// (`O(V·E²)`).
pub fn edmonds_karp(g: &FlowGraph, s: NodeId, t: NodeId) -> MaxFlowResult {
    match edmonds_karp_metered(g, s, t, &Unmetered) {
        Ok(r) => r,
        Err(_) => unreachable!("Unmetered never interrupts"),
    }
}

/// [`edmonds_karp`] under a cooperative [`Ticker`]: each BFS round charges
/// `V + E` units. On interruption the error reports the flow pushed so far
/// (a lower bound on the max flow).
pub fn edmonds_karp_metered(
    g: &FlowGraph,
    s: NodeId,
    t: NodeId,
    ticker: &impl Ticker,
) -> Result<MaxFlowResult, Interrupted> {
    assert_ne!(s, t, "source and sink must differ");
    let n = g.num_nodes();
    let round_cost = (n + g.num_edges()) as u64;
    let mut residual = g.cap.clone();
    let mut parent_edge: Vec<u32> = vec![u32::MAX; n];
    let mut queue: Vec<usize> = Vec::with_capacity(n);
    let mut value: u64 = 0;

    loop {
        if !ticker.tick(round_cost) {
            return Err(Interrupted {
                partial_value: value,
            });
        }
        // BFS for an augmenting path.
        parent_edge.fill(u32::MAX);
        queue.clear();
        queue.push(s);
        let mut head = 0;
        let mut found = false;
        // audit: bounded(one BFS pass, pre-charged by tick(round_cost = n + m) above)
        'bfs: while head < queue.len() {
            let v = queue[head];
            head += 1;
            // audit: bounded(adjacency scan within the pre-charged BFS pass)
            for &e in &g.adj[v] {
                let e = e as usize;
                let w = g.to[e] as usize;
                if residual[e] > 0 && parent_edge[w] == u32::MAX && w != s {
                    parent_edge[w] = e as u32;
                    if w == t {
                        found = true;
                        break 'bfs;
                    }
                    queue.push(w);
                }
            }
        }
        if !found {
            break;
        }
        // Bottleneck along the path.
        let mut bottleneck = u64::MAX;
        let mut v = t;
        // audit: bounded(walks one augmenting path, length < n, within the charged round)
        while v != s {
            let e = parent_edge[v] as usize;
            bottleneck = bottleneck.min(residual[e]);
            v = g.to[e ^ 1] as usize;
        }
        // Augment.
        let mut v = t;
        // audit: bounded(walks one augmenting path, length < n, within the charged round)
        while v != s {
            let e = parent_edge[v] as usize;
            residual[e] -= bottleneck;
            residual[e ^ 1] = residual[e ^ 1].saturating_add(bottleneck);
            v = g.to[e ^ 1] as usize;
        }
        value = value.saturating_add(bottleneck);
    }
    Ok(MaxFlowResult { value, residual })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic::dinic;
    use crate::graph::INF;

    #[test]
    fn agrees_with_dinic_on_textbook() {
        let mut g = FlowGraph::with_nodes(6);
        let (s, a, b, c, d, t) = (0, 1, 2, 3, 4, 5);
        g.add_edge(s, a, 16);
        g.add_edge(s, b, 13);
        g.add_edge(a, b, 10);
        g.add_edge(b, a, 4);
        g.add_edge(a, c, 12);
        g.add_edge(b, d, 14);
        g.add_edge(c, b, 9);
        g.add_edge(d, c, 7);
        g.add_edge(c, t, 20);
        g.add_edge(d, t, 4);
        assert_eq!(edmonds_karp(&g, s, t).value, 23);
        assert_eq!(edmonds_karp(&g, s, t).value, dinic(&g, s, t).value);
    }

    #[test]
    fn random_graphs_agree_with_dinic() {
        // Deterministic xorshift so the test is reproducible without rand.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..50 {
            let n = 4 + (next() % 10) as usize;
            let m = 2 * n + (next() % (3 * n as u64)) as usize;
            let mut g = FlowGraph::with_nodes(n);
            for _ in 0..m {
                let u = (next() % n as u64) as usize;
                let v = (next() % n as u64) as usize;
                if u == v {
                    continue;
                }
                let cap = if next() % 8 == 0 { INF } else { next() % 50 };
                g.add_edge(u, v, cap);
            }
            let d = dinic(&g, 0, n - 1);
            let ek = edmonds_karp(&g, 0, n - 1);
            assert_eq!(d.value, ek.value, "case {case}: dinic vs edmonds-karp");
            // Cut weight == flow value when finite.
            if d.value < INF {
                let w: u64 = d.min_cut_edges(&g, 0).iter().map(|&e| g.edge(e).2).sum();
                assert_eq!(w, d.value, "case {case}: cut weight");
                // Removing the cut disconnects t from s.
                let side = d.source_side(&g, 0);
                assert!(side[0]);
                assert!(!side[n - 1]);
            }
        }
    }
}
