//! Golden-diagnostic tests: every fixture under `tests/fixtures/` is a
//! deliberately violating snippet for one rule, with `//~ R#` markers
//! naming the line and rule of each diagnostic the auditor must emit —
//! no more, no fewer. The fixtures directory is excluded from workspace
//! discovery (`source::discover` skips `fixtures/`), so the snippets
//! never pollute a real audit run.

use qbdp_audit::model::FileModel;
use qbdp_audit::rules::run_all;
use qbdp_audit::source::classify;
use qbdp_audit::{Config, Workspace};

/// Audit one fixture under a virtual workspace path (fixtures borrow
/// the path of the subsystem whose rules they violate, since several
/// rules are path-scoped) and compare diagnostics against the markers.
fn check_fixture(fixture: &str, virtual_path: &str) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let text = std::fs::read_to_string(format!("{dir}/{fixture}")).expect("fixture readable");
    let mut expected: Vec<(u32, String)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(pos) = line.find("//~ ") {
            expected.push((i as u32 + 1, line[pos + 4..].trim().to_string()));
        }
    }
    assert!(!expected.is_empty(), "{fixture} carries no //~ markers");
    let ws = Workspace::new(vec![FileModel::build(
        virtual_path,
        classify(virtual_path),
        &text,
    )]);
    let got: Vec<(u32, String)> = run_all(&ws, &Config::workspace_defaults())
        .into_iter()
        .map(|d| (d.line, d.rule.to_string()))
        .collect();
    assert_eq!(
        got, expected,
        "{fixture}: diagnostics (left) must match the //~ markers (right)"
    );
}

#[test]
fn r1_unchecked_money_arithmetic_fires() {
    check_fixture("r1.rs", "crates/market/src/fixture_r1.rs");
}

#[test]
fn r2_unwrap_on_the_serving_path_fires() {
    check_fixture("r2.rs", "crates/market/src/fixture_r2.rs");
}

#[test]
fn r3_lock_discipline_fires() {
    check_fixture("r3.rs", "crates/market/src/fixture_r3.rs");
}

#[test]
fn r4_unmetered_hot_loop_fires() {
    check_fixture("r4.rs", "crates/core/src/exact/fixture_r4.rs");
}

#[test]
fn r5_undocumented_unsafe_fires() {
    check_fixture("r5.rs", "crates/market/src/fixture_r5.rs");
}

#[test]
fn r6_blocking_record_path_fires() {
    check_fixture("r6.rs", "crates/obs/src/fixture_r6.rs");
}

#[test]
fn r7_lock_order_cycles_fire() {
    check_fixture("r7.rs", "crates/market/src/fixture_r7.rs");
}

#[test]
fn r8_discarded_transient_results_fire() {
    check_fixture("r8.rs", "crates/market/src/fixture_r8.rs");
}

#[test]
fn r9_reachable_panics_fire() {
    check_fixture("r9.rs", "crates/market/src/fixture_r9.rs");
}

#[test]
fn r3_sees_through_use_renames() {
    check_fixture("r3_alias.rs", "crates/market/src/fixture_r3_alias.rs");
}
