//! R8 golden fixture: transient-error taint discarded on the serving
//! path. Never compiled — tests/golden.rs feeds it to the auditor under
//! the virtual path `crates/market/src/…` (a configured transient
//! path).

// The producer: its body constructs the Transient variant.
fn flaky_write(&self) -> Result<(), StoreError> {
    Err(StoreError::Transient { op, path, source })
}

// Propagates the producer's Result via `?`: callers of persist are
// tainted transitively.
fn persist(&self) -> Result<(), StoreError> {
    self.flaky_write()?;
    Ok(())
}

// Every discard shape, on the direct producer and through one hop.
fn ignore_direct(&self) {
    let _ = self.flaky_write(); //~ R8
}

fn ignore_transitive(&self) {
    self.persist(); //~ R8
    self.persist().ok(); //~ R8
}

// Handling the fault locally is the point of the taint stopping here:
// recover's own callers see no Transient, so discarding recover() is
// clean.
fn recover(&self) -> bool {
    match self.flaky_write() { Ok(()) => true, Err(_) => false }
}

fn reopen(&self) {
    self.recover();
}

// A deliberate, documented discard.
fn warm(&self) {
    // audit: allow(R8: best-effort cache warm — failure is a cold start)
    let _ = self.flaky_write();
}
