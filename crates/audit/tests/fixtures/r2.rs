//! R2 golden fixture: `unwrap()` on the serving path.
//! Never compiled — tests/golden.rs feeds it to the auditor and the
//! trailing rule markers name the diagnostics it must produce.

fn first_sale(sales: &[u64]) -> u64 {
    sales.first().copied().unwrap() //~ R2
}
