//! R3 golden fixture: lock-discipline violations.
//! Never compiled — tests/golden.rs feeds it to the auditor (under the
//! virtual path `crates/market/src/…`, where the lock rules bind) and
//! the trailing rule markers name the diagnostics it must produce.

// audit: holds-lock(wal)
fn flush_with_quote(&self) {
    let wal = self.wal.lock();
    self.market.quote_str(query); //~ R3
}

fn peek(&self) { let guard = self.inner.lock(); } //~ R3
