//! R9 golden fixture: panic reachability from serving entries. Never
//! compiled — tests/golden.rs feeds it to the auditor under the virtual
//! path `crates/market/src/…`. The `allow(R2: …)` waivers below are the
//! *claims* R9 exists to check: R2 goes quiet, and R9 still reports the
//! site when a serving entry reaches it outside a containment frontier.

impl Market {
    // A serving entry (matches the configured `Market::quote*`): the
    // panic site two hops down is reported, anchored at the site.
    pub fn quote_str(&self) {
        self.lookup();
    }

    fn lookup(&self) {
        // audit: allow(R2: claimed unreachable — exactly what R9 checks)
        self.table.get(k).unwrap(); //~ R9
    }

    // Contained: the closure runs under `contain`'s catch_unwind, so
    // the same panic shape is fine here.
    pub fn quote_batch(&self) {
        contain(|| self.risky());
    }

    fn risky(&self) {
        // audit: allow(R2: contained at the market boundary)
        self.table.get(k).unwrap();
    }

    // Waived: a panic-ok frontier cuts the walk.
    pub fn quote_explain(&self) {
        self.render();
    }

    // audit: panic-ok(debug rendering, feeds the flight recorder only)
    fn render(&self) {
        // audit: allow(R2: see panic-ok above)
        panic!("render failure");
    }
}

// The containment wrapper: calls catch_unwind directly, so its argument
// list is a frontier for every caller.
fn contain(f: impl FnOnce()) {
    let _ = std::panic::catch_unwind(f);
}
