//! R6 fixture: every way the telemetry record path can stop being
//! wait-free. Audited under the virtual path
//! `crates/obs/src/fixture_r6.rs` so the record-prefix scope applies.

// A record point that skipped the annotation: the contract must be
// declared at the definition, not assumed from the name.
pub fn record_unannotated(c: Ctr) { //~ R6
    global().counter(c).add(1);
}

// Annotated, but takes the ring mutex directly on the hot path.
// audit: wait-free
pub fn record_direct(c: Ctr) {
    let ring = RING.lock(); //~ R6
    ring.push(c);
}

// Annotated and clean itself, but a helper it calls acquires a shard
// lock — the walk reports the path record_transitive -> stash.
// audit: wait-free
pub fn record_transitive(c: Ctr) {
    stash(c); //~ R6
}

fn stash(c: Ctr) {
    let mut buf = BUF.write();
    buf.push(c);
}
