//! R1 golden fixture: raw arithmetic on a money-tainted operand.
//! Never compiled — tests/golden.rs feeds it to the auditor and the
//! trailing rule markers name the diagnostics it must produce.

fn owed(price_cents: u64, fee_cents: u64) -> u64 {
    price_cents + fee_cents //~ R1
}
