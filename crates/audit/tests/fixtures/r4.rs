//! R4 golden fixture: an unmetered loop on a pricing hot path.
//! Never compiled — tests/golden.rs feeds it to the auditor (under the
//! virtual path `crates/core/src/exact/…`, a metered path) and the
//! trailing rule markers name the diagnostics it must produce.

fn scan_candidates(items: &[u64]) -> u64 {
    let mut best = 0;
    for it in items { //~ R4
        best = best.max(*it);
    }
    best
}
