//! R5 golden fixture: an `unsafe` block without a `// SAFETY:` comment.
//! Never compiled — tests/golden.rs feeds it to the auditor and the
//! trailing rule markers name the diagnostics it must produce.

fn read_raw(p: *const u8) -> u8 {
    unsafe { *p } //~ R5
}
