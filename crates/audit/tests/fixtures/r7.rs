//! R7 golden fixture: lock-order cycles.
//! Never compiled — tests/golden.rs feeds it to the auditor (under the
//! virtual path `crates/market/src/…`, where the lock rules bind) and
//! the trailing rule markers name the diagnostics it must produce.
//! Each cycle is reported once, anchored at the provenance of its
//! canonical first edge (smallest lock name first).

// A declaration that nothing contradicts: no diagnostic by itself.
// audit: lock-order(wal < health)

// Derives wal -> health: fine, it agrees with the declaration.
// audit: holds-lock(wal)
fn purchase(&self) {
    let w = self.wal.lock();
    self.refresh_health();
}

// audit: holds-lock(health)
fn refresh_health(&self) {
    let h = self.health.write();
}

// Derives health -> wal: closes the cycle. Canonical rotation starts at
// `health`, so the report anchors here, at the call that takes the WAL
// while health is held.
// audit: holds-lock(health)
fn degrade(&self) {
    let h = self.health.write();
    self.log_event(); //~ R7
}

// audit: holds-lock(wal)
fn log_event(&self) {
    let w = self.wal.lock();
}

// A second, disjoint cycle through the plan/state pair, two hops long.
// audit: holds-lock(plan)
fn reprice(&self) {
    let p = self.plan.lock();
    self.touch_state(); //~ R7
}

// audit: holds-lock(state)
fn touch_state(&self) {
    let s = self.state.write();
    self.replan();
}

// audit: holds-lock(plan)
fn replan(&self) {
    let p = self.plan.lock();
}
