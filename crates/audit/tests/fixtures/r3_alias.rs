//! Use-rename regression fixture: the under-lock call reaches the
//! pricing engine through a `use … as` alias. Earlier revisions of
//! R3 matched raw call names and missed exactly this; resolution now
//! passes through the file's alias table (see `FileModel::unalias`).

use qbdp_core::price_cq as priced;

// audit: holds-lock(wal)
fn flush(&self) {
    let wal = self.wal.lock();
    priced(q); //~ R3
}
