//! Workspace discovery: which `.rs` files are audited, and under which
//! policy class.

use std::path::{Path, PathBuf};

/// The policy class of a source file, decided by its path.
///
/// * `Library` — serving-path code: every rule at full strength.
/// * `Harness` — measurement binaries and examples (`crates/bench`,
///   `examples/`): R2 permits `expect("context")` (a harness is allowed
///   to abort loudly with a message) but still bans bare `unwrap()` and
///   `panic!`.
/// * `TestCode` — integration tests and benches (`tests/`, `benches/`
///   directories): exempt from R1, R2, and R4; R5 still applies.
///
/// In-file `#[cfg(test)]` / `#[test]` regions get `TestCode` treatment
/// regardless of file class — that is tracked by the
/// [`FileModel`](crate::model::FileModel), not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Serving-path code: every rule at full strength.
    Library,
    /// Measurement/demo binaries: `expect` with a message allowed.
    Harness,
    /// Test code: exempt from R1/R2/R4.
    TestCode,
}

/// The short crate name a workspace-relative path belongs to:
/// `crates/<name>/…` → `<name>`, everything else (the root facade,
/// `src/`, `examples/`) → `root`. R3 uses this to keep name-level call
/// resolution honest about dependency direction.
pub fn crate_of(rel_path: &str) -> &str {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("root")
}

/// Classify a workspace-relative path.
pub fn classify(rel_path: &str) -> FileClass {
    let components: Vec<&str> = rel_path.split('/').collect();
    if components.iter().any(|c| *c == "tests" || *c == "benches") {
        return FileClass::TestCode;
    }
    if rel_path.starts_with("crates/bench/") || components.first() == Some(&"examples") {
        return FileClass::Harness;
    }
    FileClass::Library
}

/// Directories never descended into. `vendor/` holds offline stand-ins
/// for external crates (not this project's code); `fixtures/` holds the
/// auditor's own deliberately-violating golden snippets.
const SKIP_DIRS: &[&str] = &[
    "target",
    "vendor",
    ".git",
    "fixtures",
    "data",
    "node_modules",
];

/// Recursively collect workspace-relative paths of every audited `.rs`
/// file under `root`, sorted for deterministic output.
pub fn discover(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Locate the workspace root: `--root` if given, else walk up from the
/// current directory to the first directory holding both a `Cargo.toml`
/// and a `crates/` subdirectory.
pub fn find_root(explicit: Option<&Path>) -> Option<PathBuf> {
    if let Some(p) = explicit {
        return Some(p.to_path_buf());
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("crates/core/src/money.rs"), FileClass::Library);
        assert_eq!(classify("src/cli.rs"), FileClass::Library);
        assert_eq!(
            classify("crates/market/tests/concurrent.rs"),
            FileClass::TestCode
        );
        assert_eq!(classify("tests/governance.rs"), FileClass::TestCode);
        assert_eq!(
            classify("crates/bench/benches/cycle.rs"),
            FileClass::TestCode
        );
        assert_eq!(
            classify("crates/bench/src/bin/experiments.rs"),
            FileClass::Harness
        );
        assert_eq!(classify("examples/web_crawl.rs"), FileClass::Harness);
    }
}
