//! The workspace call graph: every call site resolved to the set of
//! in-workspace fns it may invoke.
//!
//! Resolution is a *sound over-approximation* built from the syntactic
//! evidence the [`model`](crate::model) scanner records — no types, no
//! trait solving. The candidate set for a call starts as every
//! same-named library fn in the caller's crate dependency closure
//! (name-level matching, dependency-direction honest, exactly the
//! filter R3/R6 each reimplemented before this module existed), and is
//! then **narrowed, never widened**, on strong evidence only:
//!
//! * **typed receivers** — when the receiver's type is syntactically
//!   evident (`self.f()` via the enclosing impl; `self.field.f()` via
//!   the struct field table; `x.f()` via a typed param or inferable
//!   `let`), the candidate set is *exactly* the fns of that type: its
//!   inherent/trait-impl methods plus default bodies of traits it
//!   implements. A known type with no matching method means the call is
//!   std/derive surface (`.clone()`, `HashMap::insert`) — **no
//!   fallback**, the edge set is empty. A type from the configured
//!   foreign list (std containers, primitives) resolves to nothing
//!   outright. The workspace defines no `Deref` impls of its own, so
//!   method calls cannot secretly pass through to another workspace
//!   type (checked by `graph_is_identical_across_file_orderings`'s
//!   neighbors — revisit if one appears);
//! * `self.f()` inside `trait T`'s default body → candidates belonging
//!   to `T`, falling back to all when none match (the implementing
//!   type is unknowable);
//! * `Q::f()` → candidates whose `Self` type *or* trait is `Q` (after
//!   resolving `use .. as Q` renames) — a trait-qualified call fans
//!   out to all impls. When `Q` names no type, it is tried as a
//!   *module*: free fns in files named `Q.rs` (or directory `Q`, or
//!   crate `Q`/`qbdp_Q`) in the caller's dependency closure, so
//!   `json::quote(..)` resolves to the serializer, not the market;
//! * plain `f()` → candidates that are free fns, when any exist
//!   (inherent methods cannot be called bare, and associated fns
//!   cannot be `use`-imported);
//! * `recv.f()` with no receiver evidence (chains, call results,
//!   guards) → no narrowing: every candidate stays.
//!
//! Except for the typed-receiver rule, whenever the narrowed set would
//! be empty, resolution falls back to the full candidate set — an
//! imprecise edge is kept rather than a real one dropped. Free and
//! path call names pass through the file's `use`-rename table first,
//! so `use quote_str as qs; qs()` resolves to the real definition (the
//! bug that motivated unifying R3/R6 on this module).
//!
//! Determinism: [`Workspace::new`] sorts files by path, candidate lists
//! are traversed in (file, fn) index order, and target sets are sorted
//! — the graph and every walk over it are identical across runs and
//! input orderings (unit-tested in this module).

use crate::model::{Call, CallKind, FileModel, FnItem, Recv};
use crate::rules::{Config, Workspace};
use crate::source::{crate_of, FileClass};
use std::collections::{HashMap, HashSet};

/// The workspace type registry the typed-receiver narrowing consults.
struct TypeInfo {
    /// Every type/trait name defined in library code.
    names: HashSet<String>,
    /// (type, field) → declared base type; `None` marks a conflict
    /// between same-named structs (evidence too ambiguous to use).
    fields: HashMap<(String, String), Option<String>>,
    /// type → traits it implements (for reaching default bodies).
    traits_of: HashMap<String, HashSet<String>>,
    /// Configured non-workspace types (std containers, primitives).
    foreign: HashSet<String>,
}

impl TypeInfo {
    fn build(ws: &Workspace, config: &Config) -> TypeInfo {
        let mut names = HashSet::new();
        let mut fields: HashMap<(String, String), Option<String>> = HashMap::new();
        let mut traits_of: HashMap<String, HashSet<String>> = HashMap::new();
        for f in &ws.files {
            if f.class != FileClass::Library {
                continue;
            }
            names.extend(f.type_names.iter().cloned());
            for (ty, tr) in &f.impl_traits {
                traits_of.entry(ty.clone()).or_default().insert(tr.clone());
            }
            for (ty, flds) in &f.type_fields {
                for (fld, base) in flds {
                    fields
                        .entry((ty.clone(), fld.clone()))
                        .and_modify(|e| {
                            if e.as_deref() != Some(base.as_str()) {
                                *e = None;
                            }
                        })
                        .or_insert_with(|| Some(base.clone()));
                }
            }
        }
        TypeInfo {
            names,
            fields,
            traits_of,
            foreign: config.foreign_types.iter().cloned().collect(),
        }
    }
}

/// A fn's identity in the workspace: (file index, fn index) into
/// [`Workspace::files`].
pub type FnId = (usize, usize);

/// The resolved call graph over a [`Workspace`].
pub struct CallGraph {
    /// `targets[fi][gi][k]`: sorted, deduped [`FnId`]s the `k`-th call
    /// of fn `gi` in file `fi` may invoke. Parallel to
    /// `ws.files[fi].fns[gi].calls`.
    targets: Vec<Vec<Vec<Vec<FnId>>>>,
}

/// One call site reached during a [`CallGraph::walk`], with the
/// evidence a rule needs to report it.
pub struct Visit<'w, 'p> {
    /// The fn making this call.
    pub caller: FnId,
    /// The call site itself.
    pub call: &'w Call,
    /// Index of `call` in the caller's `calls` vector — pass to
    /// [`CallGraph::targets`] to see what it resolves to.
    pub call_idx: usize,
    /// Fn names from the walk origin to `caller`, inclusive — the
    /// witness path printed in diagnostics.
    pub path: &'p [String],
    /// Line of the origin call site in the fn the walk started from
    /// (where the diagnostic is anchored).
    pub origin_line: u32,
}

/// What a [`CallGraph::walk`] visitor wants done with a call site's
/// outgoing edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Follow the resolved targets of this call.
    Descend,
    /// Do not descend through this call (a finding was already
    /// reported here, or a frontier cuts the graph).
    Prune,
}

/// Paths longer than this are diagnosis noise, not evidence; the walk
/// stops descending (same bound the pre-callgraph BFS used).
const MAX_PATH: usize = 24;

impl CallGraph {
    /// Resolve every call site in the workspace.
    pub fn build(ws: &Workspace, config: &Config) -> CallGraph {
        let closures = crate::rules::r3_locks::dep_closures(config);
        let info = TypeInfo::build(ws, config);
        let mut targets = Vec::with_capacity(ws.files.len());
        for f in &ws.files {
            let caller_crate = crate_of(&f.rel_path);
            let mut per_fn = Vec::with_capacity(f.fns.len());
            for g in &f.fns {
                let per_call = g
                    .calls
                    .iter()
                    .map(|c| resolve(ws, &closures, &info, f, caller_crate, g, c))
                    .collect();
                per_fn.push(per_call);
            }
            targets.push(per_fn);
        }
        CallGraph { targets }
    }

    /// The resolved targets of the `call_idx`-th call of `id`.
    pub fn targets(&self, id: FnId, call_idx: usize) -> &[FnId] {
        &self.targets[id.0][id.1][call_idx]
    }

    /// Breadth-first walk over resolved edges starting from `start`'s
    /// own call sites (those passing `enter`). `visit` runs on every
    /// call site reached — including `start`'s own — and decides
    /// whether to descend through it. Each fn is visited at most once;
    /// the witness path carries fn names from `start` to the current
    /// caller.
    pub fn walk<'w>(
        &self,
        ws: &'w Workspace,
        start: FnId,
        mut enter: impl FnMut(&Call) -> bool,
        mut visit: impl FnMut(&Visit<'w, '_>) -> Step,
    ) {
        let start_fn = &ws.files[start.0].fns[start.1];
        let mut visited: HashSet<FnId> = HashSet::new();
        visited.insert(start);
        // (fn to expand, path up to and including it, origin line)
        let mut queue: Vec<(FnId, Vec<String>, Option<u32>)> =
            vec![(start, vec![start_fn.name.clone()], None)];
        let mut qi = 0;
        while qi < queue.len() {
            let (id, path, origin) = queue[qi].clone();
            qi += 1;
            let g = &ws.files[id.0].fns[id.1];
            for (k, c) in g.calls.iter().enumerate() {
                if id == start && !enter(c) {
                    continue;
                }
                let origin_line = origin.unwrap_or(c.line);
                let v = Visit {
                    caller: id,
                    call: c,
                    call_idx: k,
                    path: &path,
                    origin_line,
                };
                if visit(&v) == Step::Prune || path.len() >= MAX_PATH {
                    continue;
                }
                for &t in self.targets(id, k) {
                    if visited.insert(t) {
                        let mut next = path.clone();
                        next.push(ws.files[t.0].fns[t.1].name.clone());
                        queue.push((t, next, Some(origin_line)));
                    }
                }
            }
        }
    }
}

/// Resolve one call site (see the module docs for the narrowing rules).
fn resolve(
    ws: &Workspace,
    closures: &HashMap<String, HashSet<String>>,
    info: &TypeInfo,
    f: &FileModel,
    caller_crate: &str,
    g: &FnItem,
    c: &Call,
) -> Vec<FnId> {
    // The definition name: free and path calls see `use`-renames, a
    // method name is never aliased.
    let def_name = match c.kind {
        CallKind::Method { .. } => c.name.as_str(),
        _ => f.unalias(&c.name),
    };
    let Some(defs) = ws.fn_index.get(def_name) else {
        return Vec::new();
    };
    let mut all: Vec<FnId> = Vec::new();
    for &(fi, gi) in defs {
        let callee = &ws.files[fi].fns[gi];
        let callee_crate = crate_of(&ws.files[fi].rel_path);
        if callee.is_test
            || ws.files[fi].class != FileClass::Library
            || !crate::rules::r3_locks::may_call(closures, caller_crate, callee_crate)
        {
            continue;
        }
        all.push((fi, gi));
    }
    let item = |&(fi, gi): &FnId| &ws.files[fi].fns[gi];
    // Methods callable on a receiver whose type `t` is known: inherent
    // and trait-impl methods of `t`, plus default bodies of `t`'s
    // traits, plus the trait's own surface when `t` *is* a trait
    // (`&dyn T` / `&impl T` receivers).
    let methods_of = |t: &str| -> Vec<FnId> {
        let traits = info.traits_of.get(t);
        all.iter()
            .filter(|id| {
                let it = item(id);
                it.self_ty.as_deref() == Some(t)
                    || it.in_trait.as_deref() == Some(t)
                    || it
                        .in_trait
                        .as_deref()
                        .is_some_and(|tr| traits.is_some_and(|ts| ts.contains(tr)))
            })
            .copied()
            .collect()
    };
    // The receiver's evident type, when the call has one.
    let recv_type: Option<String> = match &c.kind {
        CallKind::Method {
            recv: Recv::SelfDirect,
        } => g.self_ty.clone(),
        CallKind::Method {
            recv: Recv::SelfField(fld),
        } => g.self_ty.as_ref().and_then(|s| {
            info.fields
                .get(&(s.clone(), fld.clone()))
                .cloned()
                .flatten()
        }),
        CallKind::Method {
            recv: Recv::Ident(x),
        } => g.binding_types.get(x).cloned(),
        _ => None,
    };
    match recv_type.as_deref() {
        // A foreign receiver (std container, primitive): the method
        // lives outside the workspace. No edge, no fallback.
        Some(t) if info.foreign.contains(t) => return Vec::new(),
        // A workspace type: exactly its method surface. An empty set is
        // the std/derive surface (`.clone()`, guard methods) — still no
        // fallback: the type is known and defines no such fn.
        Some(t) if info.names.contains(t) => {
            return finish(ws, defs, methods_of(t));
        }
        // Unknown ident (generic param, foreign type not listed): no
        // evidence — fall through to the untyped rules.
        _ => {}
    }
    let narrowed: Vec<FnId> = match &c.kind {
        CallKind::Method {
            recv: Recv::SelfDirect,
        } => match (&g.self_ty, &g.in_trait) {
            // self_ty handled above unless the impl type is somehow
            // unregistered; fall back to the old narrowing then.
            (Some(s), _) => methods_of(s),
            (None, Some(t)) => all
                .iter()
                .filter(|id| item(id).in_trait.as_deref() == Some(t.as_str()))
                .copied()
                .collect(),
            (None, None) => Vec::new(),
        },
        CallKind::Path { qual: Some(q) } => {
            let q = f.unalias(q);
            let q = if q == "Self" {
                g.self_ty.as_deref().unwrap_or(q)
            } else {
                q
            };
            let typed: Vec<FnId> = all
                .iter()
                .filter(|id| {
                    let it = item(id);
                    it.self_ty.as_deref() == Some(q) || it.in_trait.as_deref() == Some(q)
                })
                .copied()
                .collect();
            if typed.is_empty() {
                // Not a type: try `q` as a module — free fns defined in
                // a file/directory/crate of that name.
                all.iter()
                    .filter(|id| {
                        let it = item(id);
                        it.self_ty.is_none()
                            && it.in_trait.is_none()
                            && module_matches(&ws.files[id.0].rel_path, q)
                    })
                    .copied()
                    .collect()
            } else {
                typed
            }
        }
        CallKind::Free => all
            .iter()
            .filter(|id| {
                let it = item(id);
                it.self_ty.is_none() && it.in_trait.is_none()
            })
            .copied()
            .collect(),
        CallKind::Method { .. } | CallKind::Path { qual: None } => Vec::new(),
    };
    let out = if narrowed.is_empty() { all } else { narrowed };
    finish(ws, defs, out)
}

/// Whether `rel_path` is plausibly the module `q` names: the file stem
/// (`json.rs` for `json::quote`), the parent directory (`exact/mod.rs`
/// for `exact::price`), or the crate (`qbdp_obs::record` → any file in
/// `crates/obs/`).
fn module_matches(rel_path: &str, q: &str) -> bool {
    let stem = std::path::Path::new(rel_path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("");
    let parent = std::path::Path::new(rel_path)
        .parent()
        .and_then(|p| p.file_name())
        .and_then(|s| s.to_str())
        .unwrap_or("");
    let krate = crate_of(rel_path);
    stem == q || parent == q || krate == q || q.strip_prefix("qbdp_") == Some(krate)
}

/// Apply the trait-declaration widening and canonicalize the edge set.
fn finish(ws: &Workspace, defs: &[(usize, usize)], mut out: Vec<FnId>) -> Vec<FnId> {
    let item = |&(fi, gi): &FnId| &ws.files[fi].fns[gi];
    // A target that is a bodiless trait declaration stands for every
    // impl: widen to the trait's whole edge set so dispatch through a
    // `&dyn T` or generic bound stays covered.
    let decl_traits: Vec<String> = out
        .iter()
        .filter(|id| item(id).body.is_none())
        .filter_map(|id| item(id).in_trait.clone())
        .collect();
    if !decl_traits.is_empty() {
        for &(fi, gi) in defs {
            let callee = &ws.files[fi].fns[gi];
            if callee.is_test || ws.files[fi].class != FileClass::Library {
                continue;
            }
            if callee
                .in_trait
                .as_deref()
                .is_some_and(|t| decl_traits.iter().any(|d| d == t))
            {
                out.push((fi, gi));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::new(
            files
                .iter()
                .map(|(p, s)| FileModel::build(p, crate::source::classify(p), s))
                .collect(),
        )
    }

    fn graph(w: &Workspace) -> CallGraph {
        CallGraph::build(w, &Config::workspace_defaults())
    }

    /// Every (caller qual_name, callee qual_name) edge, sorted — the
    /// canonical form the determinism tests compare.
    fn edge_list(w: &Workspace, g: &CallGraph) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for (fi, f) in w.files.iter().enumerate() {
            for (gi, item) in f.fns.iter().enumerate() {
                for k in 0..item.calls.len() {
                    for &(tf, tg) in g.targets((fi, gi), k) {
                        out.push((item.qual_name(), w.files[tf].fns[tg].qual_name()));
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn self_method_calls_narrow_to_the_impl() {
        let w = ws(&[(
            "crates/market/src/market.rs",
            "impl Market {\n    fn quote(&self) { self.helper(); }\n    fn helper(&self) {}\n}\n\
                 impl Other {\n    fn helper(&self) { bad(); }\n}\nfn bad() {}",
        )]);
        let g = graph(&w);
        let edges = edge_list(&w, &g);
        assert!(edges.contains(&("Market::quote".into(), "Market::helper".into())));
        assert!(
            !edges.contains(&("Market::quote".into(), "Other::helper".into())),
            "self.helper() must not resolve into an unrelated impl: {edges:?}"
        );
    }

    #[test]
    fn unknown_receivers_keep_every_candidate() {
        // `x` is a generic parameter: no type evidence, so both impls
        // stay as candidates.
        let w = ws(&[(
            "crates/market/src/market.rs",
            "impl A {\n    fn m(&self) {}\n}\nimpl B {\n    fn m(&self) {}\n}\n\
             fn f<X>(x: &X) { x.m(); }",
        )]);
        let g = graph(&w);
        let edges = edge_list(&w, &g);
        assert!(edges.contains(&("f".into(), "A::m".into())));
        assert!(edges.contains(&("f".into(), "B::m".into())));
    }

    #[test]
    fn typed_params_narrow_receivers_to_their_type() {
        let w = ws(&[(
            "crates/market/src/market.rs",
            "impl A {\n    fn m(&self) {}\n}\nimpl B {\n    fn m(&self) {}\n}\n\
             fn f(x: &A) { x.m(); }",
        )]);
        let g = graph(&w);
        let edges = edge_list(&w, &g);
        assert!(edges.contains(&("f".into(), "A::m".into())));
        assert!(
            !edges.contains(&("f".into(), "B::m".into())),
            "x: &A must not resolve into B: {edges:?}"
        );
    }

    #[test]
    fn typed_lets_and_struct_fields_narrow_receivers() {
        let w = ws(&[(
            "crates/market/src/market.rs",
            "struct Market {\n    wal: Wal,\n}\n\
             impl Wal {\n    fn append(&self) {}\n}\n\
             impl Journal {\n    fn append(&self) {}\n}\n\
             impl Market {\n    fn insert(&self) { self.wal.append(); }\n}\n\
             fn f() {\n    let w: Wal = mk();\n    w.append();\n}\nfn mk() {}",
        )]);
        let g = graph(&w);
        let edges = edge_list(&w, &g);
        assert!(edges.contains(&("Market::insert".into(), "Wal::append".into())));
        assert!(
            !edges.contains(&("Market::insert".into(), "Journal::append".into())),
            "self.wal is a Wal, not a Journal: {edges:?}"
        );
        assert!(edges.contains(&("f".into(), "Wal::append".into())));
        assert!(!edges.contains(&("f".into(), "Journal::append".into())));
    }

    #[test]
    fn foreign_receivers_resolve_to_nothing() {
        // `map` is a HashMap: its `.insert()` is std surface and must
        // not alias the workspace's `Market::insert`.
        let w = ws(&[(
            "crates/market/src/market.rs",
            "impl Market {\n    fn insert(&self) {}\n}\n\
             fn f(map: &mut HashMap) { map.insert(); }",
        )]);
        let g = graph(&w);
        let edges = edge_list(&w, &g);
        assert!(
            !edges.iter().any(|(c, _)| c == "f"),
            "HashMap::insert must not resolve into the workspace: {edges:?}"
        );
    }

    #[test]
    fn known_type_without_the_method_means_no_fallback() {
        // Wal has no `clear`; the call is derive/std surface, not the
        // unrelated Cache::clear.
        let w = ws(&[(
            "crates/market/src/market.rs",
            "impl Wal {\n    fn append(&self) {}\n}\n\
             impl Cache {\n    fn clear(&self) {}\n}\n\
             fn f(w: &Wal) { w.clear(); }",
        )]);
        let g = graph(&w);
        let edges = edge_list(&w, &g);
        assert!(
            !edges.contains(&("f".into(), "Cache::clear".into())),
            "a known type lacking the method must not fall back: {edges:?}"
        );
    }

    #[test]
    fn typed_receivers_reach_trait_default_bodies() {
        let w = ws(&[(
            "crates/market/src/market.rs",
            "trait Ops {\n    fn run(&self) { self.step(); }\n    fn step(&self);\n}\n\
             impl Ops for A {\n    fn step(&self) {}\n}\n\
             fn f(a: &A) { a.run(); }",
        )]);
        let g = graph(&w);
        let edges = edge_list(&w, &g);
        assert!(
            edges.contains(&("f".into(), "Ops::run".into())),
            "A implements Ops, so a.run() reaches the default body: {edges:?}"
        );
    }

    #[test]
    fn module_qualified_calls_resolve_to_the_module_file() {
        // `json::quote(..)` is the serializer free fn, not the market's
        // quote method — the artifact that motivated module narrowing.
        let w = ws(&[
            ("crates/serve/src/json.rs", "pub fn quote() {}"),
            (
                "crates/market/src/market.rs",
                "impl Market {\n    fn quote(&self) { lock_then_price(); }\n}\nfn lock_then_price() {}",
            ),
            (
                "crates/serve/src/server.rs",
                "fn handle() { json::quote(); }",
            ),
        ]);
        let g = graph(&w);
        let edges = edge_list(&w, &g);
        assert!(edges.contains(&("handle".into(), "quote".into())));
        assert!(
            !edges.contains(&("handle".into(), "Market::quote".into())),
            "json::quote must not resolve into Market: {edges:?}"
        );
    }

    #[test]
    fn path_calls_narrow_by_type_and_fan_out_over_trait_impls() {
        let w = ws(&[(
            "crates/market/src/market.rs",
            "impl Wal {\n    fn open() {}\n}\nimpl Cache {\n    fn open() {}\n}\n\
             trait Ops {\n    fn run(&self);\n}\n\
             impl Ops for A {\n    fn run(&self) {}\n}\n\
             impl Ops for B {\n    fn run(&self) {}\n}\n\
             fn f() { Wal::open(); }\nfn h(o: &dyn Ops) { Ops::run(o); }",
        )]);
        let g = graph(&w);
        let edges = edge_list(&w, &g);
        assert!(edges.contains(&("f".into(), "Wal::open".into())));
        assert!(!edges.contains(&("f".into(), "Cache::open".into())));
        // Trait-qualified dispatch covers every in-workspace impl.
        assert!(edges.contains(&("h".into(), "A::run".into())));
        assert!(edges.contains(&("h".into(), "B::run".into())));
    }

    #[test]
    fn free_calls_skip_methods_but_fall_back_when_nothing_matches() {
        let w = ws(&[(
            "crates/market/src/market.rs",
            "impl S {\n    fn helper(&self) {}\n}\nfn helper() {}\nfn f() { helper(); }\n\
             fn g() { only_method(); }\nimpl T {\n    fn only_method(&self) {}\n}",
        )]);
        let g = graph(&w);
        let edges = edge_list(&w, &g);
        assert!(edges.contains(&("f".into(), "helper".into())));
        assert!(!edges.contains(&("f".into(), "S::helper".into())));
        // No free candidate: keep the full set rather than dropping edges.
        assert!(edges.contains(&("g".into(), "T::only_method".into())));
    }

    #[test]
    fn use_renames_resolve_to_the_original_definition() {
        let w = ws(&[
            (
                "crates/market/src/a.rs",
                "use crate::b::quote_str as qs;\nfn f() { qs(); }",
            ),
            ("crates/market/src/b.rs", "fn quote_str() {}"),
        ]);
        let g = graph(&w);
        let edges = edge_list(&w, &g);
        assert!(
            edges.contains(&("f".into(), "quote_str".into())),
            "aliased free call must resolve through the rename: {edges:?}"
        );
    }

    #[test]
    fn dependency_direction_is_honored() {
        let w = ws(&[
            ("crates/obs/src/lib.rs", "fn f() { helper(); }"),
            ("crates/market/src/lib.rs", "fn helper() {}"),
        ]);
        let g = graph(&w);
        assert!(edge_list(&w, &g).is_empty(), "obs cannot call into market");
    }

    #[test]
    fn trait_declaration_edges_widen_to_all_impls() {
        let w = ws(&[(
            "crates/market/src/market.rs",
            "trait Ops {\n    fn run(&self);\n}\n\
             impl Ops for A {\n    fn run(&self) {}\n}\n\
             fn f(o: &impl Sized) { o.run(); }",
        )]);
        let g = graph(&w);
        let edges = edge_list(&w, &g);
        // The unqualified receiver keeps both the declaration and the
        // impl; the declaration widens to the impl set.
        assert!(edges.contains(&("f".into(), "A::run".into())));
    }

    #[test]
    fn graph_is_identical_across_file_orderings() {
        let files = [
            (
                "crates/market/src/market.rs",
                "impl Market {\n    fn quote(&self) { self.helper(); price_cq(); }\n    fn helper(&self) {}\n}",
            ),
            ("crates/core/src/pricer.rs", "fn price_cq() { inner(); }\nfn inner() {}"),
            ("crates/store/src/wal.rs", "impl Wal {\n    fn append(&self) { self.sync(); }\n    fn sync(&self) {}\n}"),
        ];
        let mut shuffled = files;
        shuffled.reverse();
        let (wa, wb) = (ws(&files), ws(&shuffled));
        let (ga, gb) = (graph(&wa), graph(&wb));
        assert_eq!(edge_list(&wa, &ga), edge_list(&wb, &gb));
        // And across repeated builds of the same input.
        assert_eq!(edge_list(&wa, &ga), edge_list(&wa, &graph(&wa)));
    }

    #[test]
    fn walk_reports_witness_paths_and_respects_prune() {
        let w = ws(&[(
            "crates/market/src/market.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() { target(); }\nfn target() {}",
        )]);
        let g = graph(&w);
        let a = (0usize, 0usize);
        let mut hits: Vec<(String, Vec<String>)> = Vec::new();
        g.walk(
            &w,
            a,
            |_| true,
            |v| {
                hits.push((v.call.name.clone(), v.path.to_vec()));
                Step::Descend
            },
        );
        assert!(hits.contains(&("target".into(), vec!["a".into(), "b".into(), "c".into()])));
        // Pruning at b() keeps the walk from ever reaching c's calls.
        let mut names: Vec<String> = Vec::new();
        g.walk(
            &w,
            a,
            |_| true,
            |v| {
                names.push(v.call.name.clone());
                Step::Prune
            },
        );
        assert_eq!(names, vec!["b".to_string()]);
    }
}
