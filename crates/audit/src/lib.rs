//! `qbdp-audit` — domain-invariant static analysis for the qbdp
//! workspace.
//!
//! The pricing papers this repo reproduces come with invariants the
//! type system cannot see: arbitrage-freedom is stated over exact
//! prices (so money arithmetic must not silently wrap), pricing is
//! worst-case exponential (so hot loops must burn [`Budget`] fuel and
//! locks must never be held across an engine call), and a pricing host
//! must degrade instead of abort. This crate enforces those invariants
//! offline, with no rustc plugin and no external dependencies: a
//! hand-rolled lexer ([`lexer`]), a structural scanner ([`model`]), a
//! workspace call graph ([`callgraph`]), and nine rule engines
//! ([`rules`]):
//!
//! * **R1** — no unchecked `+`/`-`/`*` on money-tainted operands.
//! * **R2** — no `unwrap`/`expect`/`panic!` in non-test code.
//! * **R3** — WAL and cache-shard locks never held across pricing
//!   (annotation-driven; see the `// audit:` grammar in [`annot`]).
//! * **R4** — every loop in the exact/determinacy/flow hot paths is
//!   fuel-metered or explicitly `bounded(..)`.
//! * **R5** — `unsafe` requires an adjacent `// SAFETY:` comment.
//! * **R6** — the telemetry record path (`qbdp-obs` `record*`) is
//!   annotated `wait-free` and reaches no lock acquisition.
//! * **R7** — the lock acquisition graph (declared orders, annotation
//!   order, and call-graph-derived held-while-acquiring edges) is
//!   acyclic.
//! * **R8** — a `Result` that can carry `StoreError::Transient` is
//!   never silently discarded on the serving path.
//! * **R9** — no panicking call is reachable from a serving entry
//!   point without `catch_unwind` containment or a `panic-ok` waiver.
//!
//! Run it with `cargo run -p qbdp-audit -- --deny-all`; the CI
//! `analysis` job gates on it (`--format json` and `--baseline` give
//! machine-readable, line-number-free findings — see [`report`]).
//! Approximations and their soundness arguments are documented in
//! DESIGN.md §5.
//!
//! [`Budget`]: https://docs.rs/qbdp-core

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod annot;
pub mod callgraph;
pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;
pub mod source;

pub use rules::{Config, Diagnostic, Workspace};

use model::FileModel;
use std::path::Path;

/// Audit every workspace source file under `root` with the given
/// config. Returns diagnostics sorted by (file, line, rule).
pub fn audit_root(root: &Path, config: &Config) -> std::io::Result<Vec<Diagnostic>> {
    Ok(audit_workspace(root, config)?.1)
}

/// Like [`audit_root`], but also returns the [`Workspace`] the
/// diagnostics were computed over — needed to attach stable symbols to
/// findings (see [`report::findings`]).
pub fn audit_workspace(
    root: &Path,
    config: &Config,
) -> std::io::Result<(Workspace, Vec<Diagnostic>)> {
    let rel_paths = source::discover(root)?;
    let mut files = Vec::with_capacity(rel_paths.len());
    for rel in rel_paths {
        let class = source::classify(&rel);
        let text = std::fs::read_to_string(root.join(&rel))?;
        files.push(FileModel::build(&rel, class, &text));
    }
    let ws = Workspace::new(files);
    let diags = rules::run_all(&ws, config);
    Ok((ws, diags))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole point: the workspace this crate lives in must be
    /// clean. (The golden fixtures proving each rule *fires* live in
    /// `tests/golden.rs`; `fixtures/` is excluded from discovery.)
    #[test]
    fn workspace_is_clean() {
        let Some(root) = source::find_root(None) else {
            return; // not running inside the workspace (e.g. vendored elsewhere)
        };
        let diags = audit_root(&root, &Config::workspace_defaults())
            .expect("workspace sources must be readable");
        assert!(
            diags.is_empty(),
            "audit violations in workspace:\n{}",
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
