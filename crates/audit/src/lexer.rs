//! A hand-rolled Rust lexer, just deep enough for static analysis.
//!
//! The auditor does not need a real parser: every rule it enforces is
//! expressible over a token stream with line numbers, provided the
//! stream is *honest* — comments, strings (including raw and byte
//! strings), char literals, and lifetimes must never be confused with
//! code. Those are exactly the places a regex-based scanner lies, and
//! the reason this module exists.
//!
//! Design choices:
//!
//! * Comments are **kept** as tokens: the annotation grammar
//!   (`// audit: ...`) and the R5 `// SAFETY:` requirement live in them.
//! * String/char contents are discarded (one [`Tok::Str`] token each);
//!   no rule looks inside a literal.
//! * Numbers are lexed loosely (`0xff_u64`, `1.5e-3`): rules only need
//!   to know "this is a literal operand", never its value.
//! * The lexer never fails. Unterminated constructs lex as a final
//!   token ending at EOF — the audited code is known to compile, and a
//!   fixture that does not is still scanned best-effort.

/// Kinds of token the scanner distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `price`, `r#type` — raw-ident
    /// prefix stripped).
    Ident(String),
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Numeric literal.
    Num,
    /// String, raw string, byte string, or char literal.
    Str,
    /// Single punctuation character (`+`, `{`, `.`, `#`, …).
    Punct(char),
    /// `// …` comment, text after the slashes (also `///`, `//!`).
    LineComment(String),
    /// `/* … */` comment (nesting handled), inner text.
    BlockComment(String),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.tok, Tok::LineComment(_) | Tok::BlockComment(_))
    }
}

/// Lex `source` into a token stream (comments included).
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.push(Token { tok, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_literal(line);
                }
                // Raw strings r"…", r#"…"#, br#"…"#; raw idents r#name.
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(line),
                'r' if self.peek(1) == Some('#') && self.is_ident_start(2) => {
                    // Raw identifier r#type: skip the prefix, lex the name.
                    self.bump();
                    self.bump();
                    self.ident(line);
                }
                '\'' => self.lifetime_or_char(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn is_ident_start(&self, ahead: usize) -> bool {
        matches!(self.peek(ahead), Some(c) if c.is_alphabetic() || c == '_')
    }

    /// Is the cursor at `r`/`b`/`br`/`rb` followed by `#…#"` or `"`,
    /// i.e. a raw-string opener?
    fn raw_string_ahead(&self) -> bool {
        let mut i = 0;
        // Up to two prefix letters (r, b, br, rb).
        while i < 2 && matches!(self.peek(i), Some('r') | Some('b')) {
            i += 1;
        }
        if i == 0 || !matches!(self.chars.get(self.pos), Some('r') | Some('b')) {
            return false;
        }
        // The prefix must actually contain an `r` to be raw.
        let prefix: Vec<char> = (0..i).filter_map(|k| self.peek(k)).collect();
        if !prefix.contains(&'r') {
            return false;
        }
        let mut j = i;
        while self.peek(j) == Some('#') {
            j += 1;
        }
        self.peek(j) == Some('"')
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Tok::LineComment(text), line);
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '/' && self.peek(0) == Some('*') {
                self.bump();
                depth += 1;
            } else if c == '*' && self.peek(0) == Some('/') {
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
            }
        }
        self.push(Tok::BlockComment(text), line);
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(Tok::Str, line);
    }

    fn raw_string(&mut self, line: u32) {
        // Consume prefix letters.
        while matches!(self.peek(0), Some('r') | Some('b')) {
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(Tok::Str, line);
    }

    fn char_literal(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(Tok::Str, line);
    }

    /// `'` starts either a lifetime (`'a`, `'static`) or a char literal
    /// (`'x'`, `'\n'`). A lifetime is `'` + ident **not** followed by a
    /// closing `'`.
    fn lifetime_or_char(&mut self, line: u32) {
        if self.is_ident_start(1) {
            // Scan the identifier; if it ends with `'`, it was a char
            // literal like 'a'.
            let mut j = 1;
            while matches!(self.peek(j), Some(c) if c.is_alphanumeric() || c == '_') {
                j += 1;
            }
            if self.peek(j) == Some('\'') {
                self.char_literal(line);
            } else {
                self.bump(); // the quote
                for _ in 1..j {
                    self.bump();
                }
                self.push(Tok::Lifetime, line);
            }
        } else {
            self.char_literal(line);
        }
    }

    fn number(&mut self, line: u32) {
        // Loose: digits, underscores, hex/bin letters, type suffixes,
        // one decimal point followed by a digit, exponent with sign.
        self.bump();
        loop {
            match self.peek(0) {
                Some(c) if c.is_ascii_alphanumeric() || c == '_' => {
                    let exp = c == 'e' || c == 'E';
                    self.bump();
                    // Exponent sign: `1e-5` — consume the sign so the
                    // `-` is not misread as an operator.
                    if exp
                        && matches!(self.peek(0), Some('+') | Some('-'))
                        && matches!(self.peek(1), Some(d) if d.is_ascii_digit())
                    {
                        self.bump();
                    }
                }
                // `1.5` but not `1..n` and not `1.method()`.
                Some('.') if matches!(self.peek(1), Some(d) if d.is_ascii_digit()) => {
                    self.bump();
                }
                _ => break,
            }
        }
        self.push(Tok::Num, line);
    }

    fn ident(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Ident(name), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a + b;");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x".into()),
                Tok::Punct('='),
                Tok::Ident("a".into()),
                Tok::Punct('+'),
                Tok::Ident("b".into()),
                Tok::Punct(';'),
            ]
        );
    }

    #[test]
    fn comments_are_kept_with_text() {
        let toks = lex("// audit: lock-free\nfn f() {}\n/* block */");
        assert_eq!(toks[0].tok, Tok::LineComment(" audit: lock-free".into()));
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert!(matches!(
            toks.last().map(|t| &t.tok),
            Some(Tok::BlockComment(_))
        ));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], Tok::Ident("x".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "a + b // not a comment";"#);
        assert!(toks.contains(&Tok::Str));
        assert!(!toks.iter().any(|t| matches!(t, Tok::LineComment(_))));
        assert!(!toks.contains(&Tok::Punct('+')));
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        let toks = kinds(r##"let s = r#"un"quoted + // stuff"#; let b = b"x"; let rb = br#"y"#;"##);
        assert_eq!(toks.iter().filter(|t| **t == Tok::Str).count(), 3);
        assert!(!toks.contains(&Tok::Punct('+')));
    }

    #[test]
    fn raw_idents() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&Tok::Ident("type".into())));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str, c: char) { let y = 'z'; let nl = '\\n'; }");
        assert_eq!(toks.iter().filter(|t| **t == Tok::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| **t == Tok::Str).count(), 2);
    }

    #[test]
    fn numbers_do_not_swallow_operators() {
        let toks = kinds("1..n");
        assert_eq!(
            toks,
            vec![
                Tok::Num,
                Tok::Punct('.'),
                Tok::Punct('.'),
                Tok::Ident("n".into())
            ]
        );
        let toks = kinds("1.5e-3 + 0xff_u64 * 2");
        assert_eq!(
            toks,
            vec![
                Tok::Num,
                Tok::Punct('+'),
                Tok::Num,
                Tok::Punct('*'),
                Tok::Num
            ]
        );
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let toks = lex("/* a\nb */\nfn f() {}\n\"s\ntring\"\nx");
        let x = toks.iter().find(|t| t.ident() == Some("x")).unwrap();
        assert_eq!(x.line, 6);
    }
}
