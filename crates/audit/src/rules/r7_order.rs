//! R7 — lock-order cycles: the acquisition graph over the workspace's
//! named locks must be acyclic.
//!
//! R3 keeps any one guarded lock from being held across pricing; R7
//! guards the *pairwise* discipline — two locks acquired in opposite
//! orders on two paths is a deadlock waiting for the right thread
//! interleaving (the WAL mutex vs. cache-shard vs. health ordering in
//! the durable market is exactly where one would hide). The graph has
//! an edge `L → M` ("L is held while M is acquired") from three
//! sources:
//!
//! * a `// audit: lock-order(a < b < c)` declaration — each adjacent
//!   pair is an explicit, intentional edge, so a contradicting derived
//!   edge elsewhere closes a cycle and gets reported;
//! * a fn annotated with several `holds-lock(..)` marks — annotation
//!   order is acquisition order (the workspace convention: annotations
//!   are listed in the order the guards are taken);
//! * interprocedurally: a fn holding `L` whose under-lock region
//!   reaches — over the resolved [`CallGraph`] — a fn that is both
//!   annotated `holds-lock(M)` **and** actually acquires (a detected
//!   `.lock()`/`.read()`/`.write()` site), for `L ≠ M`. The walk prunes
//!   at the acquiring fn: orders below `M` are `M`'s own edges, so
//!   transitive cycles still close through the graph.
//!
//! Self-edges are deliberately not recorded: the sharded cache takes
//! same-named `cache-shard` guards in index order, which is a
//! discipline this lock-name granularity cannot see (DESIGN §5).
//!
//! Every cycle is reported exactly once, in canonical rotation
//! (lexicographically smallest lock first), anchored at the provenance
//! of its first edge. Suppression: `// audit: allow(R7: why)` on the
//! holder fn skips its derived edges.

use crate::callgraph::{CallGraph, Step};
use crate::rules::{Config, Diagnostic, Workspace};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Where an edge came from: the anchor for the cycle diagnostic.
#[derive(Debug, Clone)]
struct Provenance {
    file: String,
    line: u32,
    note: String,
}

/// The acquisition graph: edge → first provenance seen (files are
/// sorted, so "first" is deterministic).
type LockGraph = BTreeMap<(String, String), Provenance>;

/// Run R7 over the workspace.
pub fn check(ws: &Workspace, graph: &CallGraph, config: &Config) -> Vec<Diagnostic> {
    let edges = build_lock_graph(ws, graph, config);
    report_cycles(&edges)
}

fn build_lock_graph(ws: &Workspace, graph: &CallGraph, _config: &Config) -> LockGraph {
    let mut edges: LockGraph = BTreeMap::new();
    let mut add = |from: &str, to: &str, p: Provenance| {
        if from != to {
            edges.entry((from.to_string(), to.to_string())).or_insert(p);
        }
    };

    for (fi, f) in ws.files.iter().enumerate() {
        // Declared orders.
        for (line, chain) in &f.lock_orders {
            for pair in chain.windows(2) {
                add(
                    &pair[0],
                    &pair[1],
                    Provenance {
                        file: f.rel_path.clone(),
                        line: *line,
                        note: format!("declared lock-order({})", chain.join(" < ")),
                    },
                );
            }
        }
        for (gi, g) in f.fns.iter().enumerate() {
            if g.is_test || f.allowed(g.line, "R7") {
                continue;
            }
            let held = g.held_locks();
            if held.is_empty() {
                continue;
            }
            // Multiple annotations on one fn: listed order is
            // acquisition order.
            for pair in held.windows(2) {
                add(
                    pair[0],
                    pair[1],
                    Provenance {
                        file: f.rel_path.clone(),
                        line: g.line,
                        note: format!("fn `{}` acquires both", g.name),
                    },
                );
            }
            // Interprocedural: the under-lock region reaching an
            // acquiring holder of another lock.
            let first_acquire = g.lock_acquires.first().map(|a| a.idx).unwrap_or(0);
            graph.walk(
                ws,
                (fi, gi),
                |c| c.idx >= first_acquire && !f.allowed(c.line, "R7"),
                |v| {
                    let mut acquired_here = false;
                    for &t in graph.targets(v.caller, v.call_idx) {
                        let callee = &ws.files[t.0].fns[t.1];
                        let callee_held = callee.held_locks();
                        if callee_held.is_empty() || callee.lock_acquires.is_empty() {
                            continue;
                        }
                        acquired_here = true;
                        let mut path = v.path.to_vec();
                        path.push(callee.name.clone());
                        for l in &held {
                            for m in &callee_held {
                                add(
                                    l,
                                    m,
                                    Provenance {
                                        file: f.rel_path.clone(),
                                        line: v.origin_line,
                                        note: format!(
                                            "fn `{}` holds `{l}` and reaches `{}` \
                                             (acquires `{m}`): {}",
                                            g.name,
                                            callee.name,
                                            path.join(" -> ")
                                        ),
                                    },
                                );
                            }
                        }
                    }
                    if acquired_here {
                        Step::Prune
                    } else {
                        Step::Descend
                    }
                },
            );
        }
    }
    edges
}

/// Find every distinct cycle (canonical rotation) and report it at its
/// first edge's provenance.
fn report_cycles(edges: &LockGraph) -> Vec<Diagnostic> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().insert(to);
    }
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut out = Vec::new();
    for (from, to) in edges.keys() {
        // An edge `from → to` closes a cycle iff `from` is reachable
        // back from `to`; BFS gives the shortest witness.
        let Some(back) = shortest_path(&adj, to, from) else {
            continue;
        };
        // Cycle nodes in order: from, to, …, back to from (implicit).
        let mut cycle: Vec<String> = vec![from.clone()];
        cycle.extend(back.into_iter().map(str::to_string));
        let canon = canonical_rotation(&cycle);
        if !seen.insert(canon.clone()) {
            continue;
        }
        let mut display = canon.clone();
        display.push(canon[0].clone());
        let notes: Vec<String> = display
            .windows(2)
            .filter_map(|w| edges.get(&(w[0].clone(), w[1].clone())))
            .map(|p| format!("{} ({}:{})", p.note, p.file, p.line))
            .collect();
        let anchor = &edges[&(canon[0].clone(), canon[1].clone())];
        out.push(Diagnostic {
            file: anchor.file.clone(),
            line: anchor.line,
            rule: "R7",
            message: format!(
                "potential deadlock: lock-order cycle {}; {}",
                display.join(" -> "),
                notes.join("; ")
            ),
        });
    }
    out
}

/// Shortest path `start → goal` over the adjacency map, returned as the
/// node sequence starting at `start` (excluding `goal`). `None` when
/// unreachable.
fn shortest_path<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    start: &'a str,
    goal: &str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    queue.push_back(start);
    prev.insert(start, start);
    while let Some(n) = queue.pop_front() {
        if n == goal {
            // Walk back to start, then reverse; drop the goal itself.
            let mut path = Vec::new();
            let mut cur = n;
            while cur != start {
                path.push(cur);
                cur = prev[cur];
            }
            path.push(start);
            path.reverse();
            path.pop();
            return Some(if path.is_empty() { vec![start] } else { path });
        }
        if let Some(nexts) = adj.get(n) {
            for &m in nexts {
                if !prev.contains_key(m) {
                    prev.insert(m, n);
                    queue.push_back(m);
                }
            }
        }
    }
    None
}

/// Rotate the cycle so the lexicographically smallest lock comes first
/// — one canonical spelling per cycle, whatever edge discovered it.
fn canonical_rotation(cycle: &[String]) -> Vec<String> {
    let min = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.as_str())
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = Vec::with_capacity(cycle.len());
    out.extend_from_slice(&cycle[min..]);
    out.extend_from_slice(&cycle[..min]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn diags(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::new(
            files
                .iter()
                .map(|(p, s)| FileModel::build(p, crate::source::classify(p), s))
                .collect(),
        );
        let config = Config::workspace_defaults();
        let graph = CallGraph::build(&ws, &config);
        check(&ws, &graph, &config)
    }

    #[test]
    fn opposite_acquisition_orders_are_a_cycle() {
        let d = diags(&[(
            "crates/market/src/durable.rs",
            "// audit: holds-lock(wal)\n\
             fn purchase(&self) {\n    let w = self.wal.lock();\n    self.refresh_health();\n}\n\
             // audit: holds-lock(health)\n\
             fn refresh_health(&self) {\n    let h = self.health.write();\n}\n\
             // audit: holds-lock(health)\n\
             fn degrade(&self) {\n    let h = self.health.write();\n    self.log_event();\n}\n\
             // audit: holds-lock(wal)\n\
             fn log_event(&self) {\n    let w = self.wal.lock();\n}",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("lock-order cycle"),
            "{}",
            d[0].message
        );
        assert!(
            d[0].message.contains("health -> wal -> health"),
            "canonical rotation starts at the smallest name: {}",
            d[0].message
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let d = diags(&[(
            "crates/market/src/durable.rs",
            "// audit: holds-lock(wal)\n\
             fn purchase(&self) {\n    let w = self.wal.lock();\n    self.refresh_health();\n}\n\
             // audit: holds-lock(health)\n\
             fn refresh_health(&self) {\n    let h = self.health.write();\n}\n\
             // audit: holds-lock(wal)\n\
             fn compact(&self) {\n    let w = self.wal.lock();\n    self.refresh_health();\n}",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn declared_order_conflicts_with_derived_edge() {
        let d = diags(&[(
            "crates/market/src/durable.rs",
            "// audit: lock-order(wal < health)\n\
             // audit: holds-lock(health)\n\
             fn degrade(&self) {\n    let h = self.health.write();\n    self.log_event();\n}\n\
             // audit: holds-lock(wal)\n\
             fn log_event(&self) {\n    let w = self.wal.lock();\n}",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("declared"), "{}", d[0].message);
    }

    #[test]
    fn multi_annotation_order_and_three_lock_cycle() {
        // a<b, b<c from annotations-in-order; c<a derived: cycle a,b,c.
        let d = diags(&[(
            "crates/market/src/durable.rs",
            "// audit: lock-order(alock < block)\n\
             // audit: lock-order(block < clock)\n\
             // audit: holds-lock(clock)\n\
             fn c_then_a(&self) {\n    let c = self.c.lock();\n    self.take_a();\n}\n\
             // audit: holds-lock(alock)\n\
             fn take_a(&self) {\n    let a = self.a.lock();\n}",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("alock -> block -> clock -> alock"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn self_edges_are_not_cycles() {
        // Sharded locks: a holder of cache-shard reaching another
        // cache-shard holder is index-ordered, not a deadlock R7 can
        // see; the self-edge is dropped.
        let d = diags(&[(
            "crates/market/src/cache.rs",
            "// audit: holds-lock(cache-shard)\n\
             fn invalidate_all(&self) {\n    let s = self.shards[0].write();\n    self.invalidate_one();\n}\n\
             // audit: holds-lock(cache-shard)\n\
             fn invalidate_one(&self) {\n    let s = self.shards[1].write();\n}",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn calls_before_the_acquisition_add_no_edge() {
        let d = diags(&[(
            "crates/market/src/durable.rs",
            "// audit: lock-order(wal < health)\n\
             // audit: holds-lock(health)\n\
             fn h(&self) {\n    self.take_wal();\n    let g = self.health.write();\n}\n\
             // audit: holds-lock(wal)\n\
             fn take_wal(&self) {\n    let w = self.wal.lock();\n}",
        )]);
        assert!(d.is_empty(), "wal taken before health, not under it: {d:?}");
    }

    #[test]
    fn allow_suppresses_derived_edges() {
        let d = diags(&[(
            "crates/market/src/durable.rs",
            "// audit: lock-order(wal < health)\n\
             // audit: allow(R7: guard dropped before the call, scanner cannot see it)\n\
             // audit: holds-lock(health)\n\
             fn degrade(&self) {\n    let h = self.health.write();\n    self.log_event();\n}\n\
             // audit: holds-lock(wal)\n\
             fn log_event(&self) {\n    let w = self.wal.lock();\n}",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cycles_are_reported_once_per_canonical_rotation() {
        // Both declaration files contribute the same two edges; the
        // cycle must come back exactly once.
        let d = diags(&[
            (
                "crates/market/src/a.rs",
                "// audit: lock-order(wal < health)\nfn x() {}",
            ),
            (
                "crates/market/src/b.rs",
                "// audit: lock-order(health < wal)\nfn y() {}",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
    }
}
