//! R3 — lock discipline: the WAL mutex and the cache-shard `RwLock`s
//! must never be held across a call into the pricing engines.
//!
//! Pricing is worst-case exponential (Theorem 3.5). A guard held across
//! it turns one expensive quote into a stall of every durable mutation
//! (WAL mutex) or every cache hit in a shard (shard lock). The
//! discipline is annotation-driven:
//!
//! * A fn that acquires or receives one of the guarded locks is marked
//!   `// audit: holds-lock(wal)` / `// audit: holds-lock(cache-shard)`.
//! * Pricing entry points are the configured name list plus any fn
//!   marked `// audit: pricing-entry`.
//! * The checker walks the call edges (name-level, see DESIGN §5 for
//!   the approximation) from every under-lock call site; reaching a
//!   pricing entry is a diagnostic, with the offending path printed.
//!
//! Within the annotated fn, only calls **after** the first lock
//! acquisition count as under-lock — lock-guard lifetimes in this
//! workspace are whole-scope (no mid-fn drops), so textual order is
//! acquisition order. A fn with the annotation but no acquisition
//! (it *receives* a guard) is under-lock for its whole body.
//!
//! Two companion checks keep the annotations honest:
//!
//! * `lock-free` fns (and everything they reach) must contain no lock
//!   acquisition at all;
//! * in `crates/market/src/` and `crates/store/src/`, any fn that
//!   acquires a lock (`.lock()`, zero-argument `.read()`/`.write()`)
//!   must carry a `holds-lock(..)` annotation — new lock users cannot
//!   silently opt out of the discipline.
//!
//! Both walks run over the resolved [`CallGraph`] (receiver-aware,
//! rename-aware, dependency-direction honest); reaching a *pricing
//! entry* still fires on the call-site name, so a call into an
//! annotated engine fires even when the engine fn itself is behind a
//! receiver the graph cannot resolve.

use crate::callgraph::{CallGraph, Step};
use crate::model::{FileModel, FnItem};
use crate::rules::{Config, Diagnostic, Workspace};
use std::collections::{HashMap, HashSet};

/// Transitive dependency closure per crate (each crate includes itself).
/// Crates absent from the configured edge table close over themselves
/// only, so an unknown crate's names never resolve outside it.
/// (Shared with R6, which runs the same dependency-honest call walk.)
pub(crate) fn dep_closures(config: &Config) -> HashMap<String, HashSet<String>> {
    let direct: HashMap<&str, &Vec<String>> = config
        .crate_deps
        .iter()
        .map(|(n, d)| (n.as_str(), d))
        .collect();
    let mut out = HashMap::new();
    for (name, _) in &config.crate_deps {
        let mut closure: HashSet<String> = HashSet::new();
        let mut stack = vec![name.as_str()];
        while let Some(c) = stack.pop() {
            if closure.insert(c.to_string()) {
                if let Some(deps) = direct.get(c) {
                    stack.extend(deps.iter().map(String::as_str));
                }
            }
        }
        out.insert(name.clone(), closure);
    }
    out
}

/// May a fn defined in `caller_crate` call into `callee_crate`?
pub(crate) fn may_call(
    closures: &HashMap<String, HashSet<String>>,
    caller_crate: &str,
    callee_crate: &str,
) -> bool {
    caller_crate == callee_crate
        || closures
            .get(caller_crate)
            .is_some_and(|c| c.contains(callee_crate))
}

/// Run R3 over the workspace.
pub fn check(ws: &Workspace, graph: &CallGraph, config: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let pricing = pricing_entry_names(ws, config);

    for (fi, f) in ws.files.iter().enumerate() {
        for (gi, g) in f.fns.iter().enumerate() {
            if g.is_test {
                continue;
            }
            // (a) guarded-lock holders must not reach pricing.
            if g.held_locks()
                .iter()
                .any(|l| config.guarded_locks.iter().any(|gl| gl == l))
            {
                check_no_pricing_reach(ws, graph, (fi, gi), f, g, &pricing, &mut out);
            }
            // (b) lock-free fns must not acquire or reach an acquire.
            if g.is_lock_free() {
                check_lock_free(ws, graph, (fi, gi), f, g, &mut out);
            }
            // (c) unannotated acquisitions in the lock-discipline paths.
            if config
                .lock_annotation_paths
                .iter()
                .any(|p| f.rel_path.starts_with(p))
                && !g.lock_acquires.is_empty()
                && g.held_locks().is_empty()
            {
                let a = &g.lock_acquires[0];
                if !f.allowed(a.line, "R3") && !f.allowed(g.line, "R3") {
                    out.push(Diagnostic {
                        file: f.rel_path.clone(),
                        line: g.line,
                        rule: "R3",
                        message: format!(
                            "fn `{}` acquires a lock (`.{}()` at line {}) without a \
                             `// audit: holds-lock(..)` annotation",
                            g.name, a.method, a.line
                        ),
                    });
                }
            }
        }
    }
    out
}

fn pricing_entry_names(ws: &Workspace, config: &Config) -> HashSet<String> {
    let mut names: HashSet<String> = config.pricing_entries.iter().cloned().collect();
    for f in &ws.files {
        for g in &f.fns {
            if g.is_pricing_entry() {
                names.insert(g.name.clone());
            }
        }
    }
    names
}

fn check_no_pricing_reach(
    ws: &Workspace,
    graph: &CallGraph,
    id: (usize, usize),
    f: &FileModel,
    g: &FnItem,
    pricing: &HashSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    // Walk the resolved graph from the under-lock call sites,
    // remembering one witness path per finding. Reaching a pricing
    // *name* fires even when the call site has no resolved target (an
    // engine behind an unresolvable receiver must still be flagged).
    let first_acquire = g.lock_acquires.first().map(|a| a.idx).unwrap_or(0);
    graph.walk(
        ws,
        id,
        |c| c.idx >= first_acquire && !f.allowed(c.line, "R3"),
        |v| {
            let caller_file = &ws.files[v.caller.0];
            let name = caller_file.unalias(&v.call.name);
            if pricing.contains(name) || pricing.contains(v.call.name.as_str()) {
                let mut full = v.path.to_vec();
                full.push(v.call.name.clone());
                out.push(Diagnostic {
                    file: f.rel_path.clone(),
                    line: v.origin_line,
                    rule: "R3",
                    message: format!(
                        "fn `{}` holds `{}` across a call path into pricing: {}",
                        g.name,
                        g.held_locks().join("+"),
                        full.join(" -> ")
                    ),
                });
                return Step::Prune;
            }
            Step::Descend
        },
    );
}

fn check_lock_free(
    ws: &Workspace,
    graph: &CallGraph,
    id: (usize, usize),
    f: &FileModel,
    g: &FnItem,
    out: &mut Vec<Diagnostic>,
) {
    if let Some(a) = g.lock_acquires.first() {
        out.push(Diagnostic {
            file: f.rel_path.clone(),
            line: a.line,
            rule: "R3",
            message: format!(
                "fn `{}` is annotated lock-free but acquires a lock (`.{}()`)",
                g.name, a.method
            ),
        });
        return;
    }
    // Transitive: no reached fn may acquire.
    graph.walk(
        ws,
        id,
        |c| !f.allowed(c.line, "R3"),
        |v| {
            for &t in graph.targets(v.caller, v.call_idx) {
                let callee = &ws.files[t.0].fns[t.1];
                if let Some(a) = callee.lock_acquires.first() {
                    let mut full = v.path.to_vec();
                    full.push(callee.name.clone());
                    out.push(Diagnostic {
                        file: f.rel_path.clone(),
                        line: v.origin_line,
                        rule: "R3",
                        message: format!(
                            "fn `{}` is annotated lock-free but reaches a lock \
                             acquisition (`.{}()` in `{}`): {}",
                            g.name,
                            a.method,
                            callee.name,
                            full.join(" -> ")
                        ),
                    });
                    return Step::Prune;
                }
            }
            Step::Descend
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileClass;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::new(
            files
                .iter()
                .map(|(p, s)| FileModel::build(p, crate::source::classify(p), s))
                .collect(),
        )
    }

    fn diags(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let _ = FileClass::Library;
        let w = ws(files);
        let config = Config::workspace_defaults();
        let graph = CallGraph::build(&w, &config);
        check(&w, &graph, &config)
    }

    #[test]
    fn direct_pricing_under_wal_lock_is_flagged() {
        let d = diags(&[(
            "crates/market/src/durable.rs",
            "// audit: holds-lock(wal)\n\
             fn purchase(&self) {\n    let wal = self.wal.lock();\n    self.market.quote_str(q);\n}",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("quote_str"));
    }

    #[test]
    fn transitive_pricing_reach_is_flagged() {
        let d = diags(&[
            (
                "crates/market/src/durable.rs",
                "// audit: holds-lock(wal)\n\
                 fn mutate(&self) {\n    let wal = self.wal.lock();\n    helper();\n}",
            ),
            (
                "crates/market/src/market.rs",
                "fn helper() { deeper(); }\nfn deeper() { pricer.price_cq_within(q, b); }",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("helper -> deeper -> price_cq_within"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn calls_before_the_acquisition_are_not_under_lock() {
        let d = diags(&[(
            "crates/market/src/durable.rs",
            "// audit: holds-lock(wal)\n\
             fn purchase(&self) {\n    let q = self.market.quote_str(query);\n    let wal = self.wal.lock();\n    wal.append(&q);\n}",
        )]);
        assert!(
            d.is_empty(),
            "pricing before the lock is the fixed pattern: {d:?}"
        );
    }

    #[test]
    fn non_guarded_locks_may_price() {
        // The market state lock is *designed* to pair quotes with data
        // snapshots; holds-lock(state) documents it without denying.
        let d = diags(&[(
            "crates/market/src/market.rs",
            "// audit: holds-lock(state)\n\
             fn quote_str_outer(&self) {\n    let s = self.state.read();\n    pricer.price_cq_within(q, b);\n}",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn annotated_pricing_entry_counts() {
        let d = diags(&[
            (
                "crates/market/src/durable.rs",
                "// audit: holds-lock(cache-shard)\n\
                 fn bad(&self) {\n    let s = self.shard(k).write();\n    custom_engine();\n}",
            ),
            (
                "crates/core/src/custom.rs",
                "// audit: pricing-entry\nfn custom_engine() {}",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn lock_free_violations() {
        let d = diags(&[(
            "crates/core/src/pricer.rs",
            "// audit: lock-free\nfn a(&self) { self.inner.lock(); }\n\
             // audit: lock-free\nfn b(&self) { c(); }\nfn c() { state.write(); }",
        )]);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn unannotated_acquire_in_market_is_flagged() {
        let d = diags(&[(
            "crates/market/src/cache.rs",
            "fn get(&self, k: &str) { let s = self.shard(k).read(); }",
        )]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("without a"));
        // Outside the configured paths, no annotation is demanded.
        let d = diags(&[(
            "crates/core/src/budget.rs",
            "fn observe(&self) { let v = self.inner.lock(); }",
        )]);
        assert!(d.is_empty());
    }

    #[test]
    fn harness_fns_are_not_resolution_targets() {
        // `buy` here is a bench-driver fn that prices; the market-side
        // `record` under the WAL lock calls a *different* `buy` (e.g. a
        // ledger helper). Name-level resolution must not route through
        // the harness definition.
        let d = diags(&[
            (
                "crates/market/src/durable.rs",
                "// audit: holds-lock(wal)\n\
                 fn record(&self) {\n    let wal = self.wal.lock();\n    buy(&entry);\n}",
            ),
            (
                "crates/bench/src/lib.rs",
                "fn buy(m: &Market) { m.quote_str(q); }",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn resolution_respects_dependency_direction() {
        // qbdp-store does not depend on qbdp-market, so a store fn named
        // like a market helper must not resolve into market code. The
        // same shape with the helper in `core` (a real market dep) is a
        // finding.
        let base = (
            "crates/market/src/durable.rs",
            "// audit: holds-lock(wal)\n\
             fn mutate(&self) {\n    let wal = self.wal.lock();\n    helper();\n}",
        );
        let d = diags(&[
            base,
            (
                "crates/workload/src/gen.rs",
                "fn helper() { pricer.price_cq_within(q, b); }",
            ),
        ]);
        assert!(d.is_empty(), "market cannot call into qbdp-workload: {d:?}");
        let d = diags(&[
            base,
            (
                "crates/core/src/helpers.rs",
                "fn helper() { pricer.price_cq_within(q, b); }",
            ),
        ]);
        assert_eq!(d.len(), 1, "market *can* call into qbdp-core: {d:?}");
    }

    #[test]
    fn test_fns_are_exempt() {
        let d = diags(&[(
            "crates/market/src/cache.rs",
            "#[cfg(test)]\nmod tests {\n    fn t(&self) { self.shard.read(); }\n}",
        )]);
        assert!(d.is_empty());
    }
}
