//! R6 — wait-freedom of the telemetry record path.
//!
//! The whole argument for leaving [`qbdp-obs`] enabled in production is
//! that a `record*` call costs a few relaxed atomic ops and can never
//! block: pricing threads funnel through these fns on *every* quote,
//! so one mutex inside them would serialize the market behind the
//! telemetry it is trying to observe. R6 machine-checks that argument:
//!
//! * In the configured wait-free paths (`crates/obs/src/`), every fn
//!   whose name starts with a `record` prefix must carry the
//!   `// audit: wait-free` annotation — the hot-path contract is
//!   declared at the definition, not assumed from the name.
//! * Every `wait-free` fn (annotated anywhere in the workspace) must
//!   contain no lock acquisition (`.lock()`, zero-argument `.read()` /
//!   `.write()`), and must not *reach* one through any call path the
//!   name-level graph can resolve, honoring crate dependency direction
//!   exactly as R3 does.
//!
//! The flight recorder's ring buffer deliberately uses a mutex — it is
//! fed only on the rare capture of an already-slow or degraded quote,
//! never from `record*` — so `flight::capture` is simply not annotated
//! and R6 proves the hot path cannot wander into it.
//!
//! Suppression uses the standard grammar: `// audit: allow(R6: why)`.
//!
//! [`qbdp-obs`]: ../../../obs/src/lib.rs

use crate::model::FnItem;
use crate::rules::r3_locks::{dep_closures, may_call};
use crate::rules::{Config, Diagnostic, Workspace};
use crate::source::{crate_of, FileClass};
use std::collections::HashSet;

/// Run R6 over the workspace.
pub fn check(ws: &Workspace, config: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &ws.files {
        let in_wait_free_path = config
            .wait_free_paths
            .iter()
            .any(|p| f.rel_path.starts_with(p));
        for g in &f.fns {
            if g.is_test {
                continue;
            }
            let named_record = config
                .wait_free_prefixes
                .iter()
                .any(|p| g.name.starts_with(p.as_str()));
            // (a) record-path fns in obs must declare the contract.
            if in_wait_free_path && named_record && !g.is_wait_free() && !f.allowed(g.line, "R6") {
                out.push(Diagnostic {
                    file: f.rel_path.clone(),
                    line: g.line,
                    rule: "R6",
                    message: format!(
                        "fn `{}` is on the telemetry record path but carries no \
                         `// audit: wait-free` annotation",
                        g.name
                    ),
                });
            }
            // (b) the contract itself: nothing lock-shaped reachable.
            if g.is_wait_free() {
                check_wait_free(ws, f, g, config, &mut out);
            }
        }
    }
    out
}

/// No lock acquisition in the fn, and none reachable from it. The walk
/// mirrors R3's `lock-free` companion check but reports under R6 with
/// record-path framing, since the stake is different: R3 guards against
/// a lock held *across* pricing, R6 against the record path blocking at
/// all.
fn check_wait_free(
    ws: &Workspace,
    f: &crate::model::FileModel,
    g: &FnItem,
    config: &Config,
    out: &mut Vec<Diagnostic>,
) {
    if let Some(a) = g.lock_acquires.first() {
        if !f.allowed(a.line, "R6") {
            out.push(Diagnostic {
                file: f.rel_path.clone(),
                line: a.line,
                rule: "R6",
                message: format!(
                    "fn `{}` is annotated wait-free but acquires a lock (`.{}()`)",
                    g.name, a.method
                ),
            });
        }
        return;
    }
    let closures = dep_closures(config);
    let origin = crate_of(&f.rel_path).to_string();
    let mut visited: HashSet<(String, String)> = HashSet::new();
    let mut queue: Vec<(String, String, Vec<String>, u32)> = g
        .calls
        .iter()
        .filter(|c| !f.allowed(c.line, "R6"))
        .map(|c| (c.name.clone(), origin.clone(), vec![g.name.clone()], c.line))
        .collect();
    while let Some((name, ctx, path, first_line)) = queue.pop() {
        if !visited.insert((ctx.clone(), name.clone())) {
            continue;
        }
        let Some(defs) = ws.fn_index.get(&name) else {
            continue;
        };
        for &(fi, gi) in defs {
            let callee = &ws.files[fi].fns[gi];
            let callee_crate = crate_of(&ws.files[fi].rel_path);
            if callee.is_test
                || ws.files[fi].class != FileClass::Library
                || !may_call(&closures, &ctx, callee_crate)
            {
                continue;
            }
            if let Some(a) = callee.lock_acquires.first() {
                let mut full = path.clone();
                full.push(name.clone());
                out.push(Diagnostic {
                    file: f.rel_path.clone(),
                    line: first_line,
                    rule: "R6",
                    message: format!(
                        "fn `{}` is annotated wait-free but reaches a lock \
                         acquisition (`.{}()` in `{}`): {}",
                        g.name,
                        a.method,
                        name,
                        full.join(" -> ")
                    ),
                });
                continue;
            }
            if path.len() > 24 {
                continue; // same depth bound as R3: deeper paths are noise
            }
            let mut next_path = path.clone();
            next_path.push(name.clone());
            for c in &callee.calls {
                queue.push((
                    c.name.clone(),
                    callee_crate.to_string(),
                    next_path.clone(),
                    first_line,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn diags(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::new(
            files
                .iter()
                .map(|(p, s)| FileModel::build(p, crate::source::classify(p), s))
                .collect(),
        );
        check(&ws, &Config::workspace_defaults())
    }

    #[test]
    fn unannotated_record_fn_in_obs_is_flagged() {
        let d = diags(&[(
            "crates/obs/src/metrics.rs",
            "fn record_thing(c: Ctr) { global().counter(c).add(1); }",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("no `// audit: wait-free`"));
    }

    #[test]
    fn record_names_outside_obs_are_not_conscripted() {
        let d = diags(&[(
            "crates/market/src/durable.rs",
            "fn record_sale(&self) { let wal = self.wal.lock(); }",
        )]);
        assert!(
            d.iter().all(|x| x.rule != "R6"),
            "R6 is scoped to the obs crate: {d:?}"
        );
    }

    #[test]
    fn direct_acquisition_in_wait_free_fn_is_flagged() {
        let d = diags(&[(
            "crates/obs/src/metrics.rs",
            "// audit: wait-free\nfn record(c: Ctr) { let g = self.inner.lock(); }",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("acquires a lock"));
    }

    #[test]
    fn transitive_reach_is_flagged_with_path() {
        let d = diags(&[(
            "crates/obs/src/metrics.rs",
            "// audit: wait-free\nfn record(c: Ctr) { helper(); }\n\
             fn helper() { deeper(); }\nfn deeper() { ring.lock(); }",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("record -> helper -> deeper"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn resolution_respects_dependency_direction() {
        // obs depends on nothing, so a call from a wait-free obs fn
        // must not resolve into a market fn that happens to share the
        // name — the market definition is unreachable from obs.
        let d = diags(&[
            (
                "crates/obs/src/metrics.rs",
                "// audit: wait-free\nfn record(c: Ctr) { bump(); }",
            ),
            (
                "crates/market/src/cache.rs",
                "fn bump(&self) { self.shard.write(); }",
            ),
        ]);
        assert!(d.is_empty(), "obs cannot call into qbdp-market: {d:?}");
    }

    #[test]
    fn clean_record_path_passes() {
        let d = diags(&[(
            "crates/obs/src/metrics.rs",
            "// audit: wait-free\n\
             fn record(c: Ctr) { if !enabled() { return; } global().counter(c).add(1); }\n\
             fn enabled() -> bool { ENABLED.load(Ordering::Relaxed) }",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_suppresses() {
        let d = diags(&[(
            "crates/obs/src/flight.rs",
            "// audit: allow(R6: capture is off the record path)\n\
             fn record_flight(&self) { ring.lock(); }",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }
}
