//! R6 — wait-freedom of the telemetry record path.
//!
//! The whole argument for leaving [`qbdp-obs`] enabled in production is
//! that a `record*` call costs a few relaxed atomic ops and can never
//! block: pricing threads funnel through these fns on *every* quote,
//! so one mutex inside them would serialize the market behind the
//! telemetry it is trying to observe. R6 machine-checks that argument:
//!
//! * In the configured wait-free paths (`crates/obs/src/`), every fn
//!   whose name starts with a `record` prefix must carry the
//!   `// audit: wait-free` annotation — the hot-path contract is
//!   declared at the definition, not assumed from the name.
//! * Every `wait-free` fn (annotated anywhere in the workspace) must
//!   contain no lock acquisition (`.lock()`, zero-argument `.read()` /
//!   `.write()`), and must not *reach* one through any call path the
//!   name-level graph can resolve, honoring crate dependency direction
//!   exactly as R3 does.
//!
//! The flight recorder's ring buffer deliberately uses a mutex — it is
//! fed only on the rare capture of an already-slow or degraded quote,
//! never from `record*` — so `flight::capture` is simply not annotated
//! and R6 proves the hot path cannot wander into it.
//!
//! Suppression uses the standard grammar: `// audit: allow(R6: why)`.
//!
//! [`qbdp-obs`]: ../../../obs/src/lib.rs

use crate::callgraph::{CallGraph, Step};
use crate::model::FnItem;
use crate::rules::{Config, Diagnostic, Workspace};

/// Run R6 over the workspace.
pub fn check(ws: &Workspace, graph: &CallGraph, config: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (fi, f) in ws.files.iter().enumerate() {
        let in_wait_free_path = config
            .wait_free_paths
            .iter()
            .any(|p| f.rel_path.starts_with(p));
        for (gi, g) in f.fns.iter().enumerate() {
            if g.is_test {
                continue;
            }
            let named_record = config
                .wait_free_prefixes
                .iter()
                .any(|p| g.name.starts_with(p.as_str()));
            // (a) record-path fns in obs must declare the contract.
            if in_wait_free_path && named_record && !g.is_wait_free() && !f.allowed(g.line, "R6") {
                out.push(Diagnostic {
                    file: f.rel_path.clone(),
                    line: g.line,
                    rule: "R6",
                    message: format!(
                        "fn `{}` is on the telemetry record path but carries no \
                         `// audit: wait-free` annotation",
                        g.name
                    ),
                });
            }
            // (b) the contract itself: nothing lock-shaped reachable.
            if g.is_wait_free() {
                check_wait_free(ws, graph, (fi, gi), f, g, &mut out);
            }
        }
    }
    out
}

/// No lock acquisition in the fn, and none reachable from it. The walk
/// mirrors R3's `lock-free` companion check but reports under R6 with
/// record-path framing, since the stake is different: R3 guards against
/// a lock held *across* pricing, R6 against the record path blocking at
/// all.
fn check_wait_free(
    ws: &Workspace,
    graph: &CallGraph,
    id: (usize, usize),
    f: &crate::model::FileModel,
    g: &FnItem,
    out: &mut Vec<Diagnostic>,
) {
    if let Some(a) = g.lock_acquires.first() {
        if !f.allowed(a.line, "R6") {
            out.push(Diagnostic {
                file: f.rel_path.clone(),
                line: a.line,
                rule: "R6",
                message: format!(
                    "fn `{}` is annotated wait-free but acquires a lock (`.{}()`)",
                    g.name, a.method
                ),
            });
        }
        return;
    }
    graph.walk(
        ws,
        id,
        |c| !f.allowed(c.line, "R6"),
        |v| {
            for &t in graph.targets(v.caller, v.call_idx) {
                let callee = &ws.files[t.0].fns[t.1];
                if let Some(a) = callee.lock_acquires.first() {
                    let mut full = v.path.to_vec();
                    full.push(callee.name.clone());
                    out.push(Diagnostic {
                        file: f.rel_path.clone(),
                        line: v.origin_line,
                        rule: "R6",
                        message: format!(
                            "fn `{}` is annotated wait-free but reaches a lock \
                             acquisition (`.{}()` in `{}`): {}",
                            g.name,
                            a.method,
                            callee.name,
                            full.join(" -> ")
                        ),
                    });
                    return Step::Prune;
                }
            }
            Step::Descend
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn diags(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::new(
            files
                .iter()
                .map(|(p, s)| FileModel::build(p, crate::source::classify(p), s))
                .collect(),
        );
        let config = Config::workspace_defaults();
        let graph = CallGraph::build(&ws, &config);
        check(&ws, &graph, &config)
    }

    #[test]
    fn unannotated_record_fn_in_obs_is_flagged() {
        let d = diags(&[(
            "crates/obs/src/metrics.rs",
            "fn record_thing(c: Ctr) { global().counter(c).add(1); }",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("no `// audit: wait-free`"));
    }

    #[test]
    fn record_names_outside_obs_are_not_conscripted() {
        let d = diags(&[(
            "crates/market/src/durable.rs",
            "fn record_sale(&self) { let wal = self.wal.lock(); }",
        )]);
        assert!(
            d.iter().all(|x| x.rule != "R6"),
            "R6 is scoped to the obs crate: {d:?}"
        );
    }

    #[test]
    fn direct_acquisition_in_wait_free_fn_is_flagged() {
        let d = diags(&[(
            "crates/obs/src/metrics.rs",
            "// audit: wait-free\nfn record(c: Ctr) { let g = self.inner.lock(); }",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("acquires a lock"));
    }

    #[test]
    fn transitive_reach_is_flagged_with_path() {
        let d = diags(&[(
            "crates/obs/src/metrics.rs",
            "// audit: wait-free\nfn record(c: Ctr) { helper(); }\n\
             fn helper() { deeper(); }\nfn deeper() { ring.lock(); }",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("record -> helper -> deeper"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn resolution_respects_dependency_direction() {
        // obs depends on nothing, so a call from a wait-free obs fn
        // must not resolve into a market fn that happens to share the
        // name — the market definition is unreachable from obs.
        let d = diags(&[
            (
                "crates/obs/src/metrics.rs",
                "// audit: wait-free\nfn record(c: Ctr) { bump(); }",
            ),
            (
                "crates/market/src/cache.rs",
                "fn bump(&self) { self.shard.write(); }",
            ),
        ]);
        assert!(d.is_empty(), "obs cannot call into qbdp-market: {d:?}");
    }

    #[test]
    fn clean_record_path_passes() {
        let d = diags(&[(
            "crates/obs/src/metrics.rs",
            "// audit: wait-free\n\
             fn record(c: Ctr) { if !enabled() { return; } global().counter(c).add(1); }\n\
             fn enabled() -> bool { ENABLED.load(Ordering::Relaxed) }",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_suppresses() {
        let d = diags(&[(
            "crates/obs/src/flight.rs",
            "// audit: allow(R6: capture is off the record path)\n\
             fn record_flight(&self) { ring.lock(); }",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }
}
