//! R1 — no unchecked arithmetic on money values.
//!
//! Theorem 2.15's arbitrage-freedom is stated over exact prices;
//! PR 3's durable books additionally demand that revenue never wraps.
//! The `Price` type therefore exposes `checked_add` / `saturating_add`
//! and the workspace rule is: **raw `+`, `-`, `*` (and their compound
//! assignments) never touch a money-valued operand** outside the
//! wrapper implementations themselves.
//!
//! Without a type checker, "money-valued" is decided by taint: an
//! operand whose identifier chain contains a money word (`price`,
//! `revenue`, `cents`, …, split on `_`, matched whole — `priced` does
//! not taint) or a call to a money accessor (`as_cents()` taints via
//! the `cents` word). Arithmetic inside fns whose name starts with
//! `checked_`/`saturating_`/`wrapping_` is exempt — those *are* the
//! wrappers. Justified exceptions carry `// audit: allow(R1: why)`.

use crate::lexer::Tok;
use crate::model::FileModel;
use crate::rules::{Config, Diagnostic};
use crate::source::FileClass;

/// Run R1 over one file.
pub fn check(f: &FileModel, config: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if f.class == FileClass::TestCode {
        return out;
    }
    let code = &f.code;
    let mut i = 0usize;
    while i < code.len() {
        let op = match &code[i].tok {
            Tok::Punct(c @ ('+' | '-' | '*')) => *c,
            _ => {
                i += 1;
                continue;
            }
        };
        // `->`, `=>`-adjacent, `+=`-style compound ops are still the
        // same binary operator for taint purposes; `->` is not.
        if op == '-' && code.get(i + 1).is_some_and(|t| t.is_punct('>')) {
            i += 2;
            continue;
        }
        if !is_binary(f, i) {
            i += 1;
            continue;
        }
        if f.in_test_code(i) {
            i += 1;
            continue;
        }
        let line = code[i].line;
        if f.allowed(line, "R1") {
            i += 1;
            continue;
        }
        if let Some(g) = f.fn_at(i) {
            if config
                .blessed_fn_prefixes
                .iter()
                .any(|p| g.name.starts_with(p))
            {
                i += 1;
                continue;
            }
        }
        let left = left_operand_idents(f, i);
        let right = right_operand_idents(f, i);
        let tainted = |chain: &[String]| {
            chain.iter().any(|ident| {
                ident
                    .split('_')
                    .any(|w| config.taint_words.iter().any(|t| t.eq_ignore_ascii_case(w)))
            })
        };
        let hit = if tainted(&left) {
            Some(left)
        } else if tainted(&right) {
            Some(right)
        } else {
            None
        };
        if let Some(chain) = hit {
            out.push(Diagnostic {
                file: f.rel_path.clone(),
                line,
                rule: "R1",
                message: format!(
                    "unchecked `{op}` on money-tainted operand `{}` — use \
                     checked_*/saturating_* (or `// audit: allow(R1: why)` \
                     if the arithmetic cannot overflow)",
                    chain.join(".")
                ),
            });
        }
        i += 1;
    }
    out
}

/// Is the `+`/`-`/`*` at `i` a binary operator? It is when the previous
/// code token can end an expression. Rules out unary minus, deref `*`,
/// `&*`, `+` in generic bounds does not occur inside bodies scanned
/// here except in rare type ascriptions (silence those with allow).
fn is_binary(f: &FileModel, i: usize) -> bool {
    if i == 0 {
        return false;
    }
    match &f.code[i - 1].tok {
        Tok::Ident(name) => {
            // `return -x`, `match x`, … keyword before the op means the
            // op is unary.
            !matches!(
                name.as_str(),
                "return" | "match" | "if" | "while" | "in" | "break" | "else" | "as" | "mut"
            )
        }
        Tok::Num | Tok::Str => true,
        Tok::Punct(')') | Tok::Punct(']') => true,
        _ => false,
    }
}

/// Collect the identifier chain of the operand ending just before `i`:
/// `quote.price` → [quote, price]; `sum.as_cents()` → [sum, as_cents];
/// `weights[e]` → [weights].
fn left_operand_idents(f: &FileModel, op: usize) -> Vec<String> {
    let code = &f.code;
    let mut idents = Vec::new();
    let mut j = op as isize - 1;
    let mut steps = 0;
    while j >= 0 && steps < 32 {
        steps += 1;
        match &code[j as usize].tok {
            Tok::Ident(name) => {
                idents.push(name.clone());
                // keep walking left only across `.` / `::` chains
                if j >= 1 && code[j as usize - 1].is_punct('.') {
                    j -= 2;
                } else if j >= 2
                    && code[j as usize - 1].is_punct(':')
                    && code[j as usize - 2].is_punct(':')
                {
                    j -= 3;
                } else {
                    break;
                }
            }
            Tok::Punct(')') | Tok::Punct(']') => {
                // Skip the bracketed group, then continue with what is
                // before it (a call or an index).
                let open = match &code[j as usize].tok {
                    Tok::Punct(')') => '(',
                    _ => '[',
                };
                let close = match open {
                    '(' => ')',
                    _ => ']',
                };
                let mut depth = 0i32;
                while j >= 0 {
                    if code[j as usize].is_punct(close) {
                        depth += 1;
                    } else if code[j as usize].is_punct(open) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j -= 1;
                }
                j -= 1;
            }
            Tok::Num | Tok::Str => break,
            _ => break,
        }
    }
    idents.reverse();
    idents
}

/// Collect the identifier chain of the operand starting just after `i`.
fn right_operand_idents(f: &FileModel, op: usize) -> Vec<String> {
    let code = &f.code;
    let mut idents = Vec::new();
    let mut j = op + 1;
    // Leading unary operators / reference on the right operand.
    while j < code.len()
        && matches!(
            &code[j].tok,
            Tok::Punct('&') | Tok::Punct('*') | Tok::Punct('-')
        )
    {
        j += 1;
    }
    let mut steps = 0;
    while j < code.len() && steps < 32 {
        steps += 1;
        match &code[j].tok {
            Tok::Ident(name) => {
                idents.push(name.clone());
                j += 1;
                // Skip a call / index group right after the name.
                while j < code.len() && matches!(&code[j].tok, Tok::Punct('(') | Tok::Punct('[')) {
                    let (open, close) = if code[j].is_punct('(') {
                        ('(', ')')
                    } else {
                        ('[', ']')
                    };
                    let mut depth = 0i32;
                    while j < code.len() {
                        if code[j].is_punct(open) {
                            depth += 1;
                        } else if code[j].is_punct(close) {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                // Continue across `.` / `::` chains only.
                if j < code.len() && code[j].is_punct('.') {
                    j += 1;
                } else if j + 1 < code.len() && code[j].is_punct(':') && code[j + 1].is_punct(':') {
                    j += 2;
                } else {
                    break;
                }
            }
            Tok::Num | Tok::Str => break,
            _ => break,
        }
    }
    idents
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileClass;

    fn diags(src: &str) -> Vec<Diagnostic> {
        let m = FileModel::build("crates/x/src/lib.rs", FileClass::Library, src);
        check(&m, &Config::workspace_defaults())
    }

    #[test]
    fn flags_addition_on_price_names() {
        let d = diags("fn f(price: u64, x: u64) -> u64 { price + x }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "R1");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn flags_compound_assign_and_field_chains() {
        let d = diags("fn f(q: Quote) { total_revenue += q.price; }");
        // `total_revenue +=` fires once; `q.price` is on the right of
        // the same operator.
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn flags_as_cents_calls() {
        let d = diags("fn f(a: Price, b: Price) -> u64 { a.as_cents() - b.as_cents() }");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn word_split_avoids_priced() {
        assert!(diags("fn f(priced: u64) -> u64 { priced + 1 }").is_empty());
        assert_eq!(
            diags("fn f(price_cents: u64) -> u64 { price_cents * 2 }").len(),
            1
        );
    }

    #[test]
    fn wrapper_fns_are_blessed() {
        assert!(diags("fn checked_add(price: u64, o: u64) -> u64 { price + o }").is_empty());
        assert!(diags("fn saturating_mul(cents: u64) -> u64 { cents * 2 }").is_empty());
    }

    #[test]
    fn unary_and_deref_do_not_fire() {
        assert!(diags("fn f(cents: &u64) -> u64 { *cents }").is_empty());
        assert!(diags("fn f(cents: u64) { g(&cents); h(*p, cents); }").is_empty());
    }

    #[test]
    fn untainted_arithmetic_is_fine() {
        assert!(diags("fn f(a: u64, b: u64) -> u64 { a * b + 7 }").is_empty());
    }

    #[test]
    fn allow_silences_with_reason() {
        let d = diags(
            "fn f(w: u128, cents: u128) -> u128 {\n    // audit: allow(R1: u128 cannot overflow here)\n    w * cents\n}",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let d = diags(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let x = price + price; }\n}",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn arrow_is_not_subtraction() {
        assert!(diags("fn f(x: u64) -> u64 { x }").is_empty());
    }
}
