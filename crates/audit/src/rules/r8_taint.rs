//! R8 — error-propagation taint: a `Result` that can carry
//! `StoreError::Transient` must never be silently discarded on the
//! serving path.
//!
//! The VFS retry layer turns transient I/O faults into
//! `StoreError::Transient` precisely so callers can retry or surface
//! them; a `let _ =`, a bare `call();` statement, or an `.ok()` discard
//! swallows the fault and turns "degraded but honest" into silent data
//! loss (the serve event loop and WAL append are the paths that
//! matter). The analysis is a two-step taint over the resolved
//! [`CallGraph`]:
//!
//! 1. **Producers** — the fixpoint of: any fn whose body mentions the
//!    `Transient` variant (construction *or* re-wrap), plus any fn that
//!    calls a producer and propagates the value outward — via `?` or by
//!    returning the call as its tail expression. Handling a producer's
//!    result locally (matching on it, branching) deliberately does
//!    *not* taint the caller: the fault stopped there.
//! 2. **Discards** — in the configured serving paths, a call site whose
//!    resolved targets include a producer, written as a discard:
//!    `let _ = …;`, a bare statement `…;` whose value nobody binds, or
//!    a trailing `.ok();`.
//!
//! Suppression: `// audit: allow(R8: why)` on the call line, for the
//! rare place where dropping a transient fault is the design (e.g. a
//! best-effort cache warm).

use crate::callgraph::{CallGraph, FnId};
use crate::lexer::Tok;
use crate::model::FileModel;
use crate::rules::{Config, Diagnostic, Workspace};
use crate::source::FileClass;
use std::collections::BTreeSet;

/// Run R8 over the workspace.
pub fn check(ws: &Workspace, graph: &CallGraph, config: &Config) -> Vec<Diagnostic> {
    let producers = producer_fixpoint(ws, graph);
    let mut out = Vec::new();
    for (fi, f) in ws.files.iter().enumerate() {
        if !config
            .transient_paths
            .iter()
            .any(|p| f.rel_path.starts_with(p))
            || f.class != FileClass::Library
        {
            continue;
        }
        for (gi, g) in f.fns.iter().enumerate() {
            if g.is_test {
                continue;
            }
            for (k, c) in g.calls.iter().enumerate() {
                if f.allowed(c.line, "R8") || f.in_test_code(c.idx) {
                    continue;
                }
                let hits_producer = graph
                    .targets((fi, gi), k)
                    .iter()
                    .any(|t| producers.contains(t));
                if !hits_producer {
                    continue;
                }
                if let Some(how) = discard_shape(f, c.idx) {
                    out.push(Diagnostic {
                        file: f.rel_path.clone(),
                        line: c.line,
                        rule: "R8",
                        message: format!(
                            "fn `{}` discards ({how}) the Result of `{}`, which can \
                             carry StoreError::Transient — retry it, `?` it, or \
                             handle the error",
                            g.name, c.name
                        ),
                    });
                }
            }
        }
    }
    out
}

/// The transient-producer set: seeded by `Transient`-mentioning bodies,
/// closed under `?`/tail-return propagation.
fn producer_fixpoint(ws: &Workspace, graph: &CallGraph) -> BTreeSet<FnId> {
    let mut producers: BTreeSet<FnId> = BTreeSet::new();
    for (fi, f) in ws.files.iter().enumerate() {
        for (gi, g) in f.fns.iter().enumerate() {
            let Some((s, e)) = g.body else { continue };
            let mentions = f.code[s..e.min(f.code.len())]
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(n) if n == "Transient"));
            if mentions && !g.is_test && f.class == FileClass::Library {
                producers.insert((fi, gi));
            }
        }
    }
    loop {
        let mut grew = false;
        for (fi, f) in ws.files.iter().enumerate() {
            for (gi, g) in f.fns.iter().enumerate() {
                let id = (fi, gi);
                if producers.contains(&id) || g.is_test || f.class != FileClass::Library {
                    continue;
                }
                let propagates = g.calls.iter().enumerate().any(|(k, c)| {
                    graph.targets(id, k).iter().any(|t| producers.contains(t))
                        && propagates_outward(f, c.idx)
                });
                if propagates {
                    producers.insert(id);
                    grew = true;
                }
            }
        }
        if !grew {
            return producers;
        }
    }
}

/// Does the call at `idx` hand its Result to the caller's caller — a
/// `?` after the argument list, or the call as the fn's tail expression
/// (`)` directly followed by `}`)?
fn propagates_outward(f: &FileModel, idx: usize) -> bool {
    let close = f.matching_paren(idx + 1);
    let after = close + 1;
    f.code.get(after).is_some_and(|t| t.is_punct('?'))
        || f.code.get(after).is_some_and(|t| t.is_punct('}'))
}

/// If the call at `idx` is written as a discard, say which shape:
/// `let _ = …;`, a bare `…;` statement, or a trailing `.ok();`.
fn discard_shape(f: &FileModel, idx: usize) -> Option<&'static str> {
    // Walk back over the receiver chain (`self.wal.append(` starts the
    // statement at `self`) to the token before the expression.
    let mut start = idx;
    while start > 0 {
        let prev = &f.code[start - 1];
        let is_chain =
            prev.is_punct('.') || prev.is_punct(':') || matches!(&prev.tok, Tok::Ident(_));
        if is_chain {
            start -= 1;
        } else {
            break;
        }
    }
    // `let _ = expr …;`
    if start >= 2 {
        let eq = f.code[start - 1].is_punct('=');
        let underscore = matches!(&f.code[start - 2].tok, Tok::Ident(n) if n == "_");
        let let_kw = start >= 3 && matches!(&f.code[start - 3].tok, Tok::Ident(n) if n == "let");
        if eq && underscore && let_kw {
            return Some("`let _ =`");
        }
    }
    let close = f.matching_paren(idx + 1);
    // `expr.ok();`
    if f.code.get(close + 1).is_some_and(|t| t.is_punct('.'))
        && matches!(f.code.get(close + 2).map(|t| &t.tok), Some(Tok::Ident(n)) if n == "ok")
        && f.code.get(close + 3).is_some_and(|t| t.is_punct('('))
        && f.code.get(close + 4).is_some_and(|t| t.is_punct(')'))
        && f.code.get(close + 5).is_some_and(|t| t.is_punct(';'))
    {
        return Some("`.ok()`");
    }
    // Bare statement: the expression opens a statement and its value
    // hits the `;` unbound.
    let opens_statement = start == 0
        || f.code[start - 1].is_punct(';')
        || f.code[start - 1].is_punct('{')
        || f.code[start - 1].is_punct('}');
    if opens_statement && f.code.get(close + 1).is_some_and(|t| t.is_punct(';')) {
        return Some("bare statement");
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn diags(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::new(
            files
                .iter()
                .map(|(p, s)| FileModel::build(p, crate::source::classify(p), s))
                .collect(),
        );
        let config = Config::workspace_defaults();
        let graph = CallGraph::build(&ws, &config);
        check(&ws, &graph, &config)
    }

    const PRODUCER: (&str, &str) = (
        "crates/store/src/vfs.rs",
        "impl RetryPolicy {\n    fn run(&self) -> Result<(), StoreError> {\n        Err(StoreError::Transient { op, path, source })\n    }\n}",
    );

    #[test]
    fn let_underscore_discard_is_flagged() {
        let d = diags(&[
            PRODUCER,
            (
                "crates/store/src/wal.rs",
                "impl Wal {\n    fn append(&self) {\n        let _ = self.policy.run();\n    }\n}",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`let _ =`"), "{}", d[0].message);
    }

    #[test]
    fn bare_statement_and_ok_discards_are_flagged() {
        let d = diags(&[
            PRODUCER,
            (
                "crates/store/src/wal.rs",
                "impl Wal {\n    fn append(&self) {\n        self.policy.run();\n        self.policy.run().ok();\n    }\n}",
            ),
        ]);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("bare statement"));
        assert!(d[1].message.contains("`.ok()`"));
    }

    #[test]
    fn question_mark_and_binding_are_clean() {
        let d = diags(&[
            PRODUCER,
            (
                "crates/store/src/wal.rs",
                "impl Wal {\n    fn append(&self) -> Result<(), StoreError> {\n        self.policy.run()?;\n        let r = self.policy.run();\n        match r { Ok(()) => {}, Err(e) => return Err(e) }\n        Ok(())\n    }\n}",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn taint_propagates_through_question_mark_callers() {
        // append? makes append's caller-facing Result transient-tainted;
        // discarding *that* in serve is the finding.
        let d = diags(&[
            PRODUCER,
            (
                "crates/store/src/wal.rs",
                "impl Wal {\n    fn append(&self) -> Result<(), StoreError> {\n        self.policy.run()?;\n        Ok(())\n    }\n}",
            ),
            (
                "crates/market/src/durable.rs",
                "impl DurableMarket {\n    fn persist(&self) {\n        let _ = self.wal.append();\n    }\n}",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("append"), "{}", d[0].message);
    }

    #[test]
    fn tail_expression_propagates_taint() {
        let d = diags(&[
            PRODUCER,
            (
                "crates/store/src/wal.rs",
                "impl Wal {\n    fn append(&self) -> Result<(), StoreError> {\n        self.policy.run()\n    }\n}\n\
                 impl Store {\n    fn flush(&self) {\n        self.wal.append();\n    }\n}",
            ),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn local_handling_stops_the_taint() {
        // `recover` matches on the producer's Result: its own callers
        // see no transient taint, so discarding recover() is fine.
        let d = diags(&[
            PRODUCER,
            (
                "crates/store/src/wal.rs",
                "impl Wal {\n    fn recover(&self) -> bool {\n        match self.policy.run() { Ok(()) => true, Err(_) => false }\n    }\n    fn open(&self) {\n        self.recover();\n    }\n}",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn outside_serving_paths_is_exempt() {
        let d = diags(&[
            PRODUCER,
            (
                "crates/bench/src/lib.rs",
                "fn drive(w: &Wal) {\n    let _ = w.sync_all();\n}",
            ),
            (
                "crates/workload/src/gen.rs",
                "fn warm(p: &RetryPolicy) {\n    let _ = p.run();\n}",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_suppresses() {
        let d = diags(&[
            PRODUCER,
            (
                "crates/store/src/wal.rs",
                "impl Wal {\n    fn warm(&self) {\n        // audit: allow(R8: best-effort cache warm, failure is cold-start)\n        let _ = self.policy.run();\n    }\n}",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }
}
