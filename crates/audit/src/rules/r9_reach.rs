//! R9 — panic reachability: no panicking call reachable from the
//! serving entry points.
//!
//! R2 bans `unwrap`/`expect`/`panic!` file-locally, but every
//! `allow(R2: …)` escape is a *claim* — "this invariant holds, the
//! panic cannot fire". R9 checks the part of that claim the file cannot
//! see: whether the site is reachable from a serving entry point
//! (`Market::quote*`, `Server::run`, `Wal::append`, configured as
//! qualified names with `*` prefix wildcards) without passing a panic
//! containment frontier. A buyer-triggered panic beyond a frontier
//! tears down the serving thread; inside one it becomes a degraded
//! quote — the difference is the whole availability story.
//!
//! Panic sites are `unwrap`/`expect` calls and the `panic!` /
//! `unreachable!` / `todo!` / `unimplemented!` macros. `assert!` and
//! friends are deliberately *not* sites: they guard invariants whose
//! failure must abort (and `debug_assert!` vanishes in release);
//! widening R9 to them would drown the signal (DESIGN §5).
//!
//! The walk over the resolved [`CallGraph`] is cut by three frontiers:
//!
//! * the argument list of a direct `catch_unwind(..)` call;
//! * the argument list of a call to any fn that itself calls
//!   `catch_unwind` directly (the workspace's `contain_panic(|| …)`
//!   wrapper — the closure body runs under the hook);
//! * fns annotated `// audit: panic-ok(why)` — their panics are
//!   accepted and the walk does not descend into them.
//!
//! Findings anchor at the panic site (that is where the fix goes), name
//! the entry point, and print the witness path. Each site is reported
//! once even when several entries reach it. Suppression:
//! `// audit: allow(R9: why)` on the site or on the call line that
//! reaches it.

use crate::callgraph::{CallGraph, FnId};
use crate::lexer::Tok;
use crate::model::FileModel;
use crate::rules::{Config, Diagnostic, Workspace};
use std::collections::BTreeSet;

/// Run R9 over the workspace.
pub fn check(ws: &Workspace, graph: &CallGraph, config: &Config) -> Vec<Diagnostic> {
    let containment = containment_fns(ws);
    let mut reported: BTreeSet<(String, u32)> = BTreeSet::new();
    let mut out = Vec::new();
    // Entries in deterministic (file, fn) order; first entry to reach a
    // site claims the report.
    for (fi, f) in ws.files.iter().enumerate() {
        for (gi, g) in f.fns.iter().enumerate() {
            if g.is_test || !is_entry(&g.qual_name(), config) || g.is_panic_ok() {
                continue;
            }
            walk_entry(
                ws,
                graph,
                config,
                &containment,
                (fi, gi),
                &mut reported,
                &mut out,
            );
        }
    }
    out
}

fn is_entry(qual_name: &str, config: &Config) -> bool {
    config
        .panic_entries
        .iter()
        .any(|e| match e.strip_suffix('*') {
            Some(prefix) => qual_name.starts_with(prefix),
            None => qual_name == e,
        })
}

/// Fns that call `catch_unwind` directly: a call to one of these is a
/// containment frontier for everything in its argument list.
fn containment_fns(ws: &Workspace) -> BTreeSet<FnId> {
    let mut out = BTreeSet::new();
    for (fi, f) in ws.files.iter().enumerate() {
        for (gi, g) in f.fns.iter().enumerate() {
            if g.calls.iter().any(|c| c.name == "catch_unwind") {
                out.insert((fi, gi));
            }
        }
    }
    out
}

/// Code-token ranges in `g`'s body that run under a containment
/// frontier: direct `catch_unwind(..)` argument lists plus the argument
/// lists of calls into containment fns.
fn contained_ranges(
    ws: &Workspace,
    graph: &CallGraph,
    containment: &BTreeSet<FnId>,
    id: FnId,
) -> Vec<(usize, usize)> {
    let f = &ws.files[id.0];
    let g = &f.fns[id.1];
    let mut out: Vec<(usize, usize)> = f
        .catch_ranges
        .iter()
        .filter(|&&(s, e)| matches!(g.body, Some((bs, be)) if s >= bs && e <= be))
        .copied()
        .collect();
    for (k, c) in g.calls.iter().enumerate() {
        if graph.targets(id, k).iter().any(|t| containment.contains(t)) {
            out.push((c.idx + 2, f.matching_paren(c.idx + 1)));
        }
    }
    out
}

fn walk_entry(
    ws: &Workspace,
    graph: &CallGraph,
    config: &Config,
    containment: &BTreeSet<FnId>,
    entry: FnId,
    reported: &mut BTreeSet<(String, u32)>,
    out: &mut Vec<Diagnostic>,
) {
    let entry_name = ws.files[entry.0].fns[entry.1].qual_name();
    let mut visited: BTreeSet<FnId> = BTreeSet::new();
    visited.insert(entry);
    let mut queue: Vec<(FnId, Vec<String>)> = vec![(entry, vec![entry_name.clone()])];
    let mut qi = 0;
    while qi < queue.len() {
        let (id, path) = queue[qi].clone();
        qi += 1;
        let f = &ws.files[id.0];
        let g = &f.fns[id.1];
        let contained = contained_ranges(ws, graph, containment, id);
        let under = |idx: usize| contained.iter().any(|&(s, e)| idx >= s && idx < e);

        // Macro panic sites in this body.
        for (idx, line, what) in macro_panics(f, g) {
            if under(idx) || f.allowed(line, "R9") || f.in_test_code(idx) {
                continue;
            }
            report(reported, out, f, line, &entry_name, &path, what);
        }
        for (k, c) in g.calls.iter().enumerate() {
            if under(c.idx) || f.allowed(c.line, "R9") || f.in_test_code(c.idx) {
                continue;
            }
            if matches!(c.name.as_str(), "unwrap" | "expect") {
                report(
                    reported,
                    out,
                    f,
                    c.line,
                    &entry_name,
                    &path,
                    &format!("`.{}()`", c.name),
                );
                continue;
            }
            for &t in graph.targets(id, k) {
                let callee = &ws.files[t.0].fns[t.1];
                if callee.is_panic_ok() || !visited.insert(t) {
                    continue;
                }
                if path.len() >= 24 {
                    continue;
                }
                let mut next = path.clone();
                next.push(callee.name.clone());
                queue.push((t, next));
            }
        }
    }
    let _ = config;
}

/// `panic!` / `unreachable!` / `todo!` / `unimplemented!` sites in the
/// fn body: (token idx, line, description).
fn macro_panics<'a>(f: &'a FileModel, g: &crate::model::FnItem) -> Vec<(usize, u32, &'a str)> {
    let Some((s, e)) = g.body else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for i in s..e.min(f.code.len()) {
        let Tok::Ident(name) = &f.code[i].tok else {
            continue;
        };
        if matches!(
            name.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && f.code.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            out.push((i, f.code[i].line, name.as_str()));
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn report(
    reported: &mut BTreeSet<(String, u32)>,
    out: &mut Vec<Diagnostic>,
    f: &FileModel,
    line: u32,
    entry: &str,
    path: &[String],
    what: &str,
) {
    if !reported.insert((f.rel_path.clone(), line)) {
        return;
    }
    out.push(Diagnostic {
        file: f.rel_path.clone(),
        line,
        rule: "R9",
        message: format!(
            "{what} is reachable from serving entry `{entry}` with no panic \
             containment: {} (contain it, annotate `panic-ok(why)`, or return \
             an error)",
            path.join(" -> ")
        ),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;

    fn diags(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace::new(
            files
                .iter()
                .map(|(p, s)| FileModel::build(p, crate::source::classify(p), s))
                .collect(),
        );
        let config = Config::workspace_defaults();
        let graph = CallGraph::build(&ws, &config);
        check(&ws, &graph, &config)
    }

    #[test]
    fn reachable_unwrap_is_flagged_with_path() {
        let d = diags(&[(
            "crates/market/src/market.rs",
            "impl Market {\n    fn quote_str(&self) {\n        self.normalize();\n    }\n    fn normalize(&self) {\n        deep();\n    }\n}\n\
             fn deep() {\n    let v = table.get(k).unwrap();\n}",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("Market::quote_str"),
            "{}",
            d[0].message
        );
        assert!(
            d[0].message.contains("quote_str -> normalize -> deep"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn macro_panics_are_sites_but_asserts_are_not() {
        let d = diags(&[(
            "crates/market/src/market.rs",
            "impl Market {\n    fn quote_str(&self) {\n        if bad { panic!(\"no\"); }\n        assert!(invariant);\n        debug_assert_eq!(a, b);\n    }\n}",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("panic"), "{}", d[0].message);
    }

    #[test]
    fn catch_unwind_argument_list_is_a_frontier() {
        let d = diags(&[(
            "crates/market/src/market.rs",
            "impl Market {\n    fn quote_str(&self) {\n        let r = catch_unwind(|| self.price_it());\n        after();\n    }\n    fn price_it(&self) {\n        x.unwrap();\n    }\n}",
        )]);
        assert!(d.is_empty(), "contained panic must not be flagged: {d:?}");
    }

    #[test]
    fn containment_wrapper_argument_list_is_a_frontier() {
        // contain_panic calls catch_unwind, so calls inside
        // contain_panic(|| ..) run under the hood's containment.
        let d = diags(&[(
            "crates/market/src/market.rs",
            "fn contain_panic(f: F) -> R {\n    catch_unwind(AssertUnwindSafe(f))\n}\n\
             impl Market {\n    fn quote_str(&self) {\n        contain_panic(|| self.price_it());\n    }\n    fn price_it(&self) {\n        x.unwrap();\n    }\n}",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn panic_ok_cuts_the_walk() {
        let d = diags(&[(
            "crates/market/src/market.rs",
            "impl Market {\n    fn quote_str(&self) {\n        self.shard_index();\n    }\n\
             // audit: panic-ok(shard count is a compile-time constant, index is masked)\n\
             fn shard_index(&self) {\n        masks.get(i).unwrap();\n    }\n}",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_entry_fns_are_not_walked() {
        let d = diags(&[(
            "crates/market/src/market.rs",
            "impl Market {\n    fn admin_reset(&self) {\n        x.unwrap();\n    }\n}",
        )]);
        assert!(d.is_empty(), "only serving entries seed the walk: {d:?}");
    }

    #[test]
    fn wildcard_entries_match_prefixes() {
        let d = diags(&[(
            "crates/market/src/market.rs",
            "impl Market {\n    fn quote_batch(&self) {\n        x.unwrap();\n    }\n}\n\
             impl Wal {\n    fn append(&self) {\n        y.unwrap();\n    }\n}\n\
             impl Server {\n    fn run(&self) {\n        z.unwrap();\n    }\n}",
        )]);
        assert_eq!(d.len(), 3, "{d:?}");
    }

    #[test]
    fn sites_are_reported_once_across_entries() {
        let d = diags(&[(
            "crates/market/src/market.rs",
            "impl Market {\n    fn quote_str(&self) {\n        shared();\n    }\n    fn quote_batch(&self) {\n        shared();\n    }\n}\n\
             fn shared() {\n    x.unwrap();\n}",
        )]);
        assert_eq!(d.len(), 1, "one site, one report: {d:?}");
    }

    #[test]
    fn allow_r9_suppresses_the_site() {
        let d = diags(&[(
            "crates/market/src/market.rs",
            "impl Market {\n    fn quote_str(&self) {\n        // audit: allow(R9: the key was inserted two lines up)\n        let v = m.get(k).unwrap();\n    }\n}",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let d = diags(&[(
            "crates/market/src/market.rs",
            "impl Market {\n    fn quote_str(&self) {\n        ok();\n    }\n}\n\
             #[cfg(test)]\nmod tests {\n    fn quote_str_helper() {\n        x.unwrap();\n    }\n}",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }
}
