//! The rule engines and the workspace-level analysis driver.
//!
//! Each rule consumes [`FileModel`]s and emits [`Diagnostic`]s. R1, R2,
//! and R5 are file-local; R3 and R4 need the cross-file call graph, so
//! the driver builds every model first and hands rules a
//! [`Workspace`] view.

use crate::model::FileModel;
use std::collections::HashMap;
use std::fmt;

pub mod r1_money;
pub mod r2_panic;
pub mod r3_locks;
pub mod r4_fuel;
pub mod r5_safety;
pub mod r6_obs;
pub mod r7_order;
pub mod r8_taint;
pub mod r9_reach;

/// One finding, printed as `file:line: RULE: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`R1`…`R6`, or `R0` for a malformed annotation).
    pub rule: &'static str,
    /// Human-readable finding.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Tunables for the rule engines. [`Config::workspace_defaults`] is the
/// qbdp policy; tests construct narrower configs.
#[derive(Debug, Clone)]
pub struct Config {
    /// R1: identifier words that taint an operand as money-valued.
    pub taint_words: Vec<String>,
    /// R1: fn-name prefixes inside which raw arithmetic is the point
    /// (the wrappers themselves).
    pub blessed_fn_prefixes: Vec<String>,
    /// R3: lock names that must never be held across pricing calls.
    pub guarded_locks: Vec<String>,
    /// R3: fn names that are pricing-engine entry points (in addition
    /// to fns annotated `// audit: pricing-entry`).
    pub pricing_entries: Vec<String>,
    /// R3: path prefixes where every lock-acquiring fn must carry a
    /// `holds-lock(..)` annotation.
    pub lock_annotation_paths: Vec<String>,
    /// R4: path prefixes whose loops must be fuel-metered.
    pub metered_paths: Vec<String>,
    /// R4: method/fn names that charge a budget.
    pub meter_calls: Vec<String>,
    /// R6: path prefixes holding telemetry hot-path code, where every
    /// fn matching a wait-free prefix must be annotated `wait-free`.
    pub wait_free_paths: Vec<String>,
    /// R6: fn-name prefixes that mark a telemetry record point.
    pub wait_free_prefixes: Vec<String>,
    /// R8: path prefixes of serving-path code where a `Result` that can
    /// carry `StoreError::Transient` must not be discarded.
    pub transient_paths: Vec<String>,
    /// R9: serving entry points, matched against the fn's qualified
    /// name (`Market::quote_str`); a trailing `*` is a prefix wildcard
    /// (`Market::quote*`).
    pub panic_entries: Vec<String>,
    /// Call resolution: type names known to live outside the workspace
    /// (std containers, sync primitives, primitives). A method call
    /// whose receiver is evidently one of these resolves to no
    /// workspace fn at all — `map.insert(..)` on a `HashMap` must not
    /// route a lock-order walk into `Market::insert`.
    pub foreign_types: Vec<String>,
    /// R3: direct `qbdp-*` dependency edges, as short crate names
    /// (`market` → its dependencies). Name-level call resolution only
    /// targets definitions in the caller's dependency closure — a fn in
    /// `qbdp-market` cannot call the root CLI or the bench drivers, so
    /// shared std vocabulary (`get`, `insert`, `run`…) must not route a
    /// lock-discipline walk into them. Crates absent from the table
    /// resolve only within themselves.
    pub crate_deps: Vec<(String, Vec<String>)>,
}

impl Config {
    /// The policy enforced on the qbdp workspace.
    pub fn workspace_defaults() -> Config {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        Config {
            taint_words: s(&["price", "prices", "revenue", "cents", "proceeds"]),
            blessed_fn_prefixes: s(&["checked_", "saturating_", "wrapping_"]),
            guarded_locks: s(&["wal", "cache-shard", "vfs-state", "health"]),
            pricing_entries: s(&[
                "price_rule",
                "price_rule_within",
                "price_cq",
                "price_cq_within",
                "price_ucq",
                "price_ucq_within",
                "price_bundle",
                "price_bundle_within",
                "price_batch_within",
                "price_batch_with_workers",
                "quote_str",
                "quote_batch",
                "quote_inner",
                "evaluate_purchase",
                "explain_str",
            ]),
            lock_annotation_paths: s(&["crates/market/src/", "crates/store/src/"]),
            metered_paths: s(&[
                "crates/core/src/exact/",
                // The incremental engine: the price-vector diff and the
                // residual warm-start loops it drives must stay metered
                // or provably bounded, or a storm of revisions turns a
                // "warm" reprice into unmetered work.
                "crates/core/src/plan_cache.rs",
                "crates/determinacy/src/",
                "crates/flow/src/",
                // The serving path: the event loop, the HTTP parser,
                // and the JSON encoder all run on buyer-controlled
                // input, so every loop must be structurally bounded
                // (annotated) or metered — an unbounded scan here is a
                // remote DoS, same threat model as an unmetered pricing
                // loop.
                "crates/serve/src/",
            ]),
            meter_calls: s(&["charge", "tick"]),
            wait_free_paths: s(&["crates/obs/src/"]),
            wait_free_prefixes: s(&["record"]),
            transient_paths: s(&[
                "crates/store/src/",
                "crates/market/src/",
                "crates/serve/src/",
            ]),
            panic_entries: s(&[
                "Market::quote*",
                "DurableMarket::quote*",
                "Server::run",
                "Wal::append",
            ]),
            foreign_types: s(&[
                // std collections / strings / io / net / time / sync
                "Vec",
                "VecDeque",
                "BinaryHeap",
                "HashMap",
                "HashSet",
                "BTreeMap",
                "BTreeSet",
                "String",
                "PathBuf",
                "Path",
                "OsString",
                "File",
                "TcpStream",
                "TcpListener",
                "UdpSocket",
                "Instant",
                "Duration",
                "SystemTime",
                "Mutex",
                "RwLock",
                "Condvar",
                "Cell",
                "RefCell",
                "AtomicBool",
                "AtomicU32",
                "AtomicU64",
                "AtomicUsize",
                "AtomicI64",
                "Option",
                "Result",
                // primitives (no inherent workspace impls possible)
                "bool",
                "char",
                "str",
                "u8",
                "u16",
                "u32",
                "u64",
                "u128",
                "usize",
                "i8",
                "i16",
                "i32",
                "i64",
                "i128",
                "isize",
                "f32",
                "f64",
            ]),
            crate_deps: {
                let d = |name: &str, deps: &[&str]| {
                    (
                        name.to_string(),
                        deps.iter().map(|s| s.to_string()).collect(),
                    )
                };
                vec![
                    d("catalog", &[]),
                    d("obs", &[]),
                    d("flow", &["obs"]),
                    d("store", &["obs"]),
                    d("query", &["catalog"]),
                    d("determinacy", &["catalog", "query"]),
                    d("core", &["catalog", "query", "determinacy", "flow", "obs"]),
                    d(
                        "market",
                        &["catalog", "core", "determinacy", "obs", "query", "store"],
                    ),
                    d("workload", &["catalog", "core", "determinacy", "query"]),
                    d("serve", &["catalog", "core", "market", "obs"]),
                    d(
                        "bench",
                        &[
                            "catalog",
                            "core",
                            "determinacy",
                            "flow",
                            "market",
                            "obs",
                            "query",
                            "serve",
                            "store",
                            "workload",
                        ],
                    ),
                    d(
                        "root",
                        &[
                            "catalog",
                            "core",
                            "determinacy",
                            "flow",
                            "market",
                            "obs",
                            "query",
                            "serve",
                            "store",
                            "workload",
                        ],
                    ),
                ]
            },
        }
    }
}

/// Every audited file, modeled, plus the name-level fn index the
/// cross-file rules resolve calls against.
pub struct Workspace {
    /// All file models, in deterministic (sorted-path) order.
    pub files: Vec<FileModel>,
    /// fn name → (file index, fn index) of every definition.
    pub fn_index: HashMap<String, Vec<(usize, usize)>>,
}

impl Workspace {
    /// Build the index over prebuilt models. Files are sorted by path
    /// first, so the workspace — and everything derived from it (the
    /// call graph, finding order) — is identical regardless of the
    /// order the caller discovered files in.
    pub fn new(mut files: Vec<FileModel>) -> Workspace {
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        let mut fn_index: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (gi, g) in f.fns.iter().enumerate() {
                fn_index.entry(g.name.clone()).or_default().push((fi, gi));
            }
        }
        Workspace { files, fn_index }
    }
}

/// Run every rule over the workspace; diagnostics come back sorted by
/// (file, line, rule). Malformed annotations surface as `R0`.
pub fn run_all(ws: &Workspace, config: &Config) -> Vec<Diagnostic> {
    let graph = crate::callgraph::CallGraph::build(ws, config);
    let mut out = Vec::new();
    for f in &ws.files {
        for (line, msg) in &f.annot_errors {
            out.push(Diagnostic {
                file: f.rel_path.clone(),
                line: *line,
                rule: "R0",
                message: format!("malformed audit annotation: {msg}"),
            });
        }
        out.extend(r1_money::check(f, config));
        out.extend(r2_panic::check(f, config));
        out.extend(r5_safety::check(f, config));
    }
    out.extend(r3_locks::check(ws, &graph, config));
    out.extend(r4_fuel::check(ws, config));
    out.extend(r6_obs::check(ws, &graph, config));
    out.extend(r7_order::check(ws, &graph, config));
    out.extend(r8_taint::check(ws, &graph, config));
    out.extend(r9_reach::check(ws, &graph, config));
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out.dedup();
    out
}
