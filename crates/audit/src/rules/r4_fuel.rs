//! R4 — every loop on a pricing hot path must be fuel-metered.
//!
//! Pricing is worst-case exponential (Theorem 3.5); PR 2 introduced
//! `Budget` so a hostile bundle exhausts its fuel instead of the host.
//! The guarantee only holds if every loop the pricing engines execute
//! actually charges. This rule checks each `for`/`while`/`loop` in the
//! configured hot paths (`core::exact`, `determinacy`, `flow`) for one
//! of:
//!
//! * a direct meter call in its body (`charge(..)` / `tick(..)`),
//! * a call to a fn that transitively meters (computed as a name-level
//!   fixpoint from the direct-charge fns — a loop whose body prices a
//!   sub-bundle is metered because the sub-pricing charges), or
//! * a `// audit: bounded(reason)` annotation for loops whose trip
//!   count is structurally small (iterating the fixed variable set of
//!   one rule, a shard array, …) — the reason is mandatory and shows
//!   up in review.
//!
//! Test code is exempt.

use crate::rules::{Config, Diagnostic, Workspace};
use std::collections::HashSet;

/// Run R4 over the workspace.
pub fn check(ws: &Workspace, config: &Config) -> Vec<Diagnostic> {
    let metering = metering_fns(ws, config);
    let mut out = Vec::new();
    for f in &ws.files {
        if !config
            .metered_paths
            .iter()
            .any(|p| f.rel_path.starts_with(p))
        {
            continue;
        }
        for l in &f.loops {
            if l.is_test || l.bounded.is_some() || f.allowed(l.line, "R4") {
                continue;
            }
            let Some(g) = l.fn_index.map(|i| &f.fns[i]) else {
                continue; // loop outside any fn (const initializer): no fuel to charge
            };
            if g.is_test {
                continue;
            }
            let meters = g.calls.iter().any(|c| {
                c.idx >= l.body.0
                    && c.idx < l.body.1
                    && (config.meter_calls.iter().any(|m| m == &c.name)
                        || metering.contains(&c.name))
            });
            if !meters {
                out.push(Diagnostic {
                    file: f.rel_path.clone(),
                    line: l.line,
                    rule: "R4",
                    message: format!(
                        "`{}` loop in hot-path fn `{}` neither charges a Budget nor \
                         calls a metering fn — add a `charge`/`tick` or \
                         `// audit: bounded(why)`",
                        l.keyword, g.name
                    ),
                });
            }
        }
    }
    out
}

/// Name-level fixpoint: fns that charge directly, then everything that
/// calls them (so a loop body reaching `charge` through a helper
/// counts). Conservative in the permissive direction only for name
/// collisions, which DESIGN §5 accepts.
fn metering_fns(ws: &Workspace, config: &Config) -> HashSet<String> {
    let mut metering: HashSet<String> = HashSet::new();
    for f in &ws.files {
        for g in &f.fns {
            if g.calls
                .iter()
                .any(|c| config.meter_calls.iter().any(|m| m == &c.name))
            {
                metering.insert(g.name.clone());
            }
        }
    }
    loop {
        let mut grew = false;
        for f in &ws.files {
            for g in &f.fns {
                if metering.contains(&g.name) {
                    continue;
                }
                if g.calls.iter().any(|c| metering.contains(&c.name)) {
                    metering.insert(g.name.clone());
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    metering
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;
    use crate::rules::Workspace;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::new(
            files
                .iter()
                .map(|(p, s)| FileModel::build(p, crate::source::classify(p), s))
                .collect(),
        )
    }

    fn diags(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        check(&ws(files), &Config::workspace_defaults())
    }

    #[test]
    fn unmetered_hot_loop_is_flagged() {
        let d = diags(&[(
            "crates/core/src/exact/search.rs",
            "fn explore(&self) {\n    for s in subsets {\n        visit(s);\n    }\n}",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("explore"));
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn direct_charge_passes() {
        let d = diags(&[(
            "crates/core/src/exact/search.rs",
            "fn explore(&self, budget: &Budget) {\n    for s in subsets {\n        if !budget.charge(1) { return; }\n        visit(s);\n    }\n}",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn transitive_metering_passes() {
        let d = diags(&[
            (
                "crates/core/src/exact/search.rs",
                "fn explore(&self) {\n    for s in subsets {\n        step(s);\n    }\n}",
            ),
            (
                "crates/core/src/exact/step.rs",
                "fn step(s: S) { inner(s); }\nfn inner(s: S) { budget.charge(1); }",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn bounded_annotation_passes() {
        let d = diags(&[(
            "crates/determinacy/src/lib.rs",
            "fn scan(&self) {\n    // audit: bounded(iterates the fixed rule variable set)\n    for v in vars {\n        mark(v);\n    }\n}",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cold_paths_and_tests_exempt() {
        let d = diags(&[
            (
                "crates/market/src/market.rs",
                "fn sweep(&self) { for x in xs { drop(x); } }",
            ),
            (
                "crates/flow/src/lib.rs",
                "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { for x in xs { drop(x); } }\n}",
            ),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn while_and_loop_keywords_covered() {
        let d = diags(&[(
            "crates/flow/src/lib.rs",
            "fn pump(&self) {\n    while active {\n        push();\n    }\n    loop {\n        relabel();\n    }\n}",
        )]);
        assert_eq!(d.len(), 2, "{d:?}");
    }
}
