//! R2 — no `unwrap` / `expect` / `panic!` in non-test code.
//!
//! A pricing host must degrade, refuse, or return a typed error — never
//! abort — because Theorem 2.15's guarantees are about what the market
//! *serves*, and a panicking path serves nothing while poisoning
//! whatever lock it held. PR 1 established the policy for
//! `qbdp-market`; this rule extends it workspace-wide.
//!
//! Policy by file class:
//!
//! * **Library** (serving path): `unwrap()`, `expect(..)`, and `panic!`
//!   all denied.
//! * **Harness** (`crates/bench`, `examples/`): a measurement binary is
//!   allowed to abort loudly *with a message* — `expect("context")`
//!   passes, bare `unwrap()` and `panic!` do not.
//! * **Test code**: exempt (a failing assertion is the point).
//!
//! Deliberate exceptions (e.g. fault injection) carry
//! `// audit: allow(R2: why)`.

use crate::model::FileModel;
use crate::rules::{Config, Diagnostic};
use crate::source::FileClass;

/// Run R2 over one file.
pub fn check(f: &FileModel, _config: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if f.class == FileClass::TestCode {
        return out;
    }
    let code = &f.code;
    for i in 0..code.len() {
        let Some(name) = code[i].ident() else {
            continue;
        };
        let line = code[i].line;
        let finding = match name {
            "unwrap" | "expect" if is_method_call(f, i) => {
                if name == "expect" && f.class == FileClass::Harness {
                    None // a harness may abort with a message
                } else {
                    Some(format!(
                        "`{name}` in non-test code — return a typed error \
                         (or `// audit: allow(R2: why)` for a deliberate abort)"
                    ))
                }
            }
            "panic" if code.get(i + 1).is_some_and(|t| t.is_punct('!')) => Some(
                "`panic!` in non-test code — return a typed error \
                 (or `// audit: allow(R2: why)` for a deliberate abort)"
                    .to_string(),
            ),
            _ => None,
        };
        let Some(message) = finding else { continue };
        if f.in_test_code(i) || f.allowed(line, "R2") {
            continue;
        }
        if f.fn_at(i).is_some_and(|g| g.is_test) {
            continue;
        }
        out.push(Diagnostic {
            file: f.rel_path.clone(),
            line,
            rule: "R2",
            message,
        });
    }
    out
}

/// `.unwrap(` / `::unwrap(` — a call of exactly that method, not
/// `unwrap_or`, not an fn definition.
fn is_method_call(f: &FileModel, i: usize) -> bool {
    let code = &f.code;
    if !code.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    if i == 0 {
        return false;
    }
    if code[i - 1].is_punct('.') {
        return true;
    }
    i >= 2 && code[i - 1].is_punct(':') && code[i - 2].is_punct(':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileClass;

    fn diags_in(class: FileClass, src: &str) -> Vec<Diagnostic> {
        let m = FileModel::build("crates/x/src/lib.rs", class, src);
        check(&m, &Config::workspace_defaults())
    }

    fn diags(src: &str) -> Vec<Diagnostic> {
        diags_in(FileClass::Library, src)
    }

    #[test]
    fn flags_unwrap_expect_panic() {
        let d = diags("fn f() {\n    x.unwrap();\n    y.expect(\"m\");\n    panic!(\"boom\");\n}");
        assert_eq!(d.len(), 3);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert!(d.iter().all(|d| d.rule == "R2"));
    }

    #[test]
    fn unwrap_or_is_fine() {
        assert!(
            diags("fn f() { x.unwrap_or(0); y.unwrap_or_else(g); z.unwrap_or_default(); }")
                .is_empty()
        );
    }

    #[test]
    fn path_call_is_flagged_definition_is_not() {
        assert_eq!(diags("fn f() { Option::unwrap(x); }").len(), 1);
        assert!(diags("fn unwrap(x: u8) {}").is_empty());
        assert!(diags("trait T { fn unwrap(self); }").is_empty());
    }

    #[test]
    fn test_code_exempt() {
        let d = diags(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); panic!(); }\n}\n#[test]\nfn top() { y.unwrap(); }",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn harness_may_expect_with_message() {
        let src = "fn main() { x.expect(\"context\"); y.unwrap(); panic!(); }";
        let d = diags_in(FileClass::Harness, src);
        assert_eq!(d.len(), 2, "unwrap and panic! still denied: {d:?}");
        assert_eq!(diags_in(FileClass::Library, src).len(), 3);
    }

    #[test]
    fn allow_with_reason_silences() {
        let d = diags(
            "fn f() {\n    // audit: allow(R2: fault injection exists to panic)\n    panic!(\"injected\");\n}",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn test_files_entirely_exempt() {
        let m = FileModel::build(
            "tests/governance.rs",
            FileClass::TestCode,
            "fn f() { x.unwrap(); }",
        );
        assert!(check(&m, &Config::workspace_defaults()).is_empty());
    }
}
