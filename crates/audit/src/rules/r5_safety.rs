//! R5 — every `unsafe` needs an adjacent `// SAFETY:` justification.
//!
//! The workspace currently contains no `unsafe` at all (every crate
//! root carries `#![forbid(unsafe_code)]`), so in practice this rule
//! guards the *introduction* of unsafe code: the day a crate drops the
//! forbid for an FFI block or a hand-rolled sync primitive, the
//! justification comment is demanded from the first commit. Unlike
//! R1/R2/R4, test code is **not** exempt — an unjustified `unsafe` in a
//! test harness is just as unsound.
//!
//! A `SAFETY:` comment counts if it sits on the same line as the
//! `unsafe` keyword or within the two lines above it (rustdoc
//! convention). `// audit: allow(R5: why)` is accepted but `SAFETY:` is
//! the preferred spelling.

use crate::model::FileModel;
use crate::rules::{Config, Diagnostic};

/// Run R5 over one file.
pub fn check(f: &FileModel, _config: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for &line in &f.unsafe_lines {
        let justified = (line.saturating_sub(2)..=line).any(|l| f.safety_lines.contains(&l));
        if justified || f.allowed(line, "R5") {
            continue;
        }
        out.push(Diagnostic {
            file: f.rel_path.clone(),
            line,
            rule: "R5",
            message: "`unsafe` without an adjacent `// SAFETY:` comment \
                      justifying the invariants"
                .to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileClass;

    fn diags(class: FileClass, src: &str) -> Vec<Diagnostic> {
        let m = FileModel::build("crates/x/src/lib.rs", class, src);
        check(&m, &Config::workspace_defaults())
    }

    #[test]
    fn bare_unsafe_is_flagged() {
        let d = diags(FileClass::Library, "fn f() {\n    unsafe { g() }\n}");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "R5");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn safety_comment_above_passes() {
        let d = diags(
            FileClass::Library,
            "fn f() {\n    // SAFETY: g has no preconditions\n    unsafe { g() }\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn safety_comment_same_line_passes() {
        let d = diags(
            FileClass::Library,
            "fn f() {\n    unsafe { g() } // SAFETY: g has no preconditions\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn distance_three_is_too_far() {
        let d = diags(
            FileClass::Library,
            "// SAFETY: stale justification\n\n\nfn f() { unsafe { g() } }",
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn test_code_is_not_exempt() {
        let d = diags(FileClass::TestCode, "fn t() { unsafe { g() } }");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn unsafe_fn_declarations_need_justification_too() {
        let d = diags(FileClass::Library, "pub unsafe fn raw(p: *const u8) {}");
        assert_eq!(d.len(), 1);
        let d = diags(
            FileClass::Library,
            "// SAFETY: caller must uphold p validity\npub unsafe fn raw(p: *const u8) {}",
        );
        assert!(d.is_empty());
    }
}
