//! The structural model of one source file: functions, loops, test
//! regions, call edges, lock acquisitions, and audit annotations —
//! everything the rules consume, extracted in one pass over the token
//! stream.
//!
//! The scanner is an approximation of Rust's grammar, tuned to be
//! *conservative for this workspace* (the approximations are listed in
//! DESIGN §5): brace-depth item tracking, signature scanning that
//! treats `<`/`>` as brackets (sound inside signatures, where
//! comparison operators cannot occur), and the struct-literal
//! restriction of `for`/`while` headers (which guarantees the first
//! `{` at bracket-depth 0 opens the loop body).

use crate::annot::{self, Annot};
use crate::lexer::{lex, Tok, Token};
use crate::source::FileClass;
use std::collections::{BTreeSet, HashMap};

/// A function item (or method) found in the file.
#[derive(Debug)]
pub struct FnItem {
    /// Bare name (`quote_str`, not `Market::quote_str` — call edges are
    /// matched at name granularity).
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Code-token index range of the body, exclusive of its braces.
    /// `None` for bodiless declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// Whether the fn is test code (`#[test]`, `#[cfg(test)]`, or
    /// inside a `#[cfg(test)]` module/impl).
    pub is_test: bool,
    /// `// audit:` annotations attached to this fn.
    pub annots: Vec<Annot>,
    /// Possible callees: idents directly followed by `(` in the body,
    /// in token order.
    pub calls: Vec<Call>,
    /// Zero-argument `.lock()` / `.read()` / `.write()` receivers in
    /// the body — lock-guard acquisitions (I/O reads and writes always
    /// take arguments, so the empty argument list is the discriminator).
    pub lock_acquires: Vec<LockAcquire>,
}

impl FnItem {
    /// Whether an annotation names this fn as holding `lock`.
    pub fn holds_lock(&self, lock: &str) -> bool {
        self.annots
            .iter()
            .any(|a| matches!(a, Annot::HoldsLock(l) if l == lock))
    }

    /// All `holds-lock(..)` names on this fn.
    pub fn held_locks(&self) -> Vec<&str> {
        self.annots
            .iter()
            .filter_map(|a| match a {
                Annot::HoldsLock(l) => Some(l.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Whether the fn is annotated `lock-free`.
    pub fn is_lock_free(&self) -> bool {
        self.annots.iter().any(|a| matches!(a, Annot::LockFree))
    }

    /// Whether the fn is annotated `wait-free`.
    pub fn is_wait_free(&self) -> bool {
        self.annots.iter().any(|a| matches!(a, Annot::WaitFree))
    }

    /// Whether the fn is annotated `pricing-entry`.
    pub fn is_pricing_entry(&self) -> bool {
        self.annots.iter().any(|a| matches!(a, Annot::PricingEntry))
    }
}

/// One possible call site inside a fn body.
#[derive(Debug)]
pub struct Call {
    /// Callee name (method or free fn — the scanner does not resolve).
    pub name: String,
    /// Code-token index of the callee ident.
    pub idx: usize,
    /// Source line.
    pub line: u32,
}

/// One lock acquisition site inside a fn body.
#[derive(Debug)]
pub struct LockAcquire {
    /// The method: `lock`, `read`, or `write`.
    pub method: String,
    /// Code-token index of the method ident.
    pub idx: usize,
    /// Source line.
    pub line: u32,
}

/// A `for`/`while`/`loop` found in the file.
#[derive(Debug)]
pub struct LoopItem {
    /// The loop keyword.
    pub keyword: &'static str,
    /// Line of the keyword.
    pub line: u32,
    /// Code-token index range of the body, exclusive of braces.
    pub body: (usize, usize),
    /// Index into [`FileModel::fns`] of the innermost enclosing fn.
    pub fn_index: Option<usize>,
    /// Whether the loop is inside test code.
    pub is_test: bool,
    /// `bounded(reason)` annotation, if present.
    pub bounded: Option<String>,
}

/// Everything the rules need to know about one file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Policy class (library / harness / test).
    pub class: FileClass,
    /// Code tokens (comments stripped).
    pub code: Vec<Token>,
    /// Function items, in source order.
    pub fns: Vec<FnItem>,
    /// Loops, in source order.
    pub loops: Vec<LoopItem>,
    /// `allow(R#: …)` annotations: line → rule ids silenced there.
    pub allows: HashMap<u32, Vec<String>>,
    /// Lines whose comments contain `SAFETY:`.
    pub safety_lines: BTreeSet<u32>,
    /// Malformed `// audit:` comments (reported as R0 diagnostics).
    pub annot_errors: Vec<(u32, String)>,
    /// Lines of `unsafe` keywords in code.
    pub unsafe_lines: Vec<u32>,
    /// Code-token index ranges inside `#[cfg(test)]` items.
    test_ranges: Vec<(usize, usize)>,
}

impl FileModel {
    /// Whether the code token at `idx` lies inside `#[cfg(test)]` code.
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// The innermost fn whose body contains code-token `idx`.
    pub fn fn_at(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| matches!(f.body, Some((s, e)) if idx >= s && idx < e))
            .min_by_key(|f| match f.body {
                Some((s, e)) => e - s,
                None => usize::MAX,
            })
    }

    /// Whether `rule` is silenced on `line` by an `allow` annotation.
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }

    /// Build the model for one file.
    pub fn build(rel_path: &str, class: FileClass, source: &str) -> FileModel {
        Scanner::new(rel_path, class, lex(source)).run()
    }
}

/// Item keywords that clear pending fn-level annotations (the
/// annotation was written above something that is not a fn).
const ITEM_KEYWORDS: &[&str] = &[
    "struct",
    "enum",
    "trait",
    "use",
    "static",
    "type",
    "macro_rules",
];

/// Keywords that can legally sit between an annotation and its `fn`.
const FN_PREFIX_KEYWORDS: &[&str] = &[
    "pub", "const", "unsafe", "async", "extern", "crate", "in", "default",
];

struct Scanner {
    rel_path: String,
    class: FileClass,
    code: Vec<Token>,
    /// For each code token, whether a comment-derived annotation maps to it.
    allows: HashMap<u32, Vec<String>>,
    safety_lines: BTreeSet<u32>,
    annot_errors: Vec<(u32, String)>,
    /// (annotation, comment line) pending attachment to the next fn.
    fn_annots_by_line: Vec<(u32, Annot)>,
    /// (reason, comment line) pending attachment to the next loop.
    bounded_by_line: Vec<(u32, String)>,
}

impl Scanner {
    fn new(rel_path: &str, class: FileClass, all_tokens: Vec<Token>) -> Scanner {
        let mut code = Vec::new();
        let mut allows: HashMap<u32, Vec<String>> = HashMap::new();
        let mut safety_lines = BTreeSet::new();
        let mut annot_errors = Vec::new();
        let mut fn_annots_by_line = Vec::new();
        let mut bounded_by_line = Vec::new();
        // Allow annotations on comment-only lines bind to the next code
        // line; remember them until it is known. Attribute tokens
        // (`#[allow(clippy::...)]` lines between the comment and its
        // target) are skipped over, matching how rustc applies lints.
        let mut pending_allows: Vec<String> = Vec::new();
        let mut last_code_line = 0u32;
        let mut attr_start = false;
        let mut attr_depth = 0u32;

        for t in all_tokens {
            match &t.tok {
                Tok::LineComment(text) | Tok::BlockComment(text) => {
                    if text.contains("SAFETY:") {
                        safety_lines.insert(t.line);
                    }
                    match annot::parse(text) {
                        Ok(None) => {}
                        Ok(Some(Annot::Allow { rule, .. })) => {
                            if last_code_line == t.line {
                                allows.entry(t.line).or_default().push(rule);
                            } else {
                                pending_allows.push(rule);
                            }
                        }
                        Ok(Some(Annot::Bounded(reason))) => {
                            bounded_by_line.push((t.line, reason));
                        }
                        Ok(Some(a)) => fn_annots_by_line.push((t.line, a)),
                        Err(e) => annot_errors.push((t.line, e.message)),
                    }
                }
                _ => {
                    let in_attr = if attr_depth > 0 {
                        if t.is_punct('[') {
                            attr_depth += 1;
                        } else if t.is_punct(']') {
                            attr_depth -= 1;
                        }
                        true
                    } else if t.is_punct('#') {
                        attr_start = true;
                        true
                    } else if attr_start && t.is_punct('!') {
                        true
                    } else if attr_start && t.is_punct('[') {
                        attr_start = false;
                        attr_depth = 1;
                        true
                    } else {
                        attr_start = false;
                        false
                    };
                    if !in_attr && !pending_allows.is_empty() {
                        allows
                            .entry(t.line)
                            .or_default()
                            .append(&mut pending_allows);
                    }
                    last_code_line = t.line;
                    code.push(t);
                }
            }
        }
        Scanner {
            rel_path: rel_path.to_string(),
            class,
            code,
            allows,
            safety_lines,
            annot_errors,
            fn_annots_by_line,
            bounded_by_line,
        }
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        self.code.get(i).and_then(Token::ident)
    }

    fn punct_at(&self, i: usize, c: char) -> bool {
        self.code.get(i).is_some_and(|t| t.is_punct(c))
    }

    /// Find the body-opening `{` for a fn signature starting after the
    /// fn name at `i`. Returns `Some(open_idx)` or `None` for `;`.
    /// Inside a signature, `<`/`>` are generic brackets (comparison
    /// operators cannot occur there), except in `->`.
    fn find_fn_body_open(&self, mut i: usize) -> Option<usize> {
        let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
        while i < self.code.len() {
            match &self.code[i].tok {
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => paren -= 1,
                Tok::Punct('[') => bracket += 1,
                Tok::Punct(']') => bracket -= 1,
                Tok::Punct('-') if self.punct_at(i + 1, '>') => i += 1, // skip ->
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle = (angle - 1).max(0),
                Tok::Punct('{') if paren == 0 && bracket == 0 && angle == 0 => {
                    return Some(i);
                }
                Tok::Punct(';') if paren == 0 && bracket == 0 && angle == 0 => {
                    return None;
                }
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Find the body-opening `{` for a loop header starting at `i`
    /// (after the keyword). Only `(`/`[` nest — the struct-literal
    /// restriction keeps stray `{` out of loop headers.
    fn find_loop_body_open(&self, mut i: usize) -> Option<usize> {
        let (mut paren, mut bracket) = (0i32, 0i32);
        while i < self.code.len() {
            match &self.code[i].tok {
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => paren -= 1,
                Tok::Punct('[') => bracket += 1,
                Tok::Punct(']') => bracket -= 1,
                Tok::Punct('{') if paren == 0 && bracket == 0 => return Some(i),
                Tok::Punct(';') if paren == 0 && bracket == 0 => return None,
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Index of the `}` matching the `{` at `open`.
    fn matching_close(&self, open: usize) -> usize {
        let mut depth = 0i32;
        for i in open..self.code.len() {
            match &self.code[i].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        self.code.len()
    }

    fn run(mut self) -> FileModel {
        let mut fns: Vec<FnItem> = Vec::new();
        let mut loops: Vec<LoopItem> = Vec::new();
        let mut test_ranges: Vec<(usize, usize)> = Vec::new();
        let mut unsafe_lines: Vec<u32> = Vec::new();

        // Attribute state, reset after the next item.
        let mut pending_cfg_test = false;
        let mut pending_test_attr = false;

        let mut i = 0usize;
        while i < self.code.len() {
            let line = self.code[i].line;
            match &self.code[i].tok {
                // Attribute: #[...] or #![...]
                Tok::Punct('#') => {
                    let mut j = i + 1;
                    if self.punct_at(j, '!') {
                        j += 1;
                    }
                    if self.punct_at(j, '[') {
                        let mut depth = 0i32;
                        let mut idents: Vec<&str> = Vec::new();
                        let start = j;
                        while j < self.code.len() {
                            match &self.code[j].tok {
                                Tok::Punct('[') => depth += 1,
                                Tok::Punct(']') => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                Tok::Ident(s) => idents.push(s),
                                _ => {}
                            }
                            j += 1;
                        }
                        let has = |w: &str| idents.contains(&w);
                        if has("cfg") && has("test") && !has("not") {
                            pending_cfg_test = true;
                        } else if has("test") && !has("cfg") && !has("cfg_attr") && !has("not") {
                            pending_test_attr = true;
                        }
                        let _ = start;
                        i = j + 1;
                        continue;
                    }
                    i += 1;
                }
                Tok::Ident(kw) if kw == "fn" => {
                    // `fn(` is a fn-pointer type, not an item.
                    let Some(name) = self.ident_at(i + 1).map(str::to_string) else {
                        i += 1;
                        continue;
                    };
                    let in_test = pending_cfg_test
                        || pending_test_attr
                        || test_ranges.iter().any(|&(s, e)| i >= s && i < e);
                    // Attach the annotations written above this fn
                    // (annotation lines precede the `fn` keyword line);
                    // ones for later fns stay pending.
                    let mut annots: Vec<Annot> = Vec::new();
                    self.fn_annots_by_line.retain(|(l, a)| {
                        if *l <= line {
                            annots.push(a.clone());
                            false
                        } else {
                            true
                        }
                    });
                    pending_cfg_test = false;
                    pending_test_attr = false;
                    let body = match self.find_fn_body_open(i + 2) {
                        Some(open) => {
                            let close = self.matching_close(open);
                            if in_test {
                                test_ranges.push((open, close + 1));
                            }
                            Some((open + 1, close))
                        }
                        None => None,
                    };
                    fns.push(FnItem {
                        name,
                        line,
                        body,
                        is_test: in_test,
                        annots,
                        calls: Vec::new(),
                        lock_acquires: Vec::new(),
                    });
                    i += 2;
                }
                Tok::Ident(kw) if kw == "mod" || kw == "impl" || kw == "trait" => {
                    // A #[cfg(test)] mod/impl/trait scopes a test range
                    // over its whole body. Annotations written above it
                    // do not leak into its first fn.
                    self.fn_annots_by_line.retain(|(l, _)| *l > line);
                    if pending_cfg_test {
                        let mut j = i + 1;
                        while j < self.code.len()
                            && !self.punct_at(j, '{')
                            && !self.punct_at(j, ';')
                        {
                            j += 1;
                        }
                        if self.punct_at(j, '{') {
                            let close = self.matching_close(j);
                            test_ranges.push((j, close + 1));
                        }
                        pending_cfg_test = false;
                    }
                    pending_test_attr = false;
                    i += 1;
                }
                Tok::Ident(kw) if kw == "for" || kw == "while" || kw == "loop" => {
                    // `impl Trait for Type` — not a loop: the `for` is
                    // preceded by a type (ident or `>`), a loop's `for`
                    // never is.
                    let prev_is_type = i > 0
                        && (matches!(&self.code[i - 1].tok, Tok::Ident(p)
                                if !matches!(p.as_str(), "if" | "else" | "return" | "break" | "match" | "in" | "unsafe" | "move" | "yield" | "do" | "await"))
                            || self.punct_at(i - 1, '>'));
                    if *kw == "for" && (prev_is_type || self.punct_at(i + 1, '<')) {
                        // `impl Trait for Type` or a higher-ranked
                        // bound `for<'a> Fn(..)` — not a loop.
                        i += 1;
                        continue;
                    }
                    let keyword: &'static str = match kw.as_str() {
                        "for" => "for",
                        "while" => "while",
                        _ => "loop",
                    };
                    if let Some(open) = self.find_loop_body_open(i + 1) {
                        let close = self.matching_close(open);
                        let in_test = test_ranges.iter().any(|&(s, e)| i >= s && i < e);
                        // The bounded(..) annotation binds to the next
                        // loop keyword that follows it in the source.
                        let bounded = {
                            let pos = self.bounded_by_line.iter().position(|(l, _)| *l <= line);
                            pos.map(|p| self.bounded_by_line.remove(p).1)
                        };
                        // fn_index resolved after the scan (fns vector
                        // still growing); store token idx for now.
                        loops.push(LoopItem {
                            keyword,
                            line,
                            body: (open + 1, close),
                            fn_index: Some(i), // placeholder: token idx
                            is_test: in_test,
                            bounded,
                        });
                    }
                    i += 1;
                }
                Tok::Ident(kw) if kw == "unsafe" => {
                    unsafe_lines.push(line);
                    i += 1;
                }
                Tok::Ident(kw) if ITEM_KEYWORDS.contains(&kw.as_str()) => {
                    self.fn_annots_by_line.retain(|(l, _)| *l > line);
                    pending_test_attr = false;
                    // cfg(test) on a struct/use has no body to scope;
                    // consume the flag.
                    pending_cfg_test = false;
                    i += 1;
                }
                Tok::Ident(kw) if FN_PREFIX_KEYWORDS.contains(&kw.as_str()) => {
                    // pub / const / async … may sit between an
                    // annotation (or attribute) and its fn: keep state.
                    i += 1;
                }
                _ => {
                    i += 1;
                }
            }
        }

        // Resolve loop → innermost enclosing fn.
        for l in &mut loops {
            let tok_idx = l.fn_index.take().unwrap_or(0);
            l.fn_index = fns
                .iter()
                .enumerate()
                .filter(|(_, f)| matches!(f.body, Some((s, e)) if tok_idx >= s && tok_idx < e))
                .min_by_key(|(_, f)| match f.body {
                    Some((s, e)) => e - s,
                    None => usize::MAX,
                })
                .map(|(idx, _)| idx);
        }

        // Call edges and lock acquisitions per fn body.
        for f in &mut fns {
            let Some((s, e)) = f.body else { continue };
            for i in s..e.min(self.code.len()) {
                let Some(name) = self.ident_at(i) else {
                    continue;
                };
                if !self.punct_at(i + 1, '(') {
                    continue;
                }
                if matches!(
                    name,
                    "if" | "while" | "for" | "match" | "return" | "fn" | "loop" | "move" | "in"
                ) {
                    continue;
                }
                if i > 0 && self.ident_at(i - 1) == Some("fn") {
                    continue; // nested fn definition, not a call
                }
                let line = self.code[i].line;
                if matches!(name, "lock" | "read" | "write")
                    && i > 0
                    && self.punct_at(i - 1, '.')
                    && self.punct_at(i + 2, ')')
                {
                    f.lock_acquires.push(LockAcquire {
                        method: name.to_string(),
                        idx: i,
                        line,
                    });
                }
                f.calls.push(Call {
                    name: name.to_string(),
                    idx: i,
                    line,
                });
            }
        }

        FileModel {
            rel_path: self.rel_path,
            class: self.class,
            code: self.code,
            fns,
            loops,
            allows: self.allows,
            safety_lines: self.safety_lines,
            annot_errors: self.annot_errors,
            unsafe_lines,
            test_ranges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build("crates/x/src/lib.rs", FileClass::Library, src)
    }

    #[test]
    fn finds_fns_and_bodies() {
        let m = model("fn a() { b(); }\npub const fn b() -> u64 { 1 }\nfn decl();");
        assert_eq!(m.fns.len(), 3);
        assert_eq!(m.fns[0].name, "a");
        assert!(m.fns[0].body.is_some());
        assert_eq!(m.fns[0].calls.len(), 1);
        assert_eq!(m.fns[0].calls[0].name, "b");
        assert_eq!(m.fns[1].name, "b");
        assert!(m.fns[2].body.is_none());
    }

    #[test]
    fn generic_signatures_and_where_clauses() {
        let m = model(
            "fn g<T: Into<Vec<u8>>>(x: T) -> Result<(), Box<dyn std::error::Error>>\n\
             where T: Clone { x.into(); }",
        );
        assert_eq!(m.fns.len(), 1);
        assert!(m.fns[0].body.is_some());
        assert_eq!(m.fns[0].calls.len(), 1);
    }

    #[test]
    fn cfg_test_mod_scopes_test_range() {
        let m = model(
            "fn live() { x.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}",
        );
        assert!(!m.fns[0].is_test);
        assert!(m.fns[1].is_test);
        let live_call = m.fns[0].calls.iter().find(|c| c.name == "unwrap").unwrap();
        assert!(!m.in_test_code(live_call.idx));
        let test_call = m.fns[1].calls.iter().find(|c| c.name == "unwrap").unwrap();
        assert!(m.in_test_code(test_call.idx));
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let m = model("#[cfg(not(test))]\nfn live() {}");
        assert!(!m.fns[0].is_test);
    }

    #[test]
    fn loops_and_impl_for_disambiguation() {
        let m = model(
            "impl Clone for Thing { fn clone(&self) -> Thing { Thing } }\n\
             fn f() { for x in 0..3 { g(x); } while a < b { } loop { break; } }",
        );
        assert_eq!(m.loops.len(), 3);
        assert_eq!(m.loops[0].keyword, "for");
        let f_idx = m.fns.iter().position(|f| f.name == "f").unwrap();
        assert_eq!(m.loops[0].fn_index, Some(f_idx));
    }

    #[test]
    fn fn_annotations_attach() {
        let m = model(
            "// audit: holds-lock(wal)\n// audit: pricing-entry\npub fn guarded() {}\n\
             // audit: lock-free\nstruct NotAFn;\nfn unannotated() {}",
        );
        assert!(m.fns[0].holds_lock("wal"));
        assert!(m.fns[0].is_pricing_entry());
        assert!(
            !m.fns[1].is_lock_free(),
            "annotation above struct must not leak"
        );
    }

    #[test]
    fn allow_binds_to_next_or_same_line() {
        let m = model(
            "// audit: allow(R2: trailing next line)\nfn a() { x.unwrap(); }\n\
             fn b() { y.unwrap(); } // audit: allow(R1: same line)",
        );
        assert!(m.allowed(2, "R2"));
        assert!(m.allowed(3, "R1"));
        assert!(!m.allowed(3, "R2"));
    }

    #[test]
    fn allow_skips_interleaved_attributes() {
        let m = model(
            "fn a() {\n    // audit: allow(R2: invariant)\n    #[allow(clippy::expect_used)]\n    let x = y.expect(\"m\");\n}",
        );
        assert!(m.allowed(4, "R2"), "allow must skip the attribute line");
        assert!(!m.allowed(3, "R2"));
    }

    #[test]
    fn bounded_binds_to_next_loop() {
        let m = model(
            "fn f() {\n    // audit: bounded(fixed 16 shards)\n    for s in shards { }\n    for t in others { }\n}",
        );
        assert_eq!(m.loops[0].bounded.as_deref(), Some("fixed 16 shards"));
        assert!(m.loops[1].bounded.is_none());
    }

    #[test]
    fn lock_acquires_need_empty_args() {
        let m = model(
            "fn f(buf: &mut [u8]) { let g = self.state.read(); file.read(buf); wal.lock(); }",
        );
        let acquires: Vec<&str> = m.fns[0]
            .lock_acquires
            .iter()
            .map(|a| a.method.as_str())
            .collect();
        assert_eq!(
            acquires,
            vec!["read", "lock"],
            "read(buf) is I/O, not a lock"
        );
    }

    #[test]
    fn unsafe_lines_and_safety_comments() {
        let m = model("// SAFETY: checked above\nfn f() { unsafe { g(); } }");
        assert_eq!(m.unsafe_lines, vec![2]);
        assert!(m.safety_lines.contains(&1));
    }

    #[test]
    fn annot_errors_are_collected() {
        let m = model("// audit: allow(R2)\nfn f() {}");
        assert_eq!(m.annot_errors.len(), 1);
    }
}
