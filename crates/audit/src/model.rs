//! The structural model of one source file: functions, loops, test
//! regions, call edges, lock acquisitions, and audit annotations —
//! everything the rules consume, extracted in one pass over the token
//! stream.
//!
//! The scanner is an approximation of Rust's grammar, tuned to be
//! *conservative for this workspace* (the approximations are listed in
//! DESIGN §5): brace-depth item tracking, signature scanning that
//! treats `<`/`>` as brackets (sound inside signatures, where
//! comparison operators cannot occur), and the struct-literal
//! restriction of `for`/`while` headers (which guarantees the first
//! `{` at bracket-depth 0 opens the loop body).

use crate::annot::{self, Annot};
use crate::lexer::{lex, Tok, Token};
use crate::source::FileClass;
use std::collections::{BTreeSet, HashMap};

/// A function item (or method) found in the file.
#[derive(Debug)]
pub struct FnItem {
    /// Bare name (`quote_str`, not `Market::quote_str` — call edges are
    /// matched at name granularity).
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Code-token index of the `fn` keyword (used to place the fn
    /// inside its enclosing impl/trait block).
    pub decl_idx: usize,
    /// The `Self` type when this fn sits in an `impl` block (`impl
    /// Market { … }` → `Market`; `impl Ops for DurableMarket` →
    /// `DurableMarket`).
    pub self_ty: Option<String>,
    /// The trait when this fn is a trait method: the trait being
    /// implemented (`impl Ops for X` → `Ops`) or, for a declaration or
    /// default body inside `trait Ops { … }`, the trait itself.
    pub in_trait: Option<String>,
    /// Code-token index range of the body, exclusive of its braces.
    /// `None` for bodiless declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// Whether the fn is test code (`#[test]`, `#[cfg(test)]`, or
    /// inside a `#[cfg(test)]` module/impl).
    pub is_test: bool,
    /// `// audit:` annotations attached to this fn.
    pub annots: Vec<Annot>,
    /// Possible callees: idents directly followed by `(` in the body,
    /// in token order.
    pub calls: Vec<Call>,
    /// Zero-argument `.lock()` / `.read()` / `.write()` receivers in
    /// the body — lock-guard acquisitions (I/O reads and writes always
    /// take arguments, so the empty argument list is the discriminator).
    pub lock_acquires: Vec<LockAcquire>,
    /// Receiver-type evidence for `Recv::Ident` calls: binding name →
    /// base type ident, from typed params (`wal: &Wal`) and inferable
    /// `let`s (`let h = FxHasher::default()`, `let x: Vec<u8> = …`).
    pub binding_types: HashMap<String, String>,
}

impl FnItem {
    /// Whether an annotation names this fn as holding `lock`.
    pub fn holds_lock(&self, lock: &str) -> bool {
        self.annots
            .iter()
            .any(|a| matches!(a, Annot::HoldsLock(l) if l == lock))
    }

    /// All `holds-lock(..)` names on this fn.
    pub fn held_locks(&self) -> Vec<&str> {
        self.annots
            .iter()
            .filter_map(|a| match a {
                Annot::HoldsLock(l) => Some(l.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Whether the fn is annotated `lock-free`.
    pub fn is_lock_free(&self) -> bool {
        self.annots.iter().any(|a| matches!(a, Annot::LockFree))
    }

    /// Whether the fn is annotated `wait-free`.
    pub fn is_wait_free(&self) -> bool {
        self.annots.iter().any(|a| matches!(a, Annot::WaitFree))
    }

    /// Whether the fn is annotated `pricing-entry`.
    pub fn is_pricing_entry(&self) -> bool {
        self.annots.iter().any(|a| matches!(a, Annot::PricingEntry))
    }

    /// Whether the fn is annotated `panic-ok(..)` (R9 accepts its
    /// panics and stops walking).
    pub fn is_panic_ok(&self) -> bool {
        self.annots.iter().any(|a| matches!(a, Annot::PanicOk(_)))
    }

    /// `Type::name` when the fn is an impl/trait method, bare `name`
    /// otherwise — the stable symbol used in finding IDs and entry-point
    /// matching.
    pub fn qual_name(&self) -> String {
        match self.self_ty.as_deref().or(self.in_trait.as_deref()) {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The receiver shape of a method call — the evidence the call graph
/// turns into a receiver *type* (via the enclosing impl, the struct
/// field table, or the fn's param/`let` bindings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `self.name(..)` — receiver type is the enclosing impl's `Self`.
    SelfDirect,
    /// `self.field.name(..)` — receiver type is the field's declared
    /// type, when the struct table knows it.
    SelfField(String),
    /// `x.name(..)` where `x` opens the expression — receiver type is
    /// `x`'s binding (a typed param or an inferable `let`), when known.
    Ident(String),
    /// Anything else (`a.b.c.m()`, `f().m()`, `v[i].m()`): no evidence.
    Opaque,
}

/// How a call site is written — the syntactic evidence the call graph
/// uses to narrow (never widen) the candidate set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(..)` — a free call (possibly a `use`-imported item).
    Free,
    /// `recv.name(..)` — a method call.
    Method {
        /// The receiver's syntactic shape.
        recv: Recv,
    },
    /// `Qual::name(..)` — a path call. `qual` is the immediate path
    /// segment before the final `::` (`Wal::open` → `Wal`), or `None`
    /// when the qualifier is not a plain ident (`<T as X>::f`).
    Path {
        /// Immediate qualifier segment, if syntactically a plain ident.
        qual: Option<String>,
    },
}

/// One possible call site inside a fn body.
#[derive(Debug)]
pub struct Call {
    /// Callee name (method or free fn — the scanner does not resolve).
    pub name: String,
    /// Code-token index of the callee ident.
    pub idx: usize,
    /// Source line.
    pub line: u32,
    /// The call's syntactic shape (receiver/path evidence).
    pub kind: CallKind,
}

/// One lock acquisition site inside a fn body.
#[derive(Debug)]
pub struct LockAcquire {
    /// The method: `lock`, `read`, or `write`.
    pub method: String,
    /// Code-token index of the method ident.
    pub idx: usize,
    /// Source line.
    pub line: u32,
}

/// A `for`/`while`/`loop` found in the file.
#[derive(Debug)]
pub struct LoopItem {
    /// The loop keyword.
    pub keyword: &'static str,
    /// Line of the keyword.
    pub line: u32,
    /// Code-token index range of the body, exclusive of braces.
    pub body: (usize, usize),
    /// Index into [`FileModel::fns`] of the innermost enclosing fn.
    pub fn_index: Option<usize>,
    /// Whether the loop is inside test code.
    pub is_test: bool,
    /// `bounded(reason)` annotation, if present.
    pub bounded: Option<String>,
}

/// Everything the rules need to know about one file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Policy class (library / harness / test).
    pub class: FileClass,
    /// Code tokens (comments stripped).
    pub code: Vec<Token>,
    /// Function items, in source order.
    pub fns: Vec<FnItem>,
    /// Loops, in source order.
    pub loops: Vec<LoopItem>,
    /// `allow(R#: …)` annotations: line → rule ids silenced there.
    pub allows: HashMap<u32, Vec<String>>,
    /// Lines whose comments contain `SAFETY:`.
    pub safety_lines: BTreeSet<u32>,
    /// Malformed `// audit:` comments (reported as R0 diagnostics).
    pub annot_errors: Vec<(u32, String)>,
    /// Lines of `unsafe` keywords in code.
    pub unsafe_lines: Vec<u32>,
    /// `use` renames in this file: alias → original item name
    /// (`use x as y` → `y → x`). Plain imports need no entry — the
    /// imported name already matches its definition.
    pub aliases: HashMap<String, String>,
    /// `// audit: lock-order(a < b < …)` declarations: (line, chain).
    pub lock_orders: Vec<(u32, Vec<String>)>,
    /// Code-token ranges of `catch_unwind(..)` argument lists — panic
    /// frontiers for R9 (call edges originating inside never unwind out).
    pub catch_ranges: Vec<(usize, usize)>,
    /// Types this file defines: struct/enum names, trait names, and
    /// impl `Self` types — the workspace type registry the call graph
    /// checks receiver-type evidence against.
    pub type_names: BTreeSet<String>,
    /// Struct field declarations: struct name → field → base type ident
    /// (`Market` → `cache` → `ShardedQuoteCache`).
    pub type_fields: HashMap<String, HashMap<String, String>>,
    /// `impl Trait for Type` pairs, as (type, trait) — lets a typed
    /// receiver still reach the trait's default-method bodies.
    pub impl_traits: Vec<(String, String)>,
    /// Code-token index ranges inside `#[cfg(test)]` items.
    test_ranges: Vec<(usize, usize)>,
}

impl FileModel {
    /// Whether the code token at `idx` lies inside `#[cfg(test)]` code.
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// The innermost fn whose body contains code-token `idx`.
    pub fn fn_at(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| matches!(f.body, Some((s, e)) if idx >= s && idx < e))
            .min_by_key(|f| match f.body {
                Some((s, e)) => e - s,
                None => usize::MAX,
            })
    }

    /// Whether `rule` is silenced on `line` by an `allow` annotation.
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }

    /// Resolve a name through this file's `use` renames: the original
    /// item name for an alias, the name itself otherwise.
    pub fn unalias<'a>(&'a self, name: &'a str) -> &'a str {
        self.aliases.get(name).map_or(name, String::as_str)
    }

    /// Index of the `)` matching the `(` at code-token `open` (or the
    /// end of the stream if unbalanced).
    pub fn matching_paren(&self, open: usize) -> usize {
        matching_paren_in(&self.code, open)
    }

    /// Build the model for one file.
    pub fn build(rel_path: &str, class: FileClass, source: &str) -> FileModel {
        Scanner::new(rel_path, class, lex(source)).run()
    }
}

/// Index of the `)` matching the `(` at code-token `open` (or the end
/// of the stream if unbalanced).
fn matching_paren_in(code: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in code.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    code.len()
}

/// Item keywords that clear pending fn-level annotations (the
/// annotation was written above something that is not a fn).
const ITEM_KEYWORDS: &[&str] = &[
    "struct",
    "enum",
    "trait",
    "use",
    "static",
    "type",
    "macro_rules",
];

/// Keywords that can legally sit between an annotation and its `fn`.
const FN_PREFIX_KEYWORDS: &[&str] = &[
    "pub", "const", "unsafe", "async", "extern", "crate", "in", "default",
];

struct Scanner {
    rel_path: String,
    class: FileClass,
    code: Vec<Token>,
    /// For each code token, whether a comment-derived annotation maps to it.
    allows: HashMap<u32, Vec<String>>,
    safety_lines: BTreeSet<u32>,
    annot_errors: Vec<(u32, String)>,
    /// (annotation, comment line) pending attachment to the next fn.
    fn_annots_by_line: Vec<(u32, Annot)>,
    /// (reason, comment line) pending attachment to the next loop.
    bounded_by_line: Vec<(u32, String)>,
    /// File-scoped `lock-order(..)` declarations.
    lock_orders: Vec<(u32, Vec<String>)>,
}

impl Scanner {
    fn new(rel_path: &str, class: FileClass, all_tokens: Vec<Token>) -> Scanner {
        let mut code = Vec::new();
        let mut allows: HashMap<u32, Vec<String>> = HashMap::new();
        let mut safety_lines = BTreeSet::new();
        let mut annot_errors = Vec::new();
        let mut fn_annots_by_line = Vec::new();
        let mut bounded_by_line = Vec::new();
        let mut lock_orders = Vec::new();
        // Allow annotations on comment-only lines bind to the next code
        // line; remember them until it is known. Attribute tokens
        // (`#[allow(clippy::...)]` lines between the comment and its
        // target) are skipped over, matching how rustc applies lints.
        let mut pending_allows: Vec<String> = Vec::new();
        let mut last_code_line = 0u32;
        let mut attr_start = false;
        let mut attr_depth = 0u32;

        for t in all_tokens {
            match &t.tok {
                Tok::LineComment(text) | Tok::BlockComment(text) => {
                    if text.contains("SAFETY:") {
                        safety_lines.insert(t.line);
                    }
                    match annot::parse(text) {
                        Ok(None) => {}
                        Ok(Some(Annot::Allow { rule, .. })) => {
                            if last_code_line == t.line {
                                allows.entry(t.line).or_default().push(rule);
                            } else {
                                pending_allows.push(rule);
                            }
                        }
                        Ok(Some(Annot::Bounded(reason))) => {
                            bounded_by_line.push((t.line, reason));
                        }
                        Ok(Some(Annot::LockOrder(chain))) => {
                            lock_orders.push((t.line, chain));
                        }
                        Ok(Some(a)) => fn_annots_by_line.push((t.line, a)),
                        Err(e) => annot_errors.push((t.line, e.message)),
                    }
                }
                _ => {
                    let in_attr = if attr_depth > 0 {
                        if t.is_punct('[') {
                            attr_depth += 1;
                        } else if t.is_punct(']') {
                            attr_depth -= 1;
                        }
                        true
                    } else if t.is_punct('#') {
                        attr_start = true;
                        true
                    } else if attr_start && t.is_punct('!') {
                        true
                    } else if attr_start && t.is_punct('[') {
                        attr_start = false;
                        attr_depth = 1;
                        true
                    } else {
                        attr_start = false;
                        false
                    };
                    if !in_attr && !pending_allows.is_empty() {
                        allows
                            .entry(t.line)
                            .or_default()
                            .append(&mut pending_allows);
                    }
                    last_code_line = t.line;
                    code.push(t);
                }
            }
        }
        Scanner {
            rel_path: rel_path.to_string(),
            class,
            code,
            allows,
            safety_lines,
            annot_errors,
            fn_annots_by_line,
            bounded_by_line,
            lock_orders,
        }
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        self.code.get(i).and_then(Token::ident)
    }

    fn punct_at(&self, i: usize, c: char) -> bool {
        self.code.get(i).is_some_and(|t| t.is_punct(c))
    }

    /// Find the body-opening `{` for a fn signature starting after the
    /// fn name at `i`. Returns `Some(open_idx)` or `None` for `;`.
    /// Inside a signature, `<`/`>` are generic brackets (comparison
    /// operators cannot occur there), except in `->`.
    fn find_fn_body_open(&self, mut i: usize) -> Option<usize> {
        let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
        while i < self.code.len() {
            match &self.code[i].tok {
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => paren -= 1,
                Tok::Punct('[') => bracket += 1,
                Tok::Punct(']') => bracket -= 1,
                Tok::Punct('-') if self.punct_at(i + 1, '>') => i += 1, // skip ->
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle = (angle - 1).max(0),
                Tok::Punct('{') if paren == 0 && bracket == 0 && angle == 0 => {
                    return Some(i);
                }
                Tok::Punct(';') if paren == 0 && bracket == 0 && angle == 0 => {
                    return None;
                }
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Find the body-opening `{` for a loop header starting at `i`
    /// (after the keyword). Only `(`/`[` nest — the struct-literal
    /// restriction keeps stray `{` out of loop headers.
    fn find_loop_body_open(&self, mut i: usize) -> Option<usize> {
        let (mut paren, mut bracket) = (0i32, 0i32);
        while i < self.code.len() {
            match &self.code[i].tok {
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => paren -= 1,
                Tok::Punct('[') => bracket += 1,
                Tok::Punct(']') => bracket -= 1,
                Tok::Punct('{') if paren == 0 && bracket == 0 => return Some(i),
                Tok::Punct(';') if paren == 0 && bracket == 0 => return None,
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Parse an `impl` header starting at `j` (just after the keyword).
    /// Returns the body-opening `{` index (None for `impl Trait for ..;`
    /// forms or scan failure) plus the self type and trait name: the
    /// last depth-0 path segment after/before `for`. Generic parameters,
    /// bounds, and where clauses are skipped by bracket depth.
    fn parse_impl_header(&self, mut j: usize) -> (Option<usize>, Option<String>, Option<String>) {
        let (mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32);
        let mut before_for: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        let mut saw_where = false;
        while j < self.code.len() {
            match &self.code[j].tok {
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => paren -= 1,
                Tok::Punct('[') => bracket += 1,
                Tok::Punct(']') => bracket -= 1,
                Tok::Punct('-') if self.punct_at(j + 1, '>') => j += 1, // skip ->
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle = (angle - 1).max(0),
                Tok::Punct('{') if paren == 0 && bracket == 0 && angle == 0 => {
                    let (ty, tr) = if saw_for {
                        (after_for, before_for)
                    } else {
                        (before_for, None)
                    };
                    return (Some(j), ty, tr);
                }
                Tok::Punct(';') if paren == 0 && bracket == 0 && angle == 0 => {
                    return (None, None, None);
                }
                Tok::Ident(s) if paren == 0 && bracket == 0 && angle == 0 => {
                    match s.as_str() {
                        "for" => saw_for = true,
                        "where" => saw_where = true,
                        "dyn" | "mut" | "unsafe" | "const" => {}
                        _ if !saw_where => {
                            // Track the *last* depth-0 segment on each
                            // side of `for`: `a::b::C` ends at `C`.
                            if saw_for {
                                after_for = Some(s.clone());
                            } else {
                                before_for = Some(s.clone());
                            }
                        }
                        _ => {}
                    }
                }
                _ => {}
            }
            j += 1;
        }
        (None, None, None)
    }

    /// Scan a `use` declaration starting at `j` (just after the
    /// keyword), recording `as`-renames into `aliases`. Returns the
    /// index just past the terminating `;`.
    fn scan_use(&self, mut j: usize, aliases: &mut HashMap<String, String>) -> usize {
        // `prev` is the path segment most recently seen; a brace group
        // remembers the segment before its `::{` so `self as x` inside
        // it can resolve to the group's parent module.
        let mut prev: Option<String> = None;
        let mut parents: Vec<Option<String>> = Vec::new();
        let mut pending_as = false;
        while j < self.code.len() {
            match &self.code[j].tok {
                Tok::Punct(';') => return j + 1,
                Tok::Punct('{') => parents.push(prev.clone()),
                Tok::Punct('}') => {
                    parents.pop();
                }
                Tok::Ident(s) if s == "as" => pending_as = true,
                Tok::Ident(s) => {
                    if pending_as {
                        pending_as = false;
                        let original = match prev.as_deref() {
                            Some("self") => parents.last().cloned().flatten(),
                            other => other.map(str::to_string),
                        };
                        if let Some(o) = original {
                            if o != *s {
                                aliases.insert(s.clone(), o);
                            }
                        }
                    }
                    prev = Some(s.clone());
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// The base type ident of a type expression starting at `k`:
    /// references, lifetimes, `mut`/`dyn`/`impl`/`const`, and the
    /// transparent pointer wrappers (`Arc<T>`, `Rc<T>`, `Box<T>` —
    /// method calls pass through their `Deref`) are skipped; a
    /// qualified path yields its final segment (`std::net::TcpStream`
    /// → `TcpStream`). `None` when the type is not ident-shaped
    /// (tuples, arrays, fn pointers).
    fn base_type(&self, mut k: usize, limit: usize) -> Option<String> {
        while k < limit.min(self.code.len()) {
            match &self.code[k].tok {
                Tok::Punct('&') | Tok::Punct('*') | Tok::Lifetime => k += 1,
                Tok::Ident(s) if matches!(s.as_str(), "mut" | "dyn" | "impl" | "const") => k += 1,
                Tok::Ident(s)
                    if matches!(s.as_str(), "Arc" | "Rc" | "Box") && self.punct_at(k + 1, '<') =>
                {
                    k += 2;
                }
                Tok::Ident(s) => {
                    if self.punct_at(k + 1, ':') && self.punct_at(k + 2, ':') {
                        k += 3; // path segment: keep walking to the last one
                        continue;
                    }
                    return Some(s.clone());
                }
                _ => return None,
            }
        }
        None
    }

    /// The typed params of a fn whose `fn` keyword sits at `decl_idx`:
    /// plain `name: Type` pairs at paren depth 1 of the signature
    /// (destructured params and `self` carry no binding).
    fn param_types(&self, decl_idx: usize) -> HashMap<String, String> {
        let mut out = HashMap::new();
        // Find the param-list `(`, skipping the generics list.
        let mut j = decl_idx + 2;
        let mut angle = 0i32;
        let open = loop {
            match self.code.get(j).map(|t| &t.tok) {
                Some(Tok::Punct('<')) => angle += 1,
                Some(Tok::Punct('>')) => angle = (angle - 1).max(0),
                Some(Tok::Punct('(')) if angle == 0 => break j,
                Some(Tok::Punct('{')) | Some(Tok::Punct(';')) | None => return out,
                _ => {}
            }
            j += 1;
        };
        let close = matching_paren_in(&self.code, open);
        let mut paren = 0i32;
        for k in open..close {
            match &self.code[k].tok {
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => paren -= 1,
                Tok::Ident(name)
                    if paren == 1
                        && name != "self"
                        && self.punct_at(k + 1, ':')
                        && !self.punct_at(k + 2, ':')
                        && !(k > open && self.punct_at(k - 1, ':')) =>
                {
                    if let Some(ty) = self.base_type(k + 2, close) {
                        out.insert(name.clone(), ty);
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Record `let` bindings with visible types into `out`: an explicit
    /// annotation (`let x: Vec<u8> = …`) or a capitalized path RHS
    /// (`let h = FxHasher::default()`, `let e = Entry { … }`).
    fn let_types(&self, body: (usize, usize), out: &mut HashMap<String, String>) {
        let (s, e) = body;
        for i in s..e.min(self.code.len()) {
            if self.ident_at(i) != Some("let") {
                continue;
            }
            let mut j = i + 1;
            if self.ident_at(j) == Some("mut") {
                j += 1;
            }
            let Some(name) = self.ident_at(j).map(str::to_string) else {
                continue;
            };
            if self.punct_at(j + 1, ':') && !self.punct_at(j + 2, ':') {
                if let Some(ty) = self.base_type(j + 2, e) {
                    out.insert(name, ty);
                }
            } else if self.punct_at(j + 1, '=') {
                let is_ctor_path = self.punct_at(j + 3, ':') && self.punct_at(j + 4, ':')
                    || self.punct_at(j + 3, '{');
                if let Some(ty) = self.ident_at(j + 2) {
                    if is_ctor_path && ty.starts_with(char::is_uppercase) {
                        out.insert(name, ty.to_string());
                    }
                }
            }
        }
    }

    /// Parse the named fields of a struct whose name sits at `name_idx`,
    /// into `fields`. Tuple and unit structs contribute nothing.
    fn struct_fields(
        &self,
        name: &str,
        name_idx: usize,
        fields: &mut HashMap<String, HashMap<String, String>>,
    ) {
        let Some(open) = self.find_fn_body_open(name_idx + 1) else {
            return;
        };
        let close = self.matching_close(open);
        let mut paren = 0i32;
        for k in open + 1..close {
            match &self.code[k].tok {
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => paren -= 1,
                Tok::Ident(fname)
                    if paren == 0
                        && self.punct_at(k + 1, ':')
                        && !self.punct_at(k + 2, ':')
                        && !(k > open && self.punct_at(k - 1, ':')) =>
                {
                    if let Some(ty) = self.base_type(k + 2, close) {
                        fields
                            .entry(name.to_string())
                            .or_default()
                            .insert(fname.clone(), ty);
                    }
                }
                _ => {}
            }
        }
    }

    /// Index of the `}` matching the `{` at `open`.
    fn matching_close(&self, open: usize) -> usize {
        let mut depth = 0i32;
        for i in open..self.code.len() {
            match &self.code[i].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        self.code.len()
    }

    fn run(mut self) -> FileModel {
        let mut fns: Vec<FnItem> = Vec::new();
        let mut loops: Vec<LoopItem> = Vec::new();
        let mut test_ranges: Vec<(usize, usize)> = Vec::new();
        let mut unsafe_lines: Vec<u32> = Vec::new();
        let mut aliases: HashMap<String, String> = HashMap::new();
        let mut type_names: BTreeSet<String> = BTreeSet::new();
        let mut type_fields: HashMap<String, HashMap<String, String>> = HashMap::new();
        let mut impl_traits: Vec<(String, String)> = Vec::new();
        // (body range, self type, trait) per impl block; (body range,
        // name) per trait block — fns inside inherit them post-scan.
        let mut impl_ranges: Vec<(usize, usize, Option<String>, Option<String>)> = Vec::new();
        let mut trait_ranges: Vec<(usize, usize, String)> = Vec::new();

        // Attribute state, reset after the next item.
        let mut pending_cfg_test = false;
        let mut pending_test_attr = false;

        let mut i = 0usize;
        while i < self.code.len() {
            let line = self.code[i].line;
            match &self.code[i].tok {
                // Attribute: #[...] or #![...]
                Tok::Punct('#') => {
                    let mut j = i + 1;
                    if self.punct_at(j, '!') {
                        j += 1;
                    }
                    if self.punct_at(j, '[') {
                        let mut depth = 0i32;
                        let mut idents: Vec<&str> = Vec::new();
                        let start = j;
                        while j < self.code.len() {
                            match &self.code[j].tok {
                                Tok::Punct('[') => depth += 1,
                                Tok::Punct(']') => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                Tok::Ident(s) => idents.push(s),
                                _ => {}
                            }
                            j += 1;
                        }
                        let has = |w: &str| idents.contains(&w);
                        if has("cfg") && has("test") && !has("not") {
                            pending_cfg_test = true;
                        } else if has("test") && !has("cfg") && !has("cfg_attr") && !has("not") {
                            pending_test_attr = true;
                        }
                        let _ = start;
                        i = j + 1;
                        continue;
                    }
                    i += 1;
                }
                Tok::Ident(kw) if kw == "fn" => {
                    // `fn(` is a fn-pointer type, not an item.
                    let Some(name) = self.ident_at(i + 1).map(str::to_string) else {
                        i += 1;
                        continue;
                    };
                    let in_test = pending_cfg_test
                        || pending_test_attr
                        || test_ranges.iter().any(|&(s, e)| i >= s && i < e);
                    // Attach the annotations written above this fn
                    // (annotation lines precede the `fn` keyword line);
                    // ones for later fns stay pending.
                    let mut annots: Vec<Annot> = Vec::new();
                    self.fn_annots_by_line.retain(|(l, a)| {
                        if *l <= line {
                            annots.push(a.clone());
                            false
                        } else {
                            true
                        }
                    });
                    pending_cfg_test = false;
                    pending_test_attr = false;
                    let body = match self.find_fn_body_open(i + 2) {
                        Some(open) => {
                            let close = self.matching_close(open);
                            if in_test {
                                test_ranges.push((open, close + 1));
                            }
                            Some((open + 1, close))
                        }
                        None => None,
                    };
                    fns.push(FnItem {
                        name,
                        line,
                        decl_idx: i,
                        self_ty: None,
                        in_trait: None,
                        body,
                        is_test: in_test,
                        annots,
                        calls: Vec::new(),
                        lock_acquires: Vec::new(),
                        binding_types: HashMap::new(),
                    });
                    i += 2;
                }
                Tok::Ident(kw) if kw == "mod" || kw == "impl" || kw == "trait" => {
                    // A #[cfg(test)] mod/impl/trait scopes a test range
                    // over its whole body. Annotations written above it
                    // do not leak into its first fn.
                    self.fn_annots_by_line.retain(|(l, _)| *l > line);
                    // impl/trait headers also carry the receiver facts
                    // the call graph disambiguates methods with.
                    let body_open = match kw.as_str() {
                        "impl" => {
                            let (open, ty, tr) = self.parse_impl_header(i + 1);
                            if let Some(t) = &ty {
                                type_names.insert(t.clone());
                                if let Some(tr) = &tr {
                                    impl_traits.push((t.clone(), tr.clone()));
                                }
                            }
                            if let Some(open) = open {
                                let close = self.matching_close(open);
                                impl_ranges.push((open + 1, close, ty, tr));
                            }
                            open
                        }
                        "trait" => {
                            let name = self.ident_at(i + 1).map(str::to_string);
                            if let Some(name) = &name {
                                type_names.insert(name.clone());
                            }
                            let (open, ..) = self.parse_impl_header(i + 2);
                            if let (Some(open), Some(name)) = (open, name) {
                                let close = self.matching_close(open);
                                trait_ranges.push((open + 1, close, name));
                            }
                            open
                        }
                        _ => {
                            let mut j = i + 1;
                            while j < self.code.len()
                                && !self.punct_at(j, '{')
                                && !self.punct_at(j, ';')
                            {
                                j += 1;
                            }
                            self.punct_at(j, '{').then_some(j)
                        }
                    };
                    if pending_cfg_test {
                        if let Some(open) = body_open {
                            let close = self.matching_close(open);
                            test_ranges.push((open, close + 1));
                        }
                        pending_cfg_test = false;
                    }
                    pending_test_attr = false;
                    i += 1;
                }
                Tok::Ident(kw) if kw == "use" => {
                    self.fn_annots_by_line.retain(|(l, _)| *l > line);
                    pending_test_attr = false;
                    pending_cfg_test = false;
                    i = self.scan_use(i + 1, &mut aliases);
                }
                Tok::Ident(kw) if kw == "for" || kw == "while" || kw == "loop" => {
                    // `impl Trait for Type` — not a loop: the `for` is
                    // preceded by a type (ident or `>`), a loop's `for`
                    // never is.
                    let prev_is_type = i > 0
                        && (matches!(&self.code[i - 1].tok, Tok::Ident(p)
                                if !matches!(p.as_str(), "if" | "else" | "return" | "break" | "match" | "in" | "unsafe" | "move" | "yield" | "do" | "await"))
                            || self.punct_at(i - 1, '>'));
                    if *kw == "for" && (prev_is_type || self.punct_at(i + 1, '<')) {
                        // `impl Trait for Type` or a higher-ranked
                        // bound `for<'a> Fn(..)` — not a loop.
                        i += 1;
                        continue;
                    }
                    let keyword: &'static str = match kw.as_str() {
                        "for" => "for",
                        "while" => "while",
                        _ => "loop",
                    };
                    if let Some(open) = self.find_loop_body_open(i + 1) {
                        let close = self.matching_close(open);
                        let in_test = test_ranges.iter().any(|&(s, e)| i >= s && i < e);
                        // The bounded(..) annotation binds to the next
                        // loop keyword that follows it in the source.
                        let bounded = {
                            let pos = self.bounded_by_line.iter().position(|(l, _)| *l <= line);
                            pos.map(|p| self.bounded_by_line.remove(p).1)
                        };
                        // fn_index resolved after the scan (fns vector
                        // still growing); store token idx for now.
                        loops.push(LoopItem {
                            keyword,
                            line,
                            body: (open + 1, close),
                            fn_index: Some(i), // placeholder: token idx
                            is_test: in_test,
                            bounded,
                        });
                    }
                    i += 1;
                }
                Tok::Ident(kw) if kw == "unsafe" => {
                    unsafe_lines.push(line);
                    i += 1;
                }
                Tok::Ident(kw) if ITEM_KEYWORDS.contains(&kw.as_str()) => {
                    if kw == "struct" || kw == "enum" {
                        if let Some(name) = self.ident_at(i + 1).map(str::to_string) {
                            type_names.insert(name.clone());
                            if kw == "struct" {
                                self.struct_fields(&name, i + 1, &mut type_fields);
                            }
                        }
                    }
                    self.fn_annots_by_line.retain(|(l, _)| *l > line);
                    pending_test_attr = false;
                    // cfg(test) on a struct/use has no body to scope;
                    // consume the flag.
                    pending_cfg_test = false;
                    i += 1;
                }
                Tok::Ident(kw) if FN_PREFIX_KEYWORDS.contains(&kw.as_str()) => {
                    // pub / const / async … may sit between an
                    // annotation (or attribute) and its fn: keep state.
                    i += 1;
                }
                _ => {
                    i += 1;
                }
            }
        }

        // Resolve loop → innermost enclosing fn.
        for l in &mut loops {
            let tok_idx = l.fn_index.take().unwrap_or(0);
            l.fn_index = fns
                .iter()
                .enumerate()
                .filter(|(_, f)| matches!(f.body, Some((s, e)) if tok_idx >= s && tok_idx < e))
                .min_by_key(|(_, f)| match f.body {
                    Some((s, e)) => e - s,
                    None => usize::MAX,
                })
                .map(|(idx, _)| idx);
        }

        // Attach each fn to the innermost enclosing impl (self type +
        // trait) or trait block, by the position of its `fn` keyword.
        for f in &mut fns {
            let impl_hit = impl_ranges
                .iter()
                .filter(|&&(s, e, ..)| f.decl_idx >= s && f.decl_idx < e)
                .min_by_key(|&&(s, e, ..)| e - s);
            if let Some((_, _, ty, tr)) = impl_hit {
                f.self_ty = ty.clone();
                f.in_trait = tr.clone();
            } else if let Some((_, _, name)) = trait_ranges
                .iter()
                .filter(|&&(s, e, _)| f.decl_idx >= s && f.decl_idx < e)
                .min_by_key(|&&(s, e, _)| e - s)
            {
                f.in_trait = Some(name.clone());
            }
        }

        // Call edges, lock acquisitions, receiver bindings, and
        // catch_unwind frontiers per fn body.
        let mut catch_ranges: Vec<(usize, usize)> = Vec::new();
        for f in &mut fns {
            f.binding_types = self.param_types(f.decl_idx);
            let Some((s, e)) = f.body else { continue };
            self.let_types((s, e), &mut f.binding_types);
            for i in s..e.min(self.code.len()) {
                let Some(name) = self.ident_at(i) else {
                    continue;
                };
                if !self.punct_at(i + 1, '(') {
                    continue;
                }
                if matches!(
                    name,
                    "if" | "while" | "for" | "match" | "return" | "fn" | "loop" | "move" | "in"
                ) {
                    continue;
                }
                if i > 0 && self.ident_at(i - 1) == Some("fn") {
                    continue; // nested fn definition, not a call
                }
                let line = self.code[i].line;
                if matches!(name, "lock" | "read" | "write")
                    && i > 0
                    && self.punct_at(i - 1, '.')
                    && self.punct_at(i + 2, ')')
                {
                    f.lock_acquires.push(LockAcquire {
                        method: name.to_string(),
                        idx: i,
                        line,
                    });
                }
                if name == "catch_unwind" {
                    // Calls inside the argument list cannot unwind past
                    // this frontier; R9 stops its walk here.
                    let close = matching_paren_in(&self.code, i + 1);
                    catch_ranges.push((i + 2, close));
                }
                let kind = if i > 0 && self.punct_at(i - 1, '.') {
                    let prev = self.ident_at(i.wrapping_sub(2));
                    let recv = match prev {
                        Some("self") if !(i >= 3 && self.punct_at(i - 3, '.')) => Recv::SelfDirect,
                        Some(fld)
                            if i >= 4
                                && self.punct_at(i - 3, '.')
                                && self.ident_at(i - 4) == Some("self")
                                && !(i >= 5 && self.punct_at(i - 5, '.')) =>
                        {
                            Recv::SelfField(fld.to_string())
                        }
                        Some(x)
                            if i >= 2
                                && !(i >= 3
                                    && (self.punct_at(i - 3, '.')
                                        || self.punct_at(i - 3, ':'))) =>
                        {
                            Recv::Ident(x.to_string())
                        }
                        _ => Recv::Opaque,
                    };
                    CallKind::Method { recv }
                } else if i >= 2 && self.punct_at(i - 1, ':') && self.punct_at(i - 2, ':') {
                    CallKind::Path {
                        qual: self.ident_at(i.wrapping_sub(3)).map(str::to_string),
                    }
                } else {
                    CallKind::Free
                };
                f.calls.push(Call {
                    name: name.to_string(),
                    idx: i,
                    line,
                    kind,
                });
            }
        }

        FileModel {
            rel_path: self.rel_path,
            class: self.class,
            code: self.code,
            fns,
            loops,
            allows: self.allows,
            safety_lines: self.safety_lines,
            annot_errors: self.annot_errors,
            unsafe_lines,
            aliases,
            lock_orders: self.lock_orders,
            catch_ranges,
            type_names,
            type_fields,
            impl_traits,
            test_ranges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build("crates/x/src/lib.rs", FileClass::Library, src)
    }

    #[test]
    fn finds_fns_and_bodies() {
        let m = model("fn a() { b(); }\npub const fn b() -> u64 { 1 }\nfn decl();");
        assert_eq!(m.fns.len(), 3);
        assert_eq!(m.fns[0].name, "a");
        assert!(m.fns[0].body.is_some());
        assert_eq!(m.fns[0].calls.len(), 1);
        assert_eq!(m.fns[0].calls[0].name, "b");
        assert_eq!(m.fns[1].name, "b");
        assert!(m.fns[2].body.is_none());
    }

    #[test]
    fn generic_signatures_and_where_clauses() {
        let m = model(
            "fn g<T: Into<Vec<u8>>>(x: T) -> Result<(), Box<dyn std::error::Error>>\n\
             where T: Clone { x.into(); }",
        );
        assert_eq!(m.fns.len(), 1);
        assert!(m.fns[0].body.is_some());
        assert_eq!(m.fns[0].calls.len(), 1);
    }

    #[test]
    fn cfg_test_mod_scopes_test_range() {
        let m = model(
            "fn live() { x.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}",
        );
        assert!(!m.fns[0].is_test);
        assert!(m.fns[1].is_test);
        let live_call = m.fns[0].calls.iter().find(|c| c.name == "unwrap").unwrap();
        assert!(!m.in_test_code(live_call.idx));
        let test_call = m.fns[1].calls.iter().find(|c| c.name == "unwrap").unwrap();
        assert!(m.in_test_code(test_call.idx));
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let m = model("#[cfg(not(test))]\nfn live() {}");
        assert!(!m.fns[0].is_test);
    }

    #[test]
    fn loops_and_impl_for_disambiguation() {
        let m = model(
            "impl Clone for Thing { fn clone(&self) -> Thing { Thing } }\n\
             fn f() { for x in 0..3 { g(x); } while a < b { } loop { break; } }",
        );
        assert_eq!(m.loops.len(), 3);
        assert_eq!(m.loops[0].keyword, "for");
        let f_idx = m.fns.iter().position(|f| f.name == "f").unwrap();
        assert_eq!(m.loops[0].fn_index, Some(f_idx));
    }

    #[test]
    fn fn_annotations_attach() {
        let m = model(
            "// audit: holds-lock(wal)\n// audit: pricing-entry\npub fn guarded() {}\n\
             // audit: lock-free\nstruct NotAFn;\nfn unannotated() {}",
        );
        assert!(m.fns[0].holds_lock("wal"));
        assert!(m.fns[0].is_pricing_entry());
        assert!(
            !m.fns[1].is_lock_free(),
            "annotation above struct must not leak"
        );
    }

    #[test]
    fn allow_binds_to_next_or_same_line() {
        let m = model(
            "// audit: allow(R2: trailing next line)\nfn a() { x.unwrap(); }\n\
             fn b() { y.unwrap(); } // audit: allow(R1: same line)",
        );
        assert!(m.allowed(2, "R2"));
        assert!(m.allowed(3, "R1"));
        assert!(!m.allowed(3, "R2"));
    }

    #[test]
    fn allow_skips_interleaved_attributes() {
        let m = model(
            "fn a() {\n    // audit: allow(R2: invariant)\n    #[allow(clippy::expect_used)]\n    let x = y.expect(\"m\");\n}",
        );
        assert!(m.allowed(4, "R2"), "allow must skip the attribute line");
        assert!(!m.allowed(3, "R2"));
    }

    #[test]
    fn bounded_binds_to_next_loop() {
        let m = model(
            "fn f() {\n    // audit: bounded(fixed 16 shards)\n    for s in shards { }\n    for t in others { }\n}",
        );
        assert_eq!(m.loops[0].bounded.as_deref(), Some("fixed 16 shards"));
        assert!(m.loops[1].bounded.is_none());
    }

    #[test]
    fn lock_acquires_need_empty_args() {
        let m = model(
            "fn f(buf: &mut [u8]) { let g = self.state.read(); file.read(buf); wal.lock(); }",
        );
        let acquires: Vec<&str> = m.fns[0]
            .lock_acquires
            .iter()
            .map(|a| a.method.as_str())
            .collect();
        assert_eq!(
            acquires,
            vec!["read", "lock"],
            "read(buf) is I/O, not a lock"
        );
    }

    #[test]
    fn unsafe_lines_and_safety_comments() {
        let m = model("// SAFETY: checked above\nfn f() { unsafe { g(); } }");
        assert_eq!(m.unsafe_lines, vec![2]);
        assert!(m.safety_lines.contains(&1));
    }

    #[test]
    fn annot_errors_are_collected() {
        let m = model("// audit: allow(R2)\nfn f() {}");
        assert_eq!(m.annot_errors.len(), 1);
    }

    #[test]
    fn impl_blocks_give_fns_a_self_type() {
        let m = model(
            "impl Market {\n    fn quote(&self) {}\n}\n\
             impl super::Ops for Durable {\n    fn run(&self) {}\n}\n\
             trait Ops {\n    fn default_run(&self) { helper(); }\n    fn decl(&self);\n}\n\
             fn free() {}",
        );
        let quote = m.fns.iter().find(|f| f.name == "quote").unwrap();
        assert_eq!(quote.self_ty.as_deref(), Some("Market"));
        assert_eq!(quote.in_trait, None);
        assert_eq!(quote.qual_name(), "Market::quote");
        let run = m.fns.iter().find(|f| f.name == "run").unwrap();
        assert_eq!(run.self_ty.as_deref(), Some("Durable"));
        assert_eq!(run.in_trait.as_deref(), Some("Ops"));
        assert_eq!(run.qual_name(), "Durable::run");
        let dflt = m.fns.iter().find(|f| f.name == "default_run").unwrap();
        assert_eq!(dflt.self_ty, None);
        assert_eq!(dflt.in_trait.as_deref(), Some("Ops"));
        assert_eq!(dflt.qual_name(), "Ops::default_run");
        let free = m.fns.iter().find(|f| f.name == "free").unwrap();
        assert_eq!(free.qual_name(), "free");
    }

    #[test]
    fn generic_impl_headers_resolve_the_base_type() {
        let m = model(
            "impl<T: Clone> Holder<T> where T: Send {\n    fn get(&self) {}\n}\n\
             impl fmt::Display for StoreError {\n    fn fmt(&self) {}\n}",
        );
        let get = m.fns.iter().find(|f| f.name == "get").unwrap();
        assert_eq!(get.self_ty.as_deref(), Some("Holder"));
        let f = m.fns.iter().find(|f| f.name == "fmt").unwrap();
        assert_eq!(f.self_ty.as_deref(), Some("StoreError"));
        assert_eq!(f.in_trait.as_deref(), Some("Display"));
    }

    #[test]
    fn use_renames_are_recorded() {
        let m = model(
            "use crate::market::quote_str as qs;\n\
             use std::io::{Read, Write as IoWrite};\n\
             use crate::wal::{self as walmod, Wal};\n\
             use plain::import;\n\
             fn f() { qs(); }",
        );
        assert_eq!(m.unalias("qs"), "quote_str");
        assert_eq!(m.unalias("IoWrite"), "Write");
        assert_eq!(m.unalias("walmod"), "wal");
        assert_eq!(m.unalias("import"), "import");
        assert_eq!(m.unalias("unrelated"), "unrelated");
    }

    #[test]
    fn call_kinds_capture_receiver_shape() {
        let m = model(
            "fn f(&self) {\n    free();\n    self.own();\n    self.field.other();\n    Wal::open();\n    x.method();\n    self.a.b.deep();\n    make().chained();\n}",
        );
        let kind = |name: &str| {
            m.fns[0]
                .calls
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.kind.clone())
                .unwrap()
        };
        assert_eq!(kind("free"), CallKind::Free);
        assert_eq!(
            kind("own"),
            CallKind::Method {
                recv: Recv::SelfDirect
            }
        );
        assert_eq!(
            kind("other"),
            CallKind::Method {
                recv: Recv::SelfField("field".into())
            }
        );
        assert_eq!(
            kind("method"),
            CallKind::Method {
                recv: Recv::Ident("x".into())
            }
        );
        assert_eq!(
            kind("deep"),
            CallKind::Method { recv: Recv::Opaque },
            "a three-segment receiver chain carries no type evidence"
        );
        assert_eq!(kind("chained"), CallKind::Method { recv: Recv::Opaque });
        assert_eq!(
            kind("open"),
            CallKind::Path {
                qual: Some("Wal".into())
            }
        );
    }

    #[test]
    fn struct_fields_and_type_names_are_recorded() {
        let m = model(
            "struct Market {\n    pub(crate) cache: ShardedQuoteCache,\n    wal: Mutex<Wal>,\n    state: Arc<RwLock<State>>,\n    shards: [RwLock<Map>; 16],\n}\n\
             struct Point(u32, u32);\nenum Kind { A, B }\ntrait Ops {}\nimpl Helper { fn h(&self) {} }",
        );
        let f = &m.type_fields["Market"];
        assert_eq!(f["cache"], "ShardedQuoteCache");
        assert_eq!(f["wal"], "Mutex", "the outer wrapper receives the methods");
        assert_eq!(f["state"], "RwLock", "Arc is transparent under Deref");
        assert!(
            !f.contains_key("shards"),
            "array types are not ident-shaped"
        );
        for t in ["Market", "Point", "Kind", "Ops", "Helper"] {
            assert!(m.type_names.contains(t), "{t} missing: {:?}", m.type_names);
        }
    }

    #[test]
    fn params_and_lets_yield_binding_types() {
        let m = model(
            "fn f<T: Into<Vec<u8>>>(wal: &mut Wal, n: usize, (a, b): (u32, u32), g: T) {\n\
             \x20   let mut h = FxHasher::default();\n\
             \x20   let v: Vec<u8> = make();\n\
             \x20   let e = Entry { x: 1 };\n\
             \x20   let opaque = self.shard(&key).write();\n\
             \x20   let lower = nothing();\n}",
        );
        let b = &m.fns[0].binding_types;
        assert_eq!(b.get("wal").map(String::as_str), Some("Wal"));
        assert_eq!(b.get("n").map(String::as_str), Some("usize"));
        assert_eq!(b.get("h").map(String::as_str), Some("FxHasher"));
        assert_eq!(b.get("v").map(String::as_str), Some("Vec"));
        assert_eq!(b.get("e").map(String::as_str), Some("Entry"));
        assert!(b.get("a").is_none(), "destructured params carry no binding");
        assert!(b.get("opaque").is_none(), "guard locals are untyped");
        assert!(b.get("lower").is_none(), "free-call RHS is untyped");
    }

    #[test]
    fn impl_trait_pairs_are_recorded() {
        let m =
            model("impl Ops for Market { fn run(&self) {} }\nimpl Market { fn quote(&self) {} }");
        assert_eq!(
            m.impl_traits,
            vec![("Market".to_string(), "Ops".to_string())]
        );
    }

    #[test]
    fn catch_unwind_ranges_cover_the_argument_list() {
        let m = model("fn f() {\n    let r = catch_unwind(|| inner());\n    after();\n}");
        assert_eq!(m.catch_ranges.len(), 1);
        let (s, e) = m.catch_ranges[0];
        let inner = m.fns[0].calls.iter().find(|c| c.name == "inner").unwrap();
        let after = m.fns[0].calls.iter().find(|c| c.name == "after").unwrap();
        assert!(inner.idx >= s && inner.idx < e);
        assert!(!(after.idx >= s && after.idx < e));
    }

    #[test]
    fn lock_order_declarations_are_file_scoped() {
        let m = model("// audit: lock-order(wal < cache-shard)\nfn f() {}");
        assert_eq!(m.lock_orders.len(), 1);
        assert_eq!(
            m.lock_orders[0].1,
            vec!["wal".to_string(), "cache-shard".to_string()]
        );
        assert!(
            m.fns[0].annots.is_empty(),
            "lock-order must not attach to the next fn"
        );
    }
}
