//! The `// audit:` annotation grammar.
//!
//! Annotations are ordinary line comments the auditor reads back out of
//! the token stream. The grammar (documented in DESIGN §5):
//!
//! ```text
//! // audit: allow(R1: reason)      silence one rule on the next code line
//! //                               (or this line, if trailing)
//! // audit: holds-lock(wal)        this fn acquires/holds the named lock
//! // audit: lock-free              this fn must not take any lock
//! // audit: wait-free              this fn is a telemetry hot-path record
//! //                               point: no lock acquisition reachable
//! // audit: pricing-entry          this fn is a pricing-engine entry point
//! // audit: bounded(reason)        the next loop is trivially bounded
//! // audit: panic-ok(reason)       this fn's panics are accepted: R9's
//! //                               reachability walk stops here
//! // audit: lock-order(a < b)      declared acquisition order: `a` is
//! //                               always taken before `b` (feeds R7's
//! //                               lock graph as an explicit edge)
//! ```
//!
//! `allow`, `bounded`, and `panic-ok` **require a reason** — an
//! annotation that disables a check without saying why is itself a
//! diagnostic ([`AnnotError`]), so the escape hatch cannot silently rot.

use std::fmt;

/// One parsed `// audit:` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Annot {
    /// `allow(R2: reason)` — suppress `rule` on the annotated line.
    Allow {
        /// Rule id, e.g. `R2`.
        rule: String,
        /// Mandatory justification.
        reason: String,
    },
    /// `holds-lock(name)` — the next fn holds the named lock.
    HoldsLock(String),
    /// `lock-free` — the next fn must not acquire any lock.
    LockFree,
    /// `wait-free` — the next fn is a telemetry record point (R6): no
    /// lock acquisition may be reachable from it, even transitively.
    WaitFree,
    /// `pricing-entry` — the next fn is a pricing-engine entry point.
    PricingEntry,
    /// `bounded(reason)` — the next loop is exempt from R4.
    Bounded(String),
    /// `panic-ok(reason)` — the next fn's panics are deliberate; R9's
    /// reachability walk neither reports them nor descends further.
    PanicOk(String),
    /// `lock-order(a < b < …)` — a declared acquisition order. File
    /// scoped, not fn-attached: each adjacent pair becomes an explicit
    /// edge in R7's lock graph, so an inversion elsewhere is a cycle.
    LockOrder(Vec<String>),
}

/// A malformed `// audit:` comment (reported as a diagnostic: a broken
/// annotation must never silently become a no-op).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotError {
    /// What is wrong with the annotation.
    pub message: String,
}

impl fmt::Display for AnnotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

fn err(message: impl Into<String>) -> AnnotError {
    AnnotError {
        message: message.into(),
    }
}

/// Parse the text of a line comment. Returns `Ok(None)` when the
/// comment is not an audit annotation at all.
pub fn parse(comment_text: &str) -> Result<Option<Annot>, AnnotError> {
    let text = comment_text.trim();
    let Some(body) = text.strip_prefix("audit:") else {
        return Ok(None);
    };
    let body = body.trim();
    if body == "lock-free" {
        return Ok(Some(Annot::LockFree));
    }
    if body == "wait-free" {
        return Ok(Some(Annot::WaitFree));
    }
    if body == "pricing-entry" {
        return Ok(Some(Annot::PricingEntry));
    }
    if let Some(args) = call_args(body, "holds-lock")? {
        if args.trim().is_empty() {
            return Err(err("holds-lock needs a lock name: holds-lock(wal)"));
        }
        return Ok(Some(Annot::HoldsLock(args.trim().to_string())));
    }
    if let Some(args) = call_args(body, "bounded")? {
        if args.trim().is_empty() {
            return Err(err("bounded needs a reason: bounded(shards are fixed)"));
        }
        return Ok(Some(Annot::Bounded(args.trim().to_string())));
    }
    if let Some(args) = call_args(body, "panic-ok")? {
        if args.trim().is_empty() {
            return Err(err(
                "panic-ok needs a reason: panic-ok(why this cannot fire)",
            ));
        }
        return Ok(Some(Annot::PanicOk(args.trim().to_string())));
    }
    if let Some(args) = call_args(body, "lock-order")? {
        let locks: Vec<String> = args.split('<').map(|s| s.trim().to_string()).collect();
        if locks.len() < 2 || locks.iter().any(String::is_empty) {
            return Err(err(
                "lock-order needs two or more `<`-separated lock names: lock-order(wal < cache-shard)",
            ));
        }
        return Ok(Some(Annot::LockOrder(locks)));
    }
    if let Some(args) = call_args(body, "allow")? {
        let (rule, reason) = match args.split_once(':') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (args.trim(), ""),
        };
        if !is_rule_id(rule) {
            return Err(err(format!("allow needs a rule id R1..R9, got `{rule}`")));
        }
        if reason.is_empty() {
            return Err(err(format!(
                "allow({rule}) needs a reason: allow({rule}: why this is sound)"
            )));
        }
        return Ok(Some(Annot::Allow {
            rule: rule.to_string(),
            reason: reason.to_string(),
        }));
    }
    Err(err(format!(
        "unknown audit annotation `{body}` (expected allow(..), \
         holds-lock(..), lock-free, wait-free, pricing-entry, bounded(..), \
         panic-ok(..), or lock-order(..))"
    )))
}

/// `name(args)` → `Some(args)`; `name` without parens → error; other
/// heads → `None`.
fn call_args<'a>(body: &'a str, name: &str) -> Result<Option<&'a str>, AnnotError> {
    let Some(rest) = body.strip_prefix(name) else {
        return Ok(None);
    };
    let rest = rest.trim();
    let Some(inner) = rest.strip_prefix('(') else {
        return Err(err(format!("`{name}` needs parenthesized arguments")));
    };
    let Some(inner) = inner.strip_suffix(')') else {
        return Err(err(format!("unclosed `{name}(`")));
    };
    Ok(Some(inner))
}

fn is_rule_id(s: &str) -> bool {
    let mut chars = s.chars();
    chars.next() == Some('R') && s.len() >= 2 && chars.all(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_annotations_pass_through() {
        assert_eq!(parse(" just a comment"), Ok(None));
        assert_eq!(parse("SAFETY: fine"), Ok(None));
    }

    #[test]
    fn allow_with_reason() {
        assert_eq!(
            parse(" audit: allow(R2: fault injection exists to panic)"),
            Ok(Some(Annot::Allow {
                rule: "R2".into(),
                reason: "fault injection exists to panic".into()
            }))
        );
    }

    #[test]
    fn allow_without_reason_is_an_error() {
        assert!(parse(" audit: allow(R2)").is_err());
        assert!(parse(" audit: allow(R2: )").is_err());
        assert!(parse(" audit: allow(nonsense: x)").is_err());
    }

    #[test]
    fn lock_annotations() {
        assert_eq!(
            parse(" audit: holds-lock(wal)"),
            Ok(Some(Annot::HoldsLock("wal".into())))
        );
        assert_eq!(parse(" audit: lock-free"), Ok(Some(Annot::LockFree)));
        assert_eq!(parse(" audit: wait-free"), Ok(Some(Annot::WaitFree)));
        assert_eq!(
            parse(" audit: pricing-entry"),
            Ok(Some(Annot::PricingEntry))
        );
        assert!(parse(" audit: holds-lock()").is_err());
        assert!(parse(" audit: holds-lock").is_err());
    }

    #[test]
    fn bounded_needs_reason() {
        assert_eq!(
            parse(" audit: bounded(16 shards)"),
            Ok(Some(Annot::Bounded("16 shards".into())))
        );
        assert!(parse(" audit: bounded()").is_err());
    }

    #[test]
    fn unknown_annotation_is_an_error() {
        assert!(parse(" audit: alow(R2: typo)").is_err());
    }

    #[test]
    fn panic_ok_needs_reason() {
        assert_eq!(
            parse(" audit: panic-ok(poisoned mutex means a prior panic)"),
            Ok(Some(Annot::PanicOk(
                "poisoned mutex means a prior panic".into()
            )))
        );
        assert!(parse(" audit: panic-ok()").is_err());
        assert!(parse(" audit: panic-ok").is_err());
    }

    #[test]
    fn lock_order_parses_chains() {
        assert_eq!(
            parse(" audit: lock-order(wal < cache-shard)"),
            Ok(Some(Annot::LockOrder(vec![
                "wal".into(),
                "cache-shard".into()
            ])))
        );
        assert_eq!(
            parse(" audit: lock-order(a < b < c)"),
            Ok(Some(Annot::LockOrder(vec![
                "a".into(),
                "b".into(),
                "c".into()
            ])))
        );
        assert!(parse(" audit: lock-order(one)").is_err());
        assert!(parse(" audit: lock-order(a < )").is_err());
    }
}
