//! The `qbdp-audit` command-line front end.
//!
//! ```text
//! cargo run -p qbdp-audit -- [--deny-all] [--root PATH] [--rule R#]...
//!                            [--format human|json] [--baseline PATH]
//! ```
//!
//! Human output is one `file:line: RULE: message` per finding; `--format
//! json` emits an array of findings with stable, line-number-free IDs
//! (see `qbdp_audit::report`). With `--baseline PATH`, only findings
//! whose IDs are absent from the baseline file gate the exit code, and
//! baselined IDs that no longer fire are reported as fixed. Exit code 0
//! when clean (or advisory mode), 1 when `--deny-all` and gating
//! findings exist, 2 on usage/IO errors.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use qbdp_audit::{audit_workspace, report, source, Config};
use std::path::PathBuf;
use std::process::ExitCode;

/// Every rule the engine knows; `--rule` validates against this and the
/// "clean" banner counts it.
const RULES: [&str; 10] = ["R0", "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9"];

enum Format {
    Human,
    Json,
}

struct Args {
    deny_all: bool,
    root: Option<PathBuf>,
    rules: Vec<String>,
    format: Format,
    baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny_all: false,
        root: None,
        rules: Vec::new(),
        format: Format::Human,
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-all" => args.deny_all = true,
            "--root" => {
                let p = it.next().ok_or("--root requires a path")?;
                args.root = Some(PathBuf::from(p));
            }
            "--rule" => {
                let r = it.next().ok_or("--rule requires an id (e.g. R2)")?;
                if !RULES.contains(&r.as_str()) {
                    return Err(format!("unknown rule id `{r}` (expected R0..R9)"));
                }
                args.rules.push(r);
            }
            "--format" => {
                let f = it.next().ok_or("--format requires `human` or `json`")?;
                args.format = match f.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (human|json)")),
                };
            }
            "--baseline" => {
                let p = it.next().ok_or("--baseline requires a path")?;
                args.baseline = Some(PathBuf::from(p));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: qbdp-audit [--deny-all] [--root PATH] [--rule R#]... \
                     [--format human|json] [--baseline PATH]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = source::find_root(args.root.as_deref()) else {
        eprintln!("could not locate workspace root (try --root PATH)");
        return ExitCode::from(2);
    };
    let (ws, diags) = match audit_workspace(&root, &Config::workspace_defaults()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit failed reading {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let diags: Vec<_> = diags
        .into_iter()
        .filter(|d| args.rules.is_empty() || args.rules.iter().any(|r| r == d.rule))
        .collect();
    let findings = report::findings(&ws, &diags);
    let baseline = match &args.baseline {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => Some(report::parse_baseline(&text)),
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    // What gates: everything, or only findings not in the baseline.
    let empty = std::collections::BTreeSet::new();
    let (gating, fixed) = match &baseline {
        Some(b) => report::diff_baseline(&findings, b),
        None => report::diff_baseline(&findings, &empty),
    };
    match args.format {
        Format::Json => print!("{}", report::to_json(&findings)),
        Format::Human => {
            for f in &findings {
                let suffix = if baseline.is_some() && !gating.iter().any(|g| g.id == f.id) {
                    " [baselined]"
                } else {
                    ""
                };
                println!("{}{suffix}", f.diag);
            }
        }
    }
    for id in &fixed {
        eprintln!("qbdp-audit: baselined finding no longer fires (prune it): {id}");
    }
    if matches!(args.format, Format::Human) {
        if findings.is_empty() {
            println!("qbdp-audit: clean ({} rules enforced)", RULES.len());
        } else {
            println!(
                "qbdp-audit: {} finding(s), {} gating",
                findings.len(),
                gating.len()
            );
        }
    }
    if args.deny_all && !gating.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
