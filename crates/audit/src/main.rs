//! The `qbdp-audit` command-line front end.
//!
//! ```text
//! cargo run -p qbdp-audit -- [--deny-all] [--root PATH] [--rule R#]...
//! ```
//!
//! Prints one `file:line: RULE: message` per finding. Exit code 0 when
//! clean (or advisory mode), 1 when `--deny-all` and findings exist,
//! 2 on usage/IO errors.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use qbdp_audit::{audit_root, source, Config};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    deny_all: bool,
    root: Option<PathBuf>,
    rules: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny_all: false,
        root: None,
        rules: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-all" => args.deny_all = true,
            "--root" => {
                let p = it.next().ok_or("--root requires a path")?;
                args.root = Some(PathBuf::from(p));
            }
            "--rule" => {
                let r = it.next().ok_or("--rule requires an id (e.g. R2)")?;
                if !matches!(r.as_str(), "R0" | "R1" | "R2" | "R3" | "R4" | "R5" | "R6") {
                    return Err(format!("unknown rule id `{r}` (expected R0..R6)"));
                }
                args.rules.push(r);
            }
            "--help" | "-h" => {
                return Err("usage: qbdp-audit [--deny-all] [--root PATH] [--rule R#]...".into())
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = source::find_root(args.root.as_deref()) else {
        eprintln!("could not locate workspace root (try --root PATH)");
        return ExitCode::from(2);
    };
    let diags = match audit_root(&root, &Config::workspace_defaults()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("audit failed reading {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let diags: Vec<_> = diags
        .into_iter()
        .filter(|d| args.rules.is_empty() || args.rules.iter().any(|r| r == d.rule))
        .collect();
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("qbdp-audit: clean ({} rules enforced)", 6);
        ExitCode::SUCCESS
    } else {
        println!("qbdp-audit: {} finding(s)", diags.len());
        if args.deny_all {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
