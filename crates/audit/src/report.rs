//! Machine-readable findings: stable IDs, JSON rendering, and baseline
//! diffing.
//!
//! A finding's identity must survive unrelated edits — a baseline keyed
//! on line numbers churns on every refactor and trains people to
//! regenerate it blindly. IDs are therefore built from what the finding
//! *is*, never where it sits:
//!
//! ```text
//! R7:crates/market/src/cache.rs:ShardedQuoteCache::insert#1
//! ```
//!
//! rule, workspace-relative path (normalized to `/` separators), the
//! qualified name of the innermost enclosing fn (empty for file-level
//! findings), and a 1-based occurrence counter among findings sharing
//! that (rule, file, symbol) triple, in diagnostic order. Moving a fn
//! within its file, reformatting, or adding code above it does not
//! change its findings' IDs; only fixing (or introducing) a finding in
//! the same fn shifts the counters after it.
//!
//! A baseline is a text file of accepted IDs, one per line (`#`
//! comments and blank lines ignored). [`diff_baseline`] splits current
//! findings into *new* (not in the baseline — these gate CI) and
//! reports *fixed* entries (baselined IDs no longer firing — prune them
//! on the next regeneration).

use crate::model::FileModel;
use crate::rules::{Diagnostic, Workspace};
use std::collections::BTreeSet;

/// One finding with its stable identity attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable ID: `rule:file:symbol#occurrence`.
    pub id: String,
    /// The underlying diagnostic.
    pub diag: Diagnostic,
    /// Qualified name of the innermost enclosing fn (`Market::insert`),
    /// empty for findings outside any fn.
    pub symbol: String,
}

/// Attach stable IDs to `diags` (which must be the sorted output of
/// [`run_all`](crate::rules::run_all) over `ws`).
pub fn findings(ws: &Workspace, diags: &[Diagnostic]) -> Vec<Finding> {
    let mut counts: std::collections::HashMap<(String, String, String), u32> =
        std::collections::HashMap::new();
    diags
        .iter()
        .map(|d| {
            let symbol = ws
                .files
                .iter()
                .find(|f| f.rel_path == d.file)
                .and_then(|f| enclosing_fn(f, d.line))
                .unwrap_or_default();
            let file = d.file.replace('\\', "/");
            let key = (d.rule.to_string(), file.clone(), symbol.clone());
            let n = counts.entry(key).or_insert(0);
            *n += 1;
            Finding {
                id: format!("{}:{file}:{symbol}#{n}", d.rule),
                diag: d.clone(),
                symbol,
            }
        })
        .collect()
}

/// The qualified name of the innermost fn whose span covers `line`.
fn enclosing_fn(f: &FileModel, line: u32) -> Option<String> {
    f.fns
        .iter()
        .filter(|g| {
            let Some((_, e)) = g.body else { return false };
            let end = f.code.get(e.saturating_sub(1)).map_or(g.line, |t| t.line);
            g.line <= line && line <= end
        })
        // Innermost = the latest-starting fn still covering the line
        // (nested fns start later than their enclosers).
        .max_by_key(|g| g.line)
        .map(|g| g.qual_name())
}

/// Render findings as a JSON array (stable key order, sorted input
/// preserved). Dependency-free by construction, like the rest of the
/// crate.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"id\":{},\"rule\":{},\"file\":{},\"line\":{},\"symbol\":{},\"message\":{}}}",
            json_str(&f.id),
            json_str(f.diag.rule),
            json_str(&f.diag.file),
            f.diag.line,
            json_str(&f.symbol),
            json_str(&f.diag.message),
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Escape `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a baseline file: one accepted finding ID per line, `#`
/// comments and blank lines ignored.
pub fn parse_baseline(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Split `current` against a baseline: findings whose IDs are *not*
/// baselined (these gate), and baselined IDs that no longer fire
/// (fixed — prune them from the file).
pub fn diff_baseline<'a>(
    current: &'a [Finding],
    baseline: &BTreeSet<String>,
) -> (Vec<&'a Finding>, Vec<String>) {
    let live: BTreeSet<&str> = current.iter().map(|f| f.id.as_str()).collect();
    let new: Vec<&Finding> = current
        .iter()
        .filter(|f| !baseline.contains(&f.id))
        .collect();
    let fixed: Vec<String> = baseline
        .iter()
        .filter(|id| !live.contains(id.as_str()))
        .cloned()
        .collect();
    (new, fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileModel;
    use crate::rules::{run_all, Config};
    use crate::source::classify;

    fn findings_for(files: &[(&str, &str)]) -> Vec<Finding> {
        let ws = Workspace::new(
            files
                .iter()
                .map(|(p, s)| FileModel::build(p, classify(p), s))
                .collect(),
        );
        let diags = run_all(&ws, &Config::workspace_defaults());
        findings(&ws, &diags)
    }

    const VIOLATION: &str =
        "impl Ledger {\n    fn tally(&self) {\n        self.file.sync_all().unwrap();\n    }\n}";

    #[test]
    fn ids_name_the_symbol_not_the_line() {
        let a = findings_for(&[("crates/market/src/ledger.rs", VIOLATION)]);
        // Same fn, pushed down by new code above it: the ID must not move.
        let shifted = format!("fn other() {{}}\n\n\n{VIOLATION}");
        let b = findings_for(&[("crates/market/src/ledger.rs", &shifted)]);
        assert_eq!(a.len(), 1, "{a:?}");
        assert_eq!(a[0].id, "R2:crates/market/src/ledger.rs:Ledger::tally#1");
        assert_eq!(a[0].id, b[0].id);
        assert_ne!(a[0].diag.line, b[0].diag.line, "the line did move");
    }

    #[test]
    fn occurrences_disambiguate_repeats_in_one_fn() {
        let src = "impl Ledger {\n    fn tally(&self) {\n        self.a().unwrap();\n        self.b().unwrap();\n    }\n}";
        let f = findings_for(&[("crates/market/src/ledger.rs", src)]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].id.ends_with("Ledger::tally#1"), "{}", f[0].id);
        assert!(f[1].id.ends_with("Ledger::tally#2"), "{}", f[1].id);
    }

    #[test]
    fn file_level_findings_get_an_empty_symbol() {
        // A malformed annotation outside any fn.
        let f = findings_for(&[(
            "crates/market/src/ledger.rs",
            "// audit: allow(R2\nfn ok() {}",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].id, "R0:crates/market/src/ledger.rs:#1");
    }

    #[test]
    fn json_is_wellformed_and_escapes() {
        let f = findings_for(&[("crates/market/src/ledger.rs", VIOLATION)]);
        let j = to_json(&f);
        assert!(j.starts_with("[\n  {\"id\":\"R2:"), "{j}");
        assert!(j.ends_with("}\n]\n"), "{j}");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(to_json(&[]), "[]\n");
    }

    #[test]
    fn baseline_diff_splits_new_and_fixed() {
        let f = findings_for(&[("crates/market/src/ledger.rs", VIOLATION)]);
        let baseline = parse_baseline(
            "# accepted findings\nR2:crates/market/src/ledger.rs:Ledger::tally#1\nR9:crates/query/src/eval.rs:eval_cq#1\n",
        );
        let (new, fixed) = diff_baseline(&f, &baseline);
        assert!(new.is_empty(), "baselined finding must not gate: {new:?}");
        assert_eq!(
            fixed,
            vec!["R9:crates/query/src/eval.rs:eval_cq#1".to_string()]
        );
        let (new, fixed) = diff_baseline(&f, &BTreeSet::new());
        assert_eq!(new.len(), 1);
        assert!(fixed.is_empty());
    }
}
