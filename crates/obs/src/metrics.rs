//! The static metrics registry: wait-free counters, gauges, and
//! log₂-bucketed histograms.
//!
//! # Wait-freedom
//!
//! The record path must never serialize two pricing workers. Counters
//! and histograms are therefore **sharded**: [`SHARDS`] independent,
//! cache-line-padded cells, and each thread picks one shard once (a
//! monotonically assigned thread-local index) and only ever touches
//! that shard with relaxed `fetch_add`s. Two threads on different
//! shards never contend; a read merges all shards. There is no lock
//! anywhere on the record path — audit rule R6 walks every `record*`
//! entry point transitively and rejects any reachable
//! `Mutex`/`RwLock` acquisition.
//!
//! # Catalog, not strings
//!
//! The metric set is a closed catalog ([`Ctr`], [`Gauge`], [`Hst`]):
//! recording indexes a fixed array, so there is no name hashing, no
//! registration race, and the exporters can enumerate everything
//! deterministically. The global registry is a `static`; tests build
//! private [`Registry`] values so goldens never see cross-test noise.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Number of per-thread counter shards. A power of two (thread index is
/// masked); 16 matches the pricing host's realistic worker counts, same
/// reasoning as the quote cache's shard count.
pub const SHARDS: usize = 16;

/// Number of histogram buckets: finite upper bounds `2^0 .. 2^30`, plus
/// a final overflow (`+Inf`) bucket.
pub const NBUCKETS: usize = 32;

/// The global on/off switch (`MarketPolicy::telemetry`). Off is the
/// default: a disabled record call is one relaxed load and a branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Flip telemetry recording on or off (process-wide).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is telemetry recording enabled?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The shard this thread owns: assigned round-robin on first use, then
/// cached in a thread-local. Wait-free (one `fetch_add` ever per
/// thread, then a plain `Cell` read).
#[inline]
fn shard_idx() -> usize {
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            v
        } else {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            let v = NEXT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
            c.set(v);
            v
        }
    })
}

/// One cache line per shard so two threads' `fetch_add`s never bounce
/// the same line.
#[repr(align(64))]
struct Slot(AtomicU64);

impl Slot {
    const fn new() -> Slot {
        Slot(AtomicU64::new(0))
    }
}

/// A monotone counter, sharded per thread. Record is one relaxed
/// `fetch_add` on a thread-private line; read merges the shards.
pub struct Counter {
    shards: [Slot; SHARDS],
}

impl Counter {
    /// A zeroed counter (const so registries can be `static`).
    pub const fn new() -> Counter {
        Counter {
            shards: [const { Slot::new() }; SHARDS],
        }
    }

    /// Add `n`. Wait-free.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_idx()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Merged total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

/// A last-value-wins gauge. Single cell: gauges are set from already
/// serialized paths (admission, health flips), not from hot loops.
pub struct GaugeCell {
    value: AtomicU64,
}

impl GaugeCell {
    /// A zeroed gauge.
    pub const fn new() -> GaugeCell {
        GaugeCell {
            value: AtomicU64::new(0),
        }
    }

    /// Set the current value. Wait-free.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Read the current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for GaugeCell {
    fn default() -> GaugeCell {
        GaugeCell::new()
    }
}

/// One thread-shard of a histogram: the per-bucket tallies plus the
/// running count and sum, padded to its own cache-line start.
#[repr(align(64))]
struct HistShard {
    buckets: [AtomicU64; NBUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistShard {
    const fn new() -> HistShard {
        HistShard {
            buckets: [const { AtomicU64::new(0) }; NBUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in. Bucket `i` covers
/// `(2^(i-1), 2^i]` (bucket 0 covers `0..=1`), so a value that is an
/// exact power of two `2^k` lands in the bucket whose upper bound is
/// `2^k` — boundaries are exact, never off by one. Values past `2^30`
/// land in the final `+Inf` bucket.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        let b = 64 - ((v - 1).leading_zeros() as usize);
        if b < NBUCKETS {
            b
        } else {
            NBUCKETS - 1
        }
    }
}

/// The inclusive upper bound of bucket `i`, or `None` for the final
/// `+Inf` bucket.
pub fn bucket_le(i: usize) -> Option<u64> {
    if i + 1 >= NBUCKETS {
        None
    } else {
        Some(1u64 << i)
    }
}

/// A log₂-bucketed histogram, sharded per thread like [`Counter`].
/// Recording touches three relaxed atomics on a thread-private region;
/// reads merge the shards into a [`HistSnapshot`].
pub struct Hist {
    shards: [HistShard; SHARDS],
}

/// The merged, point-in-time view of a [`Hist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Non-cumulative per-bucket tallies ([`bucket_le`] gives bounds).
    pub buckets: [u64; NBUCKETS],
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping; microseconds in practice).
    pub sum: u64,
}

impl Hist {
    /// A zeroed histogram (const so registries can be `static`).
    pub const fn new() -> Hist {
        Hist {
            shards: [const { HistShard::new() }; SHARDS],
        }
    }

    /// Record one value. Wait-free.
    #[inline]
    pub fn observe(&self, v: u64) {
        let s = &self.shards[shard_idx()];
        s.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Merge every shard into one snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut out = HistSnapshot {
            buckets: [0; NBUCKETS],
            count: 0,
            sum: 0,
        };
        for s in &self.shards {
            for (o, b) in out.buckets.iter_mut().zip(s.buckets.iter()) {
                *o = o.wrapping_add(b.load(Ordering::Relaxed));
            }
            out.count = out.count.wrapping_add(s.count.load(Ordering::Relaxed));
            out.sum = out.sum.wrapping_add(s.sum.load(Ordering::Relaxed));
        }
        out
    }
}

impl Default for Hist {
    fn default() -> Hist {
        Hist::new()
    }
}

macro_rules! catalog {
    ($(#[$meta:meta])* $vis:vis enum $name:ident { $($variant:ident => ($pname:expr, $help:expr),)+ }) => {
        $(#[$meta])*
        $vis enum $name {
            $(
                #[doc = $help]
                $variant,
            )+
        }

        impl $name {
            /// Every metric in this catalog, in export order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// The exported (Prometheus) metric name.
            pub fn name(self) -> &'static str {
                match self { $($name::$variant => $pname,)+ }
            }

            /// The one-line help string.
            pub fn help(self) -> &'static str {
                match self { $($name::$variant => $help,)+ }
            }
        }
    };
}

catalog! {
    /// The counter catalog. Closed set: adding a metric means adding a
    /// variant here (and it shows up in both exporters automatically).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Ctr {
        MarketQuotes => ("qbdp_market_quotes_total", "Quotes served (exact or degraded)"),
        MarketQuotesDegraded => ("qbdp_market_quotes_degraded_total", "Quotes served with a degraded [lower, upper] interval"),
        MarketPurchases => ("qbdp_market_purchases_total", "Completed purchases"),
        MarketCacheHits => ("qbdp_market_cache_hits_total", "Sharded quote-cache hits (fresh stamp)"),
        MarketCacheMisses => ("qbdp_market_cache_misses_total", "Sharded quote-cache misses (absent or stale stamp)"),
        MarketInvalidations => ("qbdp_market_invalidations_total", "Cache invalidation sweeps (one per data/price mutation)"),
        MarketColumnsInvalidated => ("qbdp_market_columns_invalidated_total", "Column epochs bumped across all invalidations"),
        MarketAdmissionRejects => ("qbdp_market_admission_rejects_total", "Quotes refused by max_in_flight admission control"),
        MarketHealthFlips => ("qbdp_market_health_flips_total", "MarketHealth transitions to ReadOnly"),
        MarketPanicsContained => ("qbdp_market_panics_contained_total", "Pricing panics caught and converted to MarketError::Internal"),
        MarketPurchaseRetries => ("qbdp_market_purchase_retries_total", "Durable purchase epoch-revalidation retries"),
        MarketPurchaseContended => ("qbdp_market_purchase_contended_total", "Durable purchases abandoned as Contended after the retry cap"),
        PlanCacheHits => ("qbdp_plan_cache_hits_total", "Plan-cache lookups served with an unchanged price vector"),
        PlanCacheMisses => ("qbdp_plan_cache_misses_total", "Plan-cache lookups that built a plan from scratch"),
        PlanCacheWarmReprices => ("qbdp_plan_cache_warm_reprices_total", "Plan-cache lookups repriced from a residual warm start"),
        PlanCacheFlowFallbacks => ("qbdp_plan_cache_flow_fallbacks_total", "Warm reprices that fell back to a cold flow solve"),
        PlanCacheEvictions => ("qbdp_plan_cache_evictions_total", "Plan-cache entries evicted (capacity or invalidation)"),
        BudgetExhaustedFlow => ("qbdp_budget_exhausted_flow_total", "Budget exhaustions surfaced inside the flow engines"),
        BudgetExhaustedSubset => ("qbdp_budget_exhausted_subset_total", "Budget exhaustions surfaced inside subset-search pricing"),
        BudgetExhaustedCerts => ("qbdp_budget_exhausted_certs_total", "Budget exhaustions surfaced inside certificate enumeration"),
        BudgetExhaustedStep3 => ("qbdp_budget_exhausted_step3_total", "Budget exhaustions surfaced inside Step-3 normalization"),
        FlowSolvesCold => ("qbdp_flow_solves_cold_total", "Cold Dinic max-flow solves"),
        FlowSolvesWarm => ("qbdp_flow_solves_warm_total", "Residual warm-start solves that repaired in place"),
        FlowWarmFallbacks => ("qbdp_flow_warm_fallbacks_total", "Warm starts that gave up and re-solved cold"),
        FlowFuelSpent => ("qbdp_flow_fuel_spent_total", "Fuel units charged by flow phase metering"),
        FlowArenaReuses => ("qbdp_flow_arena_reuses_total", "Dinic solves that recycled an arena residual buffer"),
        StoreWalAppends => ("qbdp_store_wal_appends_total", "WAL records appended"),
        StoreWalRetries => ("qbdp_store_wal_retries_total", "Transient WAL I/O faults retried away"),
        StoreSnapshots => ("qbdp_store_snapshots_total", "Snapshots written"),
        StoreCompactions => ("qbdp_store_compactions_total", "Two-phase compactions completed"),
        FlightCaptures => ("qbdp_flight_captures_total", "Span trees captured by the flight recorder"),
        ServeConnsAccepted => ("qbdp_serve_conns_accepted_total", "TCP connections accepted into the serving table"),
        ServeConnsRejected => ("qbdp_serve_conns_rejected_total", "TCP connections refused 503 at the max_conns cap"),
        ServeRequests => ("qbdp_serve_requests_total", "Complete HTTP requests handled by the quote server"),
        ServeHttpErrors => ("qbdp_serve_http_errors_total", "HTTP framing errors answered 400/413 and closed"),
    }
}

catalog! {
    /// The gauge catalog.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Gauge {
        InFlight => ("qbdp_market_in_flight", "Quotes currently admitted and being priced"),
        HealthReadOnly => ("qbdp_market_health_read_only", "1 while the durable market is degraded to read-only, else 0"),
        ServeOpenConns => ("qbdp_serve_open_conns", "Connections currently held by the quote server"),
    }
}

catalog! {
    /// The histogram catalog. All values are microseconds.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Hst {
        QuoteLatencyUs => ("qbdp_market_quote_latency_us", "End-to-end quote latency, microseconds"),
        PurchaseLatencyUs => ("qbdp_market_purchase_latency_us", "End-to-end purchase latency, microseconds"),
        WalAppendUs => ("qbdp_store_wal_append_us", "WAL append (write + frame) latency, microseconds"),
        WalFsyncUs => ("qbdp_store_wal_fsync_us", "WAL fsync latency, microseconds"),
        SnapshotWriteUs => ("qbdp_store_snapshot_write_us", "Snapshot write+rename duration, microseconds"),
        CompactionUs => ("qbdp_store_compaction_us", "Two-phase compaction duration, microseconds"),
        ServeQuoteLatencyUs => ("qbdp_serve_quote_latency_us", "HTTP /quote service time (parse-complete to response enqueued), microseconds"),
        ServePurchaseLatencyUs => ("qbdp_serve_purchase_latency_us", "HTTP /purchase service time, microseconds"),
        ServeAdminLatencyUs => ("qbdp_serve_admin_latency_us", "HTTP /health and /metrics service time, microseconds"),
    }
}

/// A complete metric set: one cell per catalog entry. The process-wide
/// instance is [`global`]; tests build private ones so goldens are
/// deterministic.
pub struct Registry {
    counters: [Counter; Ctr::ALL.len()],
    gauges: [GaugeCell; Gauge::ALL.len()],
    hists: [Hist; Hst::ALL.len()],
}

impl Registry {
    /// A zeroed registry (const so the global can be a `static`).
    pub const fn new() -> Registry {
        Registry {
            counters: [const { Counter::new() }; Ctr::ALL.len()],
            gauges: [const { GaugeCell::new() }; Gauge::ALL.len()],
            hists: [const { Hist::new() }; Hst::ALL.len()],
        }
    }

    /// The cell behind a counter id.
    #[inline]
    pub fn counter(&self, c: Ctr) -> &Counter {
        &self.counters[c as usize]
    }

    /// The cell behind a gauge id.
    #[inline]
    pub fn gauge(&self, g: Gauge) -> &GaugeCell {
        &self.gauges[g as usize]
    }

    /// The cell behind a histogram id.
    #[inline]
    pub fn hist(&self, h: Hst) -> &Hist {
        &self.hists[h as usize]
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

static GLOBAL: Registry = Registry::new();

/// The process-wide registry every `record*` call writes to.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Record `n` onto counter `c` (no-op while telemetry is disabled).
// audit: wait-free
#[inline]
pub fn record(c: Ctr, n: u64) {
    if enabled() {
        GLOBAL.counter(c).add(n);
    }
}

/// Set gauge `g` to `v` (no-op while telemetry is disabled).
// audit: wait-free
#[inline]
pub fn record_gauge(g: Gauge, v: u64) {
    if enabled() {
        GLOBAL.gauge(g).set(v);
    }
}

/// Record `v` onto histogram `h` (no-op while telemetry is disabled).
// audit: wait-free
#[inline]
pub fn record_hist(h: Hst, v: u64) {
    if enabled() {
        GLOBAL.hist(h).observe(v);
    }
}

/// A latency probe that costs nothing when telemetry is off: `start`
/// reads the clock only if recording is enabled, and `stop` records
/// only if `start` did.
pub struct Stopwatch {
    t0: Option<Instant>,
}

impl Stopwatch {
    /// Start timing iff telemetry is enabled.
    #[inline]
    pub fn start() -> Stopwatch {
        Stopwatch {
            t0: if enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Microseconds since `start`, if timing.
    #[inline]
    pub fn elapsed_us(&self) -> Option<u64> {
        self.t0.map(|t| t.elapsed().as_micros() as u64)
    }

    /// Record the elapsed time onto histogram `h` and return it.
    #[inline]
    pub fn stop(self, h: Hst) -> Option<u64> {
        let us = self.elapsed_us()?;
        record_hist(h, us);
        Some(us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_merges_shards() {
        let c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // 2^k must land in the bucket whose upper bound is exactly 2^k.
        for k in 0..30u32 {
            let v = 1u64 << k;
            let b = bucket_of(v);
            assert_eq!(bucket_le(b), Some(v), "2^{k} must land on its own boundary");
            // One more than a power of two spills into the next bucket.
            let b1 = bucket_of(v + 1);
            assert_eq!(b1, b + 1, "2^{k}+1 must spill over the boundary");
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(u64::MAX), NBUCKETS - 1, "overflow bucket");
        assert_eq!(bucket_le(NBUCKETS - 1), None, "last bucket is +Inf");
    }

    #[test]
    fn histogram_snapshot_counts_and_sums() {
        let h = Hist::new();
        for v in [0u64, 1, 2, 3, 1024, 1 << 31] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1 + 2 + 3 + 1024 + (1u64 << 31));
        assert_eq!(s.buckets[0], 2, "0 and 1 share the first bucket");
        assert_eq!(s.buckets[1], 1, "2 sits on the le=2 boundary");
        assert_eq!(s.buckets[2], 1, "3 is in (2,4]");
        assert_eq!(s.buckets[10], 1, "1024 = 2^10 on its boundary");
        assert_eq!(s.buckets[NBUCKETS - 1], 1, "2^31 overflows to +Inf");
    }

    #[test]
    fn concurrent_recording_merges_to_serial_sum() {
        // The satellite requirement: a multi-thread merge must equal the
        // serial sum exactly — sharding loses nothing.
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let c = Arc::new(Counter::new());
        let h = Arc::new(Hist::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        c.add(1);
                        h.observe((t as u64) * PER_THREAD + i);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
        let s = h.snapshot();
        assert_eq!(s.count, THREADS as u64 * PER_THREAD);
        // Serial reference: same values recorded single-threaded.
        let serial = Hist::new();
        for t in 0..THREADS as u64 {
            for i in 0..PER_THREAD {
                serial.observe(t * PER_THREAD + i);
            }
        }
        assert_eq!(s, serial.snapshot(), "merge must equal the serial sum");
    }

    #[test]
    fn disabled_record_is_a_no_op_on_the_global() {
        let _g = crate::test_guard();
        set_enabled(false);
        let before = global().counter(Ctr::FlightCaptures).get();
        record(Ctr::FlightCaptures, 17);
        assert_eq!(global().counter(Ctr::FlightCaptures).get(), before);
        assert!(Stopwatch::start().elapsed_us().is_none());
    }

    #[test]
    fn catalog_names_are_unique() {
        let mut names: Vec<&str> = Ctr::ALL
            .iter()
            .map(|c| c.name())
            .chain(Gauge::ALL.iter().map(|g| g.name()))
            .chain(Hst::ALL.iter().map(|h| h.name()))
            .collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate metric name in the catalog");
    }
}
