//! Per-quote pricing-pipeline trace spans.
//!
//! A trace is a thread-local buffer of [`Span`]s collected between
//! [`begin`] and [`finish`]. The pricing stages (cache lookup →
//! plan-cache diff → normalization → flow solve → hitting set) open
//! [`SpanGuard`]s; each guard measures its own wall time and records
//! its outcome (`detail`), an optional magnitude (`n`), and the budget
//! fuel consumed inside it. Spans carry an explicit `depth` so the flat
//! buffer renders back into a tree (children are pushed before their
//! parents close; sort by `start_us` to display).
//!
//! The whole module is thread-local and allocation-shy: when no trace
//! is active on the current thread, [`span`] reads one thread-local
//! flag and returns an inert guard — no clock read, no allocation.
//! Quote pricing runs on the caller's thread (batch workers are not
//! traced), so a thread-local buffer is exactly the right scope, and
//! nothing here ever takes a lock (R6 applies: these are `record*`
//! paths by construction).
//!
//! The market drives the lifecycle: [`begin`] before pricing,
//! [`finish`] after, then either discards the spans (fast healthy
//! quote), hands them to the flight recorder (slow/degraded/contended/
//! panicking), and/or parks them in the thread's `last` slot for
//! `qbdp price --trace` to fetch via [`take_last`].

use std::cell::{Cell, RefCell};
use std::time::Instant;

/// One completed pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stage name (`"cache_lookup"`, `"flow_solve"`, …).
    pub name: &'static str,
    /// Outcome tag (`"hit"`, `"warm"`, `"cold"`, `""` when mute).
    pub detail: &'static str,
    /// Optional magnitude (branch index, entries swept, …).
    pub n: u64,
    /// Budget fuel consumed inside this span.
    pub fuel: u64,
    /// Microseconds from trace start to span open.
    pub start_us: u64,
    /// Span wall time in microseconds.
    pub dur_us: u64,
    /// Nesting depth (0 = top level).
    pub depth: u16,
}

struct Buf {
    t0: Instant,
    depth: u16,
    spans: Vec<Span>,
}

thread_local! {
    /// Fast gate: is a trace active on this thread?
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static BUF: RefCell<Option<Buf>> = const { RefCell::new(None) };
    /// The most recent finished trace, kept only in keep-last mode.
    static LAST: RefCell<Vec<Span>> = const { RefCell::new(Vec::new()) };
    /// Keep-last mode: `qbdp price --trace` turns this on so the CLI
    /// can fetch the spans after the market has finished the quote.
    static KEEP_LAST: Cell<bool> = const { Cell::new(false) };
}

/// Is a trace active on the current thread?
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Start collecting spans on this thread (clears any previous buffer).
pub fn begin() {
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        match b.as_mut() {
            Some(buf) => {
                buf.spans.clear();
                buf.depth = 0;
                buf.t0 = Instant::now();
            }
            None => {
                *b = Some(Buf {
                    t0: Instant::now(),
                    depth: 0,
                    spans: Vec::with_capacity(16),
                });
            }
        }
    });
    ACTIVE.with(|a| a.set(true));
}

/// Stop collecting and return the spans (empty if no trace was active).
/// In keep-last mode the spans are also copied into the thread's `last`
/// slot for [`take_last`].
pub fn finish() -> Vec<Span> {
    if !active() {
        return Vec::new();
    }
    ACTIVE.with(|a| a.set(false));
    let spans = BUF.with(|b| {
        b.borrow_mut()
            .as_mut()
            .map(|buf| std::mem::take(&mut buf.spans))
            .unwrap_or_default()
    });
    if KEEP_LAST.with(|k| k.get()) {
        LAST.with(|l| *l.borrow_mut() = spans.clone());
    }
    spans
}

/// Turn keep-last mode on or off for this thread.
pub fn set_keep_last(on: bool) {
    KEEP_LAST.with(|k| k.set(on));
}

/// Take the most recent finished trace on this thread (keep-last mode).
pub fn take_last() -> Vec<Span> {
    LAST.with(|l| std::mem::take(&mut *l.borrow_mut()))
}

/// An in-flight stage. Inert (all `None`/zero) when no trace is active,
/// so guards are free on untraced quotes. Records itself on drop.
pub struct SpanGuard {
    name: &'static str,
    detail: &'static str,
    n: u64,
    fuel: u64,
    start: Option<Instant>,
    start_us: u64,
    depth: u16,
}

/// Open a stage span. Cheap no-op when no trace is active.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !active() {
        return SpanGuard {
            name,
            detail: "",
            n: 0,
            fuel: 0,
            start: None,
            start_us: 0,
            depth: 0,
        };
    }
    let now = Instant::now();
    let (start_us, depth) = BUF.with(|b| {
        let mut b = b.borrow_mut();
        match b.as_mut() {
            Some(buf) => {
                let d = buf.depth;
                buf.depth = buf.depth.saturating_add(1);
                (now.duration_since(buf.t0).as_micros() as u64, d)
            }
            None => (0, 0),
        }
    });
    SpanGuard {
        name,
        detail: "",
        n: 0,
        fuel: 0,
        start: Some(now),
        start_us,
        depth,
    }
}

impl SpanGuard {
    /// Tag the span's outcome (`"hit"`, `"warm"`, `"fallback"`, …).
    #[inline]
    pub fn detail(&mut self, d: &'static str) {
        self.detail = d;
    }

    /// Attach a magnitude (branch count, entries swept, …).
    #[inline]
    pub fn n(&mut self, v: u64) {
        self.n = v;
    }

    /// Attach the budget fuel consumed inside this span.
    #[inline]
    pub fn fuel(&mut self, f: u64) {
        self.fuel = f;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_us = start.elapsed().as_micros() as u64;
        BUF.with(|b| {
            let mut b = b.borrow_mut();
            if let Some(buf) = b.as_mut() {
                buf.depth = buf.depth.saturating_sub(1);
                buf.spans.push(Span {
                    name: self.name,
                    detail: self.detail,
                    n: self.n,
                    fuel: self.fuel,
                    start_us: self.start_us,
                    dur_us,
                    depth: self.depth,
                });
            }
        });
    }
}

/// Record an instantaneous (zero-duration) event span.
pub fn event(name: &'static str, detail: &'static str) {
    if !active() {
        return;
    }
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        if let Some(buf) = b.as_mut() {
            let start_us = buf.t0.elapsed().as_micros() as u64;
            let depth = buf.depth;
            buf.spans.push(Span {
                name,
                detail,
                n: 0,
                fuel: 0,
                start_us,
                dur_us: 0,
                depth,
            });
        }
    });
}

/// Render spans as JSONL: one object per span, sorted by start time so
/// the depth field reconstructs the tree top-down.
pub fn to_jsonl(spans: &[Span]) -> String {
    let mut sorted: Vec<&Span> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start_us, s.depth));
    let mut out = String::new();
    for s in sorted {
        out.push_str(&format!(
            "{{\"span\":\"{}\",\"detail\":\"{}\",\"depth\":{},\"start_us\":{},\"dur_us\":{},\"n\":{},\"fuel\":{}}}\n",
            s.name, s.detail, s.depth, s.start_us, s.dur_us, s.n, s.fuel
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_flatten() {
        begin();
        {
            let mut outer = span("outer");
            outer.detail("ok");
            {
                let mut inner = span("inner");
                inner.n(3);
                inner.fuel(42);
            }
        }
        event("mark", "tick");
        let spans = finish();
        assert!(!active());
        assert_eq!(spans.len(), 3);
        // Children close (and push) before parents.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[0].fuel, 42);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].depth, 0);
        assert_eq!(spans[1].detail, "ok");
        assert_eq!(spans[2].name, "mark");
        assert_eq!(spans[2].dur_us, 0);
    }

    #[test]
    fn inactive_spans_are_inert() {
        assert!(!active());
        let g = span("nothing");
        drop(g);
        assert!(finish().is_empty());
    }

    #[test]
    fn keep_last_parks_a_copy() {
        set_keep_last(true);
        begin();
        drop(span("stage"));
        let direct = finish();
        let parked = take_last();
        set_keep_last(false);
        assert_eq!(direct, parked);
        assert!(take_last().is_empty(), "take_last drains");
    }

    #[test]
    fn jsonl_orders_by_start() {
        begin();
        {
            let _a = span("first");
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        {
            let _b = span("second");
        }
        let text = to_jsonl(&finish());
        let first = text.lines().next().unwrap_or("");
        assert!(first.contains("\"span\":\"first\""), "got: {text}");
        assert_eq!(text.lines().count(), 2);
    }
}
