//! Exporters: Prometheus text format and machine-readable JSON.
//!
//! Both walk the closed metric catalog in declaration order, so output
//! is fully deterministic for a given registry state — the golden tests
//! pin it byte-for-byte. Counters and histograms whose value is zero
//! are still emitted: a scraper should see the whole catalog, not a
//! shape that changes with traffic.

use crate::metrics::{bucket_le, Ctr, Gauge, Hst, Registry, NBUCKETS};
use std::fmt::Write as _;

/// Render `reg` in Prometheus text exposition format (v0.0.4):
/// `# HELP` / `# TYPE` headers, histograms as cumulative
/// `_bucket{le="..."}` series plus `_sum` and `_count`.
pub fn prometheus(reg: &Registry) -> String {
    let mut out = String::new();
    for &c in Ctr::ALL {
        let _ = writeln!(out, "# HELP {} {}", c.name(), c.help());
        let _ = writeln!(out, "# TYPE {} counter", c.name());
        let _ = writeln!(out, "{} {}", c.name(), reg.counter(c).get());
    }
    for &g in Gauge::ALL {
        let _ = writeln!(out, "# HELP {} {}", g.name(), g.help());
        let _ = writeln!(out, "# TYPE {} gauge", g.name());
        let _ = writeln!(out, "{} {}", g.name(), reg.gauge(g).get());
    }
    for &h in Hst::ALL {
        let snap = reg.hist(h).snapshot();
        let _ = writeln!(out, "# HELP {} {}", h.name(), h.help());
        let _ = writeln!(out, "# TYPE {} histogram", h.name());
        let mut cum = 0u64;
        for (i, b) in snap.buckets.iter().enumerate() {
            cum = cum.wrapping_add(*b);
            match bucket_le(i) {
                Some(le) => {
                    let _ = writeln!(out, "{}_bucket{{le=\"{le}\"}} {cum}", h.name());
                }
                None => {
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {cum}", h.name());
                }
            }
        }
        let _ = writeln!(out, "{}_sum {}", h.name(), snap.sum);
        let _ = writeln!(out, "{}_count {}", h.name(), snap.count);
    }
    out
}

/// Render `reg` as one JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{name:{"count":..,
/// "sum":..,"buckets":[[le_or_null, n], ...]}}}` with non-cumulative
/// bucket tallies and `null` standing for `+Inf`.
pub fn json(reg: &Registry) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, &c) in Ctr::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", c.name(), reg.counter(c).get());
    }
    out.push_str("},\"gauges\":{");
    for (i, &g) in Gauge::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", g.name(), reg.gauge(g).get());
    }
    out.push_str("},\"histograms\":{");
    for (i, &h) in Hst::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let snap = reg.hist(h).snapshot();
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[",
            h.name(),
            snap.count,
            snap.sum
        );
        for (j, b) in snap.buckets.iter().enumerate().take(NBUCKETS) {
            if j > 0 {
                out.push(',');
            }
            match bucket_le(j) {
                Some(le) => {
                    let _ = write!(out, "[{le},{b}]");
                }
                None => {
                    let _ = write!(out, "[null,{b}]");
                }
            }
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

/// Escape `s` as a JSON string literal (with the quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Ctr, Gauge, Hst, Registry};

    /// A private registry with a known shape: golden tests never touch
    /// the process-global one, so they are immune to sibling tests.
    fn sample() -> Registry {
        let reg = Registry::new();
        reg.counter(Ctr::MarketQuotes).add(7);
        reg.counter(Ctr::PlanCacheHits).add(2);
        reg.gauge(Gauge::InFlight).set(3);
        reg.hist(Hst::QuoteLatencyUs).observe(1);
        reg.hist(Hst::QuoteLatencyUs).observe(2);
        reg.hist(Hst::QuoteLatencyUs).observe(1000);
        reg
    }

    #[test]
    fn prometheus_golden() {
        let text = prometheus(&sample());
        // Counter block, exact.
        assert!(text.contains(
            "# HELP qbdp_market_quotes_total Quotes served (exact or degraded)\n\
             # TYPE qbdp_market_quotes_total counter\n\
             qbdp_market_quotes_total 7\n"
        ));
        assert!(text.contains("qbdp_plan_cache_hits_total 2\n"));
        assert!(text.contains("qbdp_market_in_flight 3\n"));
        // Histogram: cumulative buckets; 1 ≤ le=1, 2 ≤ le=2, 1000 ≤ le=1024.
        assert!(text.contains("qbdp_market_quote_latency_us_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("qbdp_market_quote_latency_us_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("qbdp_market_quote_latency_us_bucket{le=\"512\"} 2\n"));
        assert!(text.contains("qbdp_market_quote_latency_us_bucket{le=\"1024\"} 3\n"));
        assert!(text.contains("qbdp_market_quote_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("qbdp_market_quote_latency_us_sum 1003\n"));
        assert!(text.contains("qbdp_market_quote_latency_us_count 3\n"));
        // Untouched metrics still show up, zeroed.
        assert!(text.contains("qbdp_store_wal_appends_total 0\n"));
    }

    #[test]
    fn json_golden() {
        let text = json(&sample());
        assert!(text.starts_with("{\"counters\":{"));
        assert!(text.ends_with("}}"));
        assert!(text.contains("\"qbdp_market_quotes_total\":7"));
        assert!(text.contains("\"qbdp_market_in_flight\":3"));
        assert!(text.contains(
            "\"qbdp_market_quote_latency_us\":{\"count\":3,\"sum\":1003,\"buckets\":[[1,1],[2,1],"
        ));
        // Non-cumulative: the le=1024 bucket holds exactly one value.
        assert!(text.contains("[1024,1]"));
        assert!(text.contains("[null,0]"));
    }

    #[test]
    fn json_is_structurally_balanced() {
        let text = json(&Registry::new());
        let opens = text.chars().filter(|&c| c == '{').count();
        let closes = text.chars().filter(|&c| c == '}').count();
        assert_eq!(opens, closes);
        let opens = text.chars().filter(|&c| c == '[').count();
        let closes = text.chars().filter(|&c| c == ']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
