//! Observability for the qbdp serving stack.
//!
//! Every layer of the market — the quote cache, the plan cache, the flow
//! engines, the WAL — needs to answer "what happened at runtime?" without
//! perturbing the thing being measured. This crate is the single shared
//! telemetry substrate:
//!
//! * [`metrics`] — a **static registry** of counters, gauges, and
//!   log₂-bucketed latency histograms. The record path is wait-free:
//!   per-thread shards of plain atomics, merged only on read. No lock is
//!   ever taken to record (audit rule R6 enforces this structurally).
//! * [`trace`] — per-quote **span trees**: each pricing stage (cache
//!   lookup, plan-cache diff, normalization, flow solve, hitting set)
//!   records its wall time, outcome, and budget fuel into a thread-local
//!   buffer. `qbdp price --trace` emits them as JSONL.
//! * [`flight`] — a fixed-size **flight recorder**: the full span tree of
//!   every slow, degraded, contended, or panicking quote is retained in a
//!   small ring for post-hoc dumping (`qbdp stats --flight`). Capture
//!   happens only on those rare outcomes, so it may take a lock — it is
//!   deliberately *not* part of the `record*` namespace R6 polices.
//! * [`export`] — Prometheus text format and machine-readable JSON over
//!   any [`metrics::Registry`] (the CLI's `qbdp stats`, and
//!   `MarketOps::metrics_snapshot()` for a future `/metrics` endpoint).
//! * [`log`] — a leveled stderr sink so harness progress chatter can be
//!   silenced (`--quiet`) without sprinkling `if` guards at call sites.
//!
//! # Cost model
//!
//! Everything is gated on one relaxed [`metrics::enabled`] load
//! (`MarketPolicy::telemetry`). Disabled, a record call is a single
//! atomic load and a branch; enabled, it is one or two relaxed
//! `fetch_add`s on a thread-private cache line. The E18 bench
//! (`obs_overhead`) holds the enabled tax under 2% of median quote
//! latency and the disabled tax under 0.5%.
//!
//! This crate is **dependency-free** (std only) so that every other
//! crate — including `qbdp-flow` and `qbdp-store`, which otherwise
//! depend on nothing — can link it without widening the graph.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod export;
pub mod flight;
pub mod log;
pub mod metrics;
pub mod trace;

pub use metrics::{
    enabled, global, record, record_gauge, record_hist, set_enabled, Ctr, Gauge, Hst, Registry,
    Stopwatch,
};

/// Serializes unit tests that toggle the process-global enabled flag or
/// the flight ring: the crate's test binary runs tests in parallel, and
/// those globals are shared.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
