//! The flight recorder: a fixed-size ring of span trees from quotes
//! that went wrong.
//!
//! Latency histograms tell you *that* the tail is bad; the flight
//! recorder tells you *why*: for every slow, degraded, contended, or
//! panicking quote the market captures the full per-stage span tree
//! (plus the query text and outcome) into a small ring. `qbdp stats
//! --flight` dumps it newest-last.
//!
//! # Eviction policy
//!
//! The ring holds [`CAPACITY`] records. Capture appends; when full, the
//! **oldest record is evicted** regardless of reason — recent context
//! beats old context for post-hoc debugging, and a bounded ring means
//! the recorder can run forever without an allocator treadmill. A
//! monotone sequence number survives eviction, so a dump shows how many
//! records were lost (`first seq > 1` ⇒ older captures rolled off).
//!
//! # Locking is fine here — deliberately
//!
//! Captures happen only on rare, already-slow outcomes (a degraded
//! quote has burnt its whole budget; a contended purchase has retried
//! eight times), so this module uses a plain `std::sync::Mutex` and is
//! **not** part of the `record*` namespace audit rule R6 polices. The
//! wait-free guarantee covers the per-quote hot path, not the crash
//! dump.

use crate::metrics::{record, Ctr};
use crate::trace::Span;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Ring capacity: enough tail context to debug a bad minute, small
/// enough to never matter for memory.
pub const CAPACITY: usize = 32;

/// Why a quote earned a flight record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Why {
    /// Latency crossed the slow threshold ([`set_slow_threshold_us`]).
    Slow,
    /// The quote was served degraded (budget exhausted, interval price).
    Degraded,
    /// A durable purchase exhausted its revalidation retries.
    Contended,
    /// Pricing panicked and was contained.
    Panicked,
}

impl Why {
    /// Stable lowercase tag for exports.
    pub fn tag(self) -> &'static str {
        match self {
            Why::Slow => "slow",
            Why::Degraded => "degraded",
            Why::Contended => "contended",
            Why::Panicked => "panicked",
        }
    }
}

/// One captured quote: outcome, query, wall time, and the span tree.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// Monotone capture sequence number (1-based; gaps mean eviction).
    pub seq: u64,
    /// Why this quote was captured.
    pub why: Why,
    /// The (rendered) query text.
    pub query: String,
    /// End-to-end wall time in microseconds.
    pub total_us: u64,
    /// Free-form outcome detail (error text, interval, …).
    pub detail: String,
    /// The stage spans collected while pricing (may be empty if the
    /// panic fired before any stage closed).
    pub spans: Vec<Span>,
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static RING: Mutex<Vec<FlightRecord>> = Mutex::new(Vec::new());
/// Quotes at least this slow are captured even when healthy.
/// `u64::MAX` (the default) disables slow-capture.
static SLOW_US: AtomicU64 = AtomicU64::new(u64::MAX);

/// Set the slow-quote capture threshold in microseconds
/// (`u64::MAX` disables).
pub fn set_slow_threshold_us(us: u64) {
    SLOW_US.store(us, Ordering::Relaxed);
}

/// The current slow-quote threshold in microseconds.
pub fn slow_threshold_us() -> u64 {
    SLOW_US.load(Ordering::Relaxed)
}

/// Capture one record (no-op while telemetry is disabled). Takes the
/// ring lock — callers are rare failure paths, never the hot path.
pub fn capture(why: Why, query: &str, total_us: u64, detail: String, spans: Vec<Span>) {
    if !crate::metrics::enabled() {
        return;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    record(Ctr::FlightCaptures, 1);
    if let Ok(mut ring) = RING.lock() {
        if ring.len() >= CAPACITY {
            ring.remove(0);
        }
        ring.push(FlightRecord {
            seq,
            why,
            query: query.to_string(),
            total_us,
            detail,
            spans,
        });
    }
}

/// Snapshot the ring, oldest first.
pub fn dump() -> Vec<FlightRecord> {
    RING.lock().map(|r| r.clone()).unwrap_or_default()
}

/// Empty the ring (tests; the sequence counter keeps running).
pub fn clear() {
    if let Ok(mut ring) = RING.lock() {
        ring.clear();
    }
}

/// Render records as JSONL, one object per record, spans inlined.
pub fn to_jsonl(records: &[FlightRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let mut spans = String::new();
        let mut sorted: Vec<&Span> = r.spans.iter().collect();
        sorted.sort_by_key(|s| (s.start_us, s.depth));
        for (i, s) in sorted.iter().enumerate() {
            if i > 0 {
                spans.push(',');
            }
            spans.push_str(&format!(
                "{{\"span\":\"{}\",\"detail\":\"{}\",\"depth\":{},\"start_us\":{},\"dur_us\":{},\"n\":{},\"fuel\":{}}}",
                s.name, s.detail, s.depth, s.start_us, s.dur_us, s.n, s.fuel
            ));
        }
        out.push_str(&format!(
            "{{\"seq\":{},\"why\":\"{}\",\"query\":{},\"total_us\":{},\"detail\":{},\"spans\":[{}]}}\n",
            r.seq,
            r.why.tag(),
            crate::export::json_string(&r.query),
            r.total_us,
            crate::export::json_string(&r.detail),
            spans
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::set_enabled;

    fn span(name: &'static str) -> Span {
        Span {
            name,
            detail: "",
            n: 0,
            fuel: 0,
            start_us: 0,
            dur_us: 1,
            depth: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_seq() {
        let _g = crate::test_guard();
        set_enabled(true);
        clear();
        let base = SEQ.load(Ordering::Relaxed);
        for i in 0..(CAPACITY as u64 + 5) {
            capture(
                Why::Degraded,
                &format!("Q{i}() :- R(x)"),
                i,
                String::new(),
                vec![span("flow_solve")],
            );
        }
        let dumped = dump();
        set_enabled(false);
        assert_eq!(dumped.len(), CAPACITY, "ring is bounded");
        assert_eq!(
            dumped.first().map(|r| r.seq),
            Some(base + 6),
            "the five oldest rolled off"
        );
        assert!(
            dumped.windows(2).all(|w| w[0].seq + 1 == w[1].seq),
            "sequence stays dense inside the ring"
        );
    }

    #[test]
    fn disabled_capture_is_dropped() {
        let _g = crate::test_guard();
        set_enabled(false);
        clear();
        capture(Why::Slow, "Q() :- R(x)", 9, String::new(), Vec::new());
        assert!(dump().is_empty());
    }

    #[test]
    fn jsonl_escapes_query_text() {
        let rec = FlightRecord {
            seq: 1,
            why: Why::Panicked,
            query: "Q(\"x\") :- R(x)".into(),
            total_us: 3,
            detail: "boom \"quoted\"".into(),
            spans: vec![span("classify")],
        };
        let text = to_jsonl(&[rec]);
        assert!(text.contains("\\\"x\\\""), "quotes escaped: {text}");
        assert!(text.contains("\"why\":\"panicked\""));
        assert!(text.contains("\"span\":\"classify\""));
    }
}
