//! A leveled stderr sink for harness and CLI progress chatter.
//!
//! The chaos harness, the repl, and the drivers used to `eprintln!`
//! ad-hoc progress lines; under `--quiet` or when stdout carries JSON
//! (`qbdp stats`, `price --trace`) that chatter is noise. Routing it
//! through one sink gives every caller the same switch:
//! [`set_level`]`(`[`Level::Quiet`]`)` silences progress without
//! touching error reporting (errors print at [`Level::Error`], which
//! `--quiet` keeps).
//!
//! Use the [`log_info!`](crate::log_info) / [`log_debug!`](crate::log_debug)
//! macros — they skip formatting entirely when the level is filtered.

use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity levels, ordered: a message prints when its level is ≤ the
/// sink's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing at all (even errors are suppressed).
    Quiet = 0,
    /// Failures only — kept under `--quiet`-style flags by convention
    /// (callers map `--quiet` to `Error`, not `Quiet`).
    Error = 1,
    /// Progress lines (the default).
    Info = 2,
    /// Extra diagnostics.
    Debug = 3,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Set the sink's verbosity.
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// The sink's current verbosity.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Quiet,
        1 => Level::Error,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Would a message at `l` print right now?
#[inline]
pub fn enabled(l: Level) -> bool {
    l as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Print `args` to stderr if `l` passes the filter. Prefer the macros,
/// which avoid formatting when filtered.
pub fn emit(l: Level, args: std::fmt::Arguments<'_>) {
    if enabled(l) {
        eprintln!("{args}");
    }
}

/// Log a progress line at [`Level::Info`].
#[macro_export]
macro_rules! log_info {
    ($($t:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::emit($crate::log::Level::Info, format_args!($($t)*));
        }
    };
}

/// Log a diagnostic line at [`Level::Debug`].
#[macro_export]
macro_rules! log_debug {
    ($($t:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::emit($crate::log::Level::Debug, format_args!($($t)*));
        }
    };
}

/// Log a failure line at [`Level::Error`].
#[macro_export]
macro_rules! log_error {
    ($($t:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::emit($crate::log::Level::Error, format_args!($($t)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_filter_in_order() {
        let _g = crate::test_guard();
        set_level(Level::Info);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Error);
        assert!(enabled(Level::Error));
        assert!(!enabled(Level::Info));
        set_level(Level::Quiet);
        assert!(!enabled(Level::Error));
        set_level(Level::Info);
    }
}
