#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

//! # qbdp-determinacy — instance-based determinacy `D ⊢ V ։ Q`
//!
//! The pricing framework of PODS 2012 is built on *instance-based
//! determinacy* (Definition 2.2): `V` determines `Q` given `D` iff for every
//! instance `D'` with `V(D') = V(D)` we have `Q(D') = Q(D)`. This crate
//! implements:
//!
//! * [`selection`] — selection views `σ_{R.X=a}` ([`SelectionView`],
//!   [`ViewSet`]), Lemma 3.1 (when selection views determine another
//!   selection or a whole relation), and the **Theorem 3.3 oracle**: for
//!   `V ⊆ Σ` and any monotone PTIME query, determinacy is decided in PTIME
//!   via the canonical minimal/maximal possible worlds `D_min ⊆ D' ⊆ D_max`;
//! * [`bruteforce`] — the general (co-NP) relation for arbitrary UCQ-bundle
//!   views by explicit enumeration of possible worlds, usable on tiny
//!   instances and as ground truth in property tests (Theorem 2.3);
//! * [`restricted`] — the restriction `։*` of Proposition 2.24, which is
//!   monotone under insertions and repairs the dynamic-pricing anomalies of
//!   Example 2.18.
//!
//! ## Possible-world convention
//!
//! Throughout the workspace, the instances `D'` quantified over in
//! determinacy respect the schema **and the declared columns** (the
//! inclusion constraint `R.X ⊆ Col_{R.X}` of §3, which the paper assumes for
//! the database and which buyers know). This matches the paper's Min-Cut
//! construction, which enumerates candidate tuples over columns only.

pub mod bruteforce;
pub mod restricted;
pub mod selection;

pub use bruteforce::{
    candidate_universe, determines_bruteforce, enumerate_worlds, BruteforceError,
    WorldLimitExceeded,
};
pub use restricted::{determines_restricted, RestrictedError};
pub use selection::{
    determines_monotone_bundle, determines_monotone_cq, determines_monotone_ucq,
    determines_relation, determines_selection, max_world, min_world, SelectionView, ViewSet,
};
