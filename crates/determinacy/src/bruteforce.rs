//! Ground-truth instance-based determinacy by explicit enumeration of
//! possible worlds.
//!
//! `D ⊢ V ։ Q` iff every world `D'` over the declared columns with
//! `V(D') = V(D)` satisfies `Q(D') = Q(D)` (Definition 2.2). The data
//! complexity is co-NP-complete (Theorem 2.3), so this module is only
//! feasible on tiny catalogs — which is exactly its purpose: it is the
//! reference oracle against which the PTIME algorithms are property-tested.

use qbdp_catalog::{Catalog, Instance, RelId, Tuple};
use qbdp_query::bundle::Bundle;
use qbdp_query::error::QueryError;
use qbdp_query::eval::{eval_bundle, AnswerSet};
use std::fmt;

/// The candidate-tuple universe is too large to enumerate `2^N` worlds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldLimitExceeded {
    /// Number of candidate tuples (`N`).
    pub candidate_tuples: usize,
    /// The configured maximum.
    pub limit: usize,
}

impl fmt::Display for WorldLimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "brute-force determinacy needs 2^{} worlds (limit 2^{})",
            self.candidate_tuples, self.limit
        )
    }
}

impl std::error::Error for WorldLimitExceeded {}

/// Errors from brute-force determinacy.
#[derive(Debug)]
pub enum BruteforceError {
    /// Too many candidate tuples.
    TooLarge(WorldLimitExceeded),
    /// Query evaluation failed.
    Query(QueryError),
}

impl fmt::Display for BruteforceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BruteforceError::TooLarge(e) => write!(f, "{e}"),
            BruteforceError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BruteforceError {}

impl From<QueryError> for BruteforceError {
    fn from(e: QueryError) -> Self {
        BruteforceError::Query(e)
    }
}

/// Enumerate every instance over the catalog's column products (all `2^N`
/// subsets of the candidate-tuple universe). Errors out if `N > limit`.
pub fn enumerate_worlds(
    catalog: &Catalog,
    limit: usize,
) -> Result<Vec<Instance>, WorldLimitExceeded> {
    let universe = candidate_universe(catalog);
    let n = universe.len();
    if n > limit {
        return Err(WorldLimitExceeded {
            candidate_tuples: n,
            limit,
        });
    }
    let mut worlds = Vec::with_capacity(1usize << n);
    for mask in 0u64..(1u64 << n) {
        let mut w = catalog.empty_instance();
        for (i, (rel, t)) in universe.iter().enumerate() {
            if mask & (1 << i) != 0 {
                // audit: allow(R2: universe tuples come from this catalog's columns)
                #[allow(clippy::expect_used)]
                w.insert(*rel, t.clone()).expect("arity");
            }
        }
        worlds.push(w);
    }
    Ok(worlds)
}

/// All candidate tuples `(R, t)` over the declared columns.
pub fn candidate_universe(catalog: &Catalog) -> Vec<(RelId, Tuple)> {
    let mut out = Vec::new();
    for rid in catalog.schema().rel_ids() {
        catalog.for_each_product_tuple(rid, |vals| {
            out.push((rid, Tuple::new(vals.to_vec())));
            true
        });
    }
    out
}

/// Brute-force instance-based determinacy for arbitrary UCQ-bundle views:
/// `D ⊢ V ։ Q` by Definition 2.2, enumerating all possible worlds.
///
/// `limit` bounds the candidate-tuple count `N` (the check costs
/// `O(2^N · eval)`); 20 is a practical ceiling.
pub fn determines_bruteforce(
    catalog: &Catalog,
    d: &Instance,
    views: &Bundle,
    q: &Bundle,
    limit: usize,
) -> Result<bool, BruteforceError> {
    let v_on_d: Vec<AnswerSet> = eval_bundle(views, d)?;
    let q_on_d: Vec<AnswerSet> = eval_bundle(q, d)?;
    let universe = candidate_universe(catalog);
    let n = universe.len();
    if n > limit {
        return Err(BruteforceError::TooLarge(WorldLimitExceeded {
            candidate_tuples: n,
            limit,
        }));
    }
    for mask in 0u64..(1u64 << n) {
        let mut w = catalog.empty_instance();
        for (i, (rel, t)) in universe.iter().enumerate() {
            if mask & (1 << i) != 0 {
                // audit: allow(R2: universe tuples come from this catalog's columns)
                #[allow(clippy::expect_used)]
                w.insert(*rel, t.clone()).expect("arity");
            }
        }
        if eval_bundle(views, &w)? == v_on_d && eval_bundle(q, &w)? != q_on_d {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::{determines_monotone_cq, SelectionView, ViewSet};
    use qbdp_catalog::{tuple, CatalogBuilder, Column};
    use qbdp_query::parser::parse_rule;

    fn tiny() -> Catalog {
        let col = Column::int_range(0, 2);
        CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .build()
            .unwrap()
    }

    #[test]
    fn world_enumeration_counts() {
        let cat = tiny();
        // Universe: R has 2 tuples, S has 4 → 2^6 = 64 worlds.
        let worlds = enumerate_worlds(&cat, 10).unwrap();
        assert_eq!(worlds.len(), 64);
        assert!(enumerate_worlds(&cat, 5).is_err());
    }

    #[test]
    fn example_2_18_both_claims() {
        // V(x,y) = R(x), S(x,y); Q() = ∃x R(x).
        // D1 = ∅:  V does NOT determine Q (add R(0) without changing V... wait
        // V changes if S nonempty only; with S empty V(D)=∅ stays ∅).
        // D2 = {R(0), S(0,1)}: V determines Q.
        let cat = tiny();
        let v = parse_rule(cat.schema(), "V(x, y) :- R(x), S(x, y)").unwrap();
        let q = parse_rule(cat.schema(), "Q() :- R(x)").unwrap();
        let vb = Bundle::single(qbdp_query::ast::Ucq::single(v));
        let qb = Bundle::single(qbdp_query::ast::Ucq::single(q));
        let d1 = cat.empty_instance();
        assert!(!determines_bruteforce(&cat, &d1, &vb, &qb, 10).unwrap());
        let mut d2 = cat.empty_instance();
        let r = cat.schema().rel_id("R").unwrap();
        let s = cat.schema().rel_id("S").unwrap();
        d2.insert(r, tuple![0]).unwrap();
        d2.insert(s, tuple![0, 1]).unwrap();
        assert!(determines_bruteforce(&cat, &d2, &vb, &qb, 10).unwrap());
    }

    #[test]
    fn agrees_with_theorem_3_3_oracle_on_random_cases() {
        // Cross-validate the PTIME oracle against ground truth on a small
        // randomized family (deterministic xorshift).
        let cat = tiny();
        let r = cat.schema().rel_id("R").unwrap();
        let s = cat.schema().rel_id("S").unwrap();
        let q = parse_rule(cat.schema(), "Q(x, y) :- R(x), S(x, y)").unwrap();
        let qb = Bundle::single(qbdp_query::ast::Ucq::single(q.clone()));
        let sigma: Vec<SelectionView> = ViewSet::sigma(&cat).iter().collect();
        let mut state = 0xdeadbeefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            // Random database.
            let mut d = cat.empty_instance();
            for x in 0..2i64 {
                if next() % 2 == 0 {
                    d.insert(r, tuple![x]).unwrap();
                }
                for y in 0..2i64 {
                    if next() % 2 == 0 {
                        d.insert(s, tuple![x, y]).unwrap();
                    }
                }
            }
            // Random view subset.
            let views: ViewSet = sigma.iter().filter(|_| next() % 2 == 0).cloned().collect();
            let fast = determines_monotone_cq(&cat, &d, &views, &q).unwrap();
            let slow =
                determines_bruteforce(&cat, &d, &views.to_bundle(cat.schema()), &qb, 10).unwrap();
            assert_eq!(
                fast,
                slow,
                "views {views:?} on D with {} tuples",
                d.total_tuples()
            );
        }
    }
}
