//! Selection views and the PTIME determinacy oracle (Theorem 3.3).

use qbdp_catalog::{AttrRef, Catalog, FxHashMap, FxHashSet, Instance, RelId, Schema, Tuple, Value};
use qbdp_query::ast::{ConjunctiveQuery, Pred, PredAtom, Term, Ucq, Var};
use qbdp_query::bundle::Bundle;
use qbdp_query::error::QueryError;
use qbdp_query::eval;
use std::fmt;

/// A selection view `σ_{R.X=a}` (paper §3, "The Views"): all tuples of `R`
/// whose attribute `X` equals the constant `a ∈ Col_{R.X}`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SelectionView {
    /// The attribute position `R.X`.
    pub attr: AttrRef,
    /// The selected constant `a`.
    pub value: Value,
}

impl SelectionView {
    /// Construct a selection view.
    pub fn new(attr: AttrRef, value: impl Into<Value>) -> Self {
        SelectionView {
            attr,
            value: value.into(),
        }
    }

    /// Whether this view *covers* a tuple of its relation: `t.X = a`. A
    /// covered tuple's membership is fixed in every possible world
    /// consistent with the view's answer.
    pub fn covers(&self, rel: RelId, t: &Tuple) -> bool {
        self.attr.rel == rel && t.get(self.attr.attr.0 as usize) == &self.value
    }

    /// Render against a schema, e.g. `σ[S.Y=b1]`.
    pub fn display(&self, schema: &Schema) -> String {
        format!("σ[{}={}]", schema.attr_display(self.attr), self.value)
    }

    /// The view as a conjunctive query `V(x̄) :- R(x̄), x_i = a`, for use
    /// where bundle-typed views are required (e.g. brute-force determinacy).
    #[allow(clippy::expect_used)]
    pub fn to_query(&self, schema: &Schema) -> ConjunctiveQuery {
        let rel = schema.relation(self.attr.rel);
        let vars: Vec<Var> = (0..rel.arity() as u32).map(Var).collect();
        let var_names: Vec<String> = rel.attrs().iter().map(|a| format!("x_{a}")).collect();
        let atom = qbdp_query::ast::Atom::new(self.attr.rel, vars.iter().map(|&v| Term::Var(v)));
        let pred = PredAtom {
            var: Var(self.attr.attr.0),
            pred: Pred::Eq(self.value.clone()),
        };
        ConjunctiveQuery::new(
            format!(
                "V_{}_{}",
                schema.attr_display(self.attr).replace('.', "_"),
                self.value
            ),
            vars,
            vec![atom],
            vec![pred],
            var_names,
            schema,
        )
        // audit: allow(R2: one atom, one safe head var, one predicate)
        .expect("selection view query is always well-formed")
    }
}

impl fmt::Debug for SelectionView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "σ[{:?}={}]", self.attr, self.value)
    }
}

/// A set `V ⊆ Σ` of selection views, indexed for O(1) cover tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ViewSet {
    per_attr: FxHashMap<AttrRef, FxHashSet<Value>>,
    len: usize,
}

impl ViewSet {
    /// The empty view set.
    pub fn new() -> Self {
        ViewSet::default()
    }

    /// Build from an iterator of views.
    pub fn from_views(views: impl IntoIterator<Item = SelectionView>) -> Self {
        let mut vs = ViewSet::new();
        for v in views {
            vs.insert(v);
        }
        vs
    }

    /// Insert a view; returns `true` if it was new.
    pub fn insert(&mut self, v: SelectionView) -> bool {
        let added = self.per_attr.entry(v.attr).or_default().insert(v.value);
        if added {
            self.len += 1;
        }
        added
    }

    /// Remove a view; returns `true` if it was present.
    pub fn remove(&mut self, v: &SelectionView) -> bool {
        let removed = self
            .per_attr
            .get_mut(&v.attr)
            .is_some_and(|s| s.remove(&v.value));
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    pub fn contains(&self, v: &SelectionView) -> bool {
        self.per_attr
            .get(&v.attr)
            .is_some_and(|s| s.contains(&v.value))
    }

    /// The values selected on one attribute.
    pub fn values_on(&self, attr: AttrRef) -> Option<&FxHashSet<Value>> {
        self.per_attr.get(&attr)
    }

    /// Whether some view of the set covers tuple `t` of relation `rel`
    /// (fixing its membership in all consistent possible worlds).
    pub fn covers_tuple(&self, schema: &Schema, rel: RelId, t: &Tuple) -> bool {
        let arity = schema.relation(rel).arity();
        (0..arity).any(|pos| {
            self.per_attr
                .get(&AttrRef::new(rel, pos as u32))
                .is_some_and(|vals| vals.contains(t.get(pos)))
        })
    }

    /// Whether the set **fully covers** `R.X`: `Σ_{R.X} ⊆ V` (every column
    /// value selected). An empty column is vacuously fully covered.
    pub fn fully_covers(&self, catalog: &Catalog, attr: AttrRef) -> bool {
        let col = catalog.column(attr);
        match self.per_attr.get(&attr) {
            Some(vals) => col.iter().all(|v| vals.contains(v)),
            None => col.is_empty(),
        }
    }

    /// Iterate over all views (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = SelectionView> + '_ {
        self.per_attr.iter().flat_map(|(attr, vals)| {
            vals.iter().map(move |v| SelectionView {
                attr: *attr,
                value: v.clone(),
            })
        })
    }

    /// The views as a query bundle (for cross-validation against the
    /// brute-force determinacy relation).
    pub fn to_bundle(&self, schema: &Schema) -> Bundle {
        Bundle::new(self.iter().map(|v| Ucq::single(v.to_query(schema))))
    }

    /// The full price list `Σ`: every selection view of every attribute.
    pub fn sigma(catalog: &Catalog) -> ViewSet {
        let mut vs = ViewSet::new();
        for attr in catalog.schema().all_attrs() {
            for v in catalog.column(attr).iter() {
                vs.insert(SelectionView {
                    attr,
                    value: v.clone(),
                });
            }
        }
        vs
    }
}

impl FromIterator<SelectionView> for ViewSet {
    fn from_iter<T: IntoIterator<Item = SelectionView>>(iter: T) -> Self {
        ViewSet::from_views(iter)
    }
}

/// **Lemma 3.1**: for `V ⊆ Σ`, `D ⊢ V ։ σ_{R.X=a}` iff (a) trivially
/// `σ_{R.X=a} ∈ V`, or (b) `V` fully covers some attribute `Y` of `R`.
/// Notably instance-independent.
pub fn determines_selection(catalog: &Catalog, views: &ViewSet, target: &SelectionView) -> bool {
    if views.contains(target) {
        return true;
    }
    let arity = catalog.schema().relation(target.attr.rel).arity();
    (0..arity).any(|pos| views.fully_covers(catalog, AttrRef::new(target.attr.rel, pos as u32)))
}

/// Consequence of Lemma 3.1: `V` determines the **whole relation** `R`
/// iff it fully covers some attribute of `R`.
pub fn determines_relation(catalog: &Catalog, views: &ViewSet, rel: RelId) -> bool {
    let arity = catalog.schema().relation(rel).arity();
    (0..arity).any(|pos| views.fully_covers(catalog, AttrRef::new(rel, pos as u32)))
}

/// The **minimal possible world** consistent with `V(D)`: exactly the tuples
/// of `D` covered by some view of `V`.
pub fn min_world(d: &Instance, views: &ViewSet) -> Instance {
    let schema = d.schema().clone();
    let mut out = Instance::empty(schema.clone());
    for (rid, _) in schema.iter() {
        for t in d.relation(rid).iter() {
            if views.covers_tuple(&schema, rid, t) {
                // audit: allow(R2: tuples of d reinserted under d's own schema)
                #[allow(clippy::expect_used)]
                out.insert(rid, t.clone()).expect("arity preserved");
            }
        }
    }
    out
}

/// The **maximal possible world** consistent with `V(D)`: the covered tuples
/// of `D` plus *every* column-product tuple covered by no view of `V`.
///
/// Size is `O(∏_X |Col_{R.X}|)` per relation — polynomial in data complexity
/// (arities are fixed), exactly as Theorem 3.3 requires.
pub fn max_world(catalog: &Catalog, d: &Instance, views: &ViewSet) -> Instance {
    let mut out = min_world(d, views);
    let schema = d.schema().clone();
    for (rid, _) in schema.iter() {
        catalog.for_each_product_tuple(rid, |vals| {
            let t = Tuple::new(vals.to_vec());
            if !views.covers_tuple(&schema, rid, &t) {
                // audit: allow(R2: product tuples are generated at schema arity)
                #[allow(clippy::expect_used)]
                out.insert(rid, t).expect("arity preserved");
            }
            true
        });
    }
    out
}

/// **Theorem 3.3 oracle**: for selection views `V ⊆ Σ` and a monotone
/// PTIME query `Q` (here: any UCQ with interpreted predicates),
/// `D ⊢ V ։ Q` iff `Q(D_min) = Q(D_max)`.
///
/// Every consistent `D'` satisfies `D_min ⊆ D' ⊆ D_max` and both bounds are
/// themselves consistent, so by monotonicity all answers are sandwiched.
pub fn determines_monotone_ucq(
    catalog: &Catalog,
    d: &Instance,
    views: &ViewSet,
    q: &Ucq,
) -> Result<bool, QueryError> {
    let dmin = min_world(d, views);
    let dmax = max_world(catalog, d, views);
    let lo = eval::eval_ucq(q, &dmin)?;
    let hi = eval::eval_ucq(q, &dmax)?;
    Ok(lo == hi)
}

/// [`determines_monotone_ucq`] for a single CQ.
pub fn determines_monotone_cq(
    catalog: &Catalog,
    d: &Instance,
    views: &ViewSet,
    q: &ConjunctiveQuery,
) -> Result<bool, QueryError> {
    let dmin = min_world(d, views);
    let dmax = max_world(catalog, d, views);
    let lo = eval::eval_cq(q, &dmin)?;
    let hi = eval::eval_cq(q, &dmax)?;
    Ok(lo == hi)
}

/// [`determines_monotone_ucq`] for a bundle: `V` determines `(Q_1,…,Q_m)`
/// iff it determines every member (Lemma 2.6(b)).
pub fn determines_monotone_bundle(
    catalog: &Catalog,
    d: &Instance,
    views: &ViewSet,
    q: &Bundle,
) -> Result<bool, QueryError> {
    // Build both worlds once, evaluate all queries on them.
    let dmin = min_world(d, views);
    let dmax = max_world(catalog, d, views);
    for ucq in q.queries() {
        if eval::eval_ucq(ucq, &dmin)? != eval::eval_ucq(ucq, &dmax)? {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbdp_catalog::{tuple, CatalogBuilder, Column};
    use qbdp_query::ast::CqBuilder;
    use qbdp_query::parser::parse_rule;

    /// Figure 1 database.
    fn figure1() -> (Catalog, Instance) {
        let ax = Column::texts(["a1", "a2", "a3", "a4"]);
        let by = Column::texts(["b1", "b2", "b3"]);
        let cat = CatalogBuilder::new()
            .relation("R", &[("X", ax.clone())])
            .relation("S", &[("X", ax), ("Y", by.clone())])
            .relation("T", &[("Y", by)])
            .build()
            .unwrap();
        let mut d = cat.empty_instance();
        let r = cat.schema().rel_id("R").unwrap();
        let s = cat.schema().rel_id("S").unwrap();
        let t = cat.schema().rel_id("T").unwrap();
        d.insert_all(r, [tuple!["a1"], tuple!["a2"]]).unwrap();
        d.insert_all(
            s,
            [
                tuple!["a1", "b1"],
                tuple!["a1", "b2"],
                tuple!["a2", "b2"],
                tuple!["a4", "b1"],
            ],
        )
        .unwrap();
        d.insert_all(t, [tuple!["b1"], tuple!["b3"]]).unwrap();
        (cat, d)
    }

    fn sel(cat: &Catalog, dotted: &str, v: &str) -> SelectionView {
        SelectionView::new(cat.schema().resolve_attr(dotted).unwrap(), v)
    }

    #[test]
    fn viewset_basics() {
        let (cat, _) = figure1();
        let mut vs = ViewSet::new();
        assert!(vs.insert(sel(&cat, "R.X", "a1")));
        assert!(!vs.insert(sel(&cat, "R.X", "a1")));
        assert!(vs.contains(&sel(&cat, "R.X", "a1")));
        assert_eq!(vs.len(), 1);
        assert!(vs.remove(&sel(&cat, "R.X", "a1")));
        assert!(vs.is_empty());
        let sigma = ViewSet::sigma(&cat);
        assert_eq!(sigma.len(), 4 + 4 + 3 + 3); // R.X, S.X, S.Y, T.Y
    }

    #[test]
    fn cover_tests() {
        let (cat, _) = figure1();
        let s = cat.schema().rel_id("S").unwrap();
        let vs = ViewSet::from_views([sel(&cat, "S.Y", "b1")]);
        assert!(vs.covers_tuple(cat.schema(), s, &tuple!["a1", "b1"]));
        assert!(!vs.covers_tuple(cat.schema(), s, &tuple!["a1", "b2"]));
        assert!(!vs.fully_covers(&cat, cat.schema().resolve_attr("S.Y").unwrap()));
        let full: ViewSet = ["b1", "b2", "b3"]
            .iter()
            .map(|b| sel(&cat, "S.Y", b))
            .collect();
        assert!(full.fully_covers(&cat, cat.schema().resolve_attr("S.Y").unwrap()));
    }

    #[test]
    fn lemma_3_1() {
        let (cat, _) = figure1();
        let target = sel(&cat, "S.X", "a1");
        // Trivial case.
        let vs = ViewSet::from_views([target.clone()]);
        assert!(determines_selection(&cat, &vs, &target));
        // Full cover of the *other* attribute.
        let vs: ViewSet = ["b1", "b2", "b3"]
            .iter()
            .map(|b| sel(&cat, "S.Y", b))
            .collect();
        assert!(determines_selection(&cat, &vs, &target));
        let s = cat.schema().rel_id("S").unwrap();
        assert!(determines_relation(&cat, &vs, s));
        // Partial cover does not determine.
        let vs: ViewSet = ["b1", "b2"].iter().map(|b| sel(&cat, "S.Y", b)).collect();
        assert!(!determines_selection(&cat, &vs, &target));
        assert!(!determines_relation(&cat, &vs, s));
    }

    #[test]
    fn min_max_worlds() {
        let (cat, d) = figure1();
        let vs = ViewSet::from_views([sel(&cat, "S.Y", "b1"), sel(&cat, "R.X", "a1")]);
        let dmin = min_world(&d, &vs);
        let s = cat.schema().rel_id("S").unwrap();
        let r = cat.schema().rel_id("R").unwrap();
        // Covered: S(a1,b1), S(a4,b1), R(a1).
        assert_eq!(dmin.relation(s).len(), 2);
        assert_eq!(dmin.relation(r).len(), 1);
        let dmax = max_world(&cat, &d, &vs);
        // S product = 4*3 = 12; covered slots: Y=b1 (4 tuples) of which 2 in
        // D. So dmax S = 2 (covered present) + 8 (uncovered product).
        assert_eq!(dmax.relation(s).len(), 10);
        // R: covered slot X=a1 (present), uncovered {a2, a3, a4} all added.
        assert_eq!(dmax.relation(r).len(), 4);
        assert!(dmin.is_subset_of(&dmax));
        assert!(min_world(&d, &vs).is_subset_of(&d));
    }

    #[test]
    fn theorem_3_3_oracle_on_figure1() {
        let (cat, d) = figure1();
        let q = CqBuilder::new("Q")
            .head_vars(["x", "y"])
            .atom("R", &["x"])
            .atom("S", &["x", "y"])
            .atom("T", &["y"])
            .build(cat.schema())
            .unwrap();
        // The minimal determining set from Example 3.8 (price 6).
        let vs = ViewSet::from_views([
            sel(&cat, "R.X", "a1"),
            sel(&cat, "R.X", "a4"),
            sel(&cat, "S.Y", "b1"),
            sel(&cat, "S.Y", "b3"),
            sel(&cat, "T.Y", "b1"),
            sel(&cat, "T.Y", "b2"),
        ]);
        assert!(determines_monotone_cq(&cat, &d, &vs, &q).unwrap());
        // Dropping any single view breaks determinacy (minimality).
        for v in vs.iter() {
            let mut smaller = vs.clone();
            smaller.remove(&v);
            assert!(
                !determines_monotone_cq(&cat, &d, &smaller, &q).unwrap(),
                "dropping {v:?} should break determinacy"
            );
        }
        // The V_0 of Example 3.8 is insufficient.
        let v0 = ViewSet::from_views([
            sel(&cat, "R.X", "a1"),
            sel(&cat, "S.Y", "b1"),
            sel(&cat, "T.Y", "b1"),
        ]);
        assert!(!determines_monotone_cq(&cat, &d, &v0, &q).unwrap());
        // Σ always determines everything.
        assert!(determines_monotone_cq(&cat, &d, &ViewSet::sigma(&cat), &q).unwrap());
    }

    #[test]
    fn example_2_4_instance_based_vs_information_theoretic() {
        // Q1(x,y,z) = R(x,y), S(y,z); Q = R(x,y), S(y,z), T(z,u).
        // On a database where Q1(D) = ∅, Q1 determines Q (both empty), even
        // though Q1 does not determine Q information-theoretically.
        let col = Column::int_range(0, 2);
        let cat = CatalogBuilder::new()
            .uniform_relation("R", &["X", "Y"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .uniform_relation("T", &["X", "Y"], &col)
            .build()
            .unwrap();
        // We emulate "knowing Q1(D) = ∅" with the view set that fixes R
        // fully and S fully... that would be stronger. Instead check the
        // *spirit* with selection views: an empty R fully covered makes any
        // query joining through R determined (everything empty).
        let mut d = cat.empty_instance();
        let t = cat.schema().rel_id("T").unwrap();
        d.insert(t, tuple![0, 1]).unwrap();
        let q = parse_rule(cat.schema(), "Q(x,y,z,u) :- R(x,y), S(y,z), T(z,u)").unwrap();
        let vs: ViewSet = (0..2)
            .map(|i| SelectionView::new(cat.schema().resolve_attr("R.X").unwrap(), Value::Int(i)))
            .collect();
        // R is empty and fully covered on X ⇒ R known empty ⇒ Q known empty.
        assert!(determines_monotone_cq(&cat, &d, &vs, &q).unwrap());
        // Same views on a database where R is nonempty do not determine Q.
        let r = cat.schema().rel_id("R").unwrap();
        let s = cat.schema().rel_id("S").unwrap();
        let mut d2 = d.clone();
        d2.insert(r, tuple![0, 0]).unwrap();
        d2.insert(s, tuple![0, 1]).unwrap();
        assert!(!determines_monotone_cq(&cat, &d2, &vs, &q).unwrap());
    }

    #[test]
    fn bundle_determinacy_requires_every_member() {
        let (cat, d) = figure1();
        let q_r = CqBuilder::new("QR")
            .head_var("x")
            .atom("R", &["x"])
            .build(cat.schema())
            .unwrap();
        let q_t = CqBuilder::new("QT")
            .head_var("y")
            .atom("T", &["y"])
            .build(cat.schema())
            .unwrap();
        let full_r: ViewSet = ["a1", "a2", "a3", "a4"]
            .iter()
            .map(|a| sel(&cat, "R.X", a))
            .collect();
        let b_r = Bundle::single(Ucq::single(q_r.clone()));
        let b_rt = Bundle::new([Ucq::single(q_r), Ucq::single(q_t)]);
        assert!(determines_monotone_bundle(&cat, &d, &full_r, &b_r).unwrap());
        assert!(!determines_monotone_bundle(&cat, &d, &full_r, &b_rt).unwrap());
    }

    #[test]
    fn selection_view_as_query() {
        let (cat, d) = figure1();
        let v = sel(&cat, "S.Y", "b1");
        let q = v.to_query(cat.schema());
        let ans = qbdp_query::eval::eval_cq(&q, &d).unwrap();
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&tuple!["a1", "b1"]));
        assert!(ans.contains(&tuple!["a4", "b1"]));
    }
}
