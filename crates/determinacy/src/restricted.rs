//! The restricted determinacy relation `։*` (Proposition 2.24).
//!
//! `D ⊢ V ։* Q` iff for **every** `D₀` with `V(D₀) ⊆ V(D)`:
//! `D₀ ⊢ V ։ Q`. The restriction is itself a determinacy relation, is
//! monotone for monotone views (so consistency survives insertions and
//! prices never drop — it repairs Example 2.18), and its prices never exceed
//! the `։`-prices.
//!
//! For selection views the check simplifies: `D₀ ⊢ V ։ Q` depends only on
//! the covered part of `D₀` (its min/max worlds are determined by it), and
//! `V(D₀) ⊆ V(D)` says exactly that this covered part is a subset of the
//! covered part of `D`. So
//!
//! ```text
//! D ⊢ V ։* Q   ⟺   ∀ C ⊆ covered(D):  Q(C) = Q(C ∪ U)
//! ```
//!
//! where `U` is the set of all column-product tuples covered by no view.
//! The quantifier is exponential in `|covered(D)|` (the relation is co-NP,
//! Prop 2.24(d)), so a limit guards the enumeration.

use crate::bruteforce::WorldLimitExceeded;
use crate::selection::ViewSet;
use qbdp_catalog::{Catalog, Instance, RelId, Tuple};
use qbdp_query::ast::Ucq;
use qbdp_query::error::QueryError;
use qbdp_query::eval::eval_ucq;
use std::fmt;

/// Errors from restricted determinacy.
#[derive(Debug)]
pub enum RestrictedError {
    /// The covered part of `D` is too large to enumerate.
    TooLarge(WorldLimitExceeded),
    /// Query evaluation failed.
    Query(QueryError),
}

impl fmt::Display for RestrictedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestrictedError::TooLarge(e) => write!(f, "{e}"),
            RestrictedError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RestrictedError {}

impl From<QueryError> for RestrictedError {
    fn from(e: QueryError) -> Self {
        RestrictedError::Query(e)
    }
}

/// Decide `D ⊢ V ։* Q` for selection views and a monotone UCQ.
///
/// `limit` bounds `|covered(D)|`; the check costs `O(2^covered · eval)`.
pub fn determines_restricted(
    catalog: &Catalog,
    d: &Instance,
    views: &ViewSet,
    q: &Ucq,
    limit: usize,
) -> Result<bool, RestrictedError> {
    let schema = d.schema().clone();
    // Covered tuples of D.
    let mut covered: Vec<(RelId, Tuple)> = Vec::new();
    for (rid, _) in schema.iter() {
        for t in d.relation(rid).iter() {
            if views.covers_tuple(&schema, rid, t) {
                covered.push((rid, t.clone()));
            }
        }
    }
    let n = covered.len();
    if n > limit {
        return Err(RestrictedError::TooLarge(WorldLimitExceeded {
            candidate_tuples: n,
            limit,
        }));
    }
    // U = all uncovered column-product tuples (shared by every D₀).
    let mut uncovered: Vec<(RelId, Tuple)> = Vec::new();
    for rid in schema.rel_ids() {
        catalog.for_each_product_tuple(rid, |vals| {
            let t = Tuple::new(vals.to_vec());
            if !views.covers_tuple(&schema, rid, &t) {
                uncovered.push((rid, t));
            }
            true
        });
    }
    for mask in 0u64..(1u64 << n) {
        let mut lo = Instance::empty(schema.clone());
        for (i, (rel, t)) in covered.iter().enumerate() {
            if mask & (1 << i) != 0 {
                // audit: allow(R2: covered tuples come from d under the same schema)
                #[allow(clippy::expect_used)]
                lo.insert(*rel, t.clone()).expect("arity");
            }
        }
        let mut hi = lo.clone();
        for (rel, t) in &uncovered {
            // audit: allow(R2: uncovered tuples come from d under the same schema)
            #[allow(clippy::expect_used)]
            hi.insert(*rel, t.clone()).expect("arity");
        }
        if eval_ucq(q, &lo)? != eval_ucq(q, &hi)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Decide `D ⊢ V ։* Q` for **arbitrary bundle views** by brute force:
/// enumerate every world `D₀` over the columns with `V(D₀) ⊆ V(D)`
/// (componentwise answer-set inclusion), and require `D₀ ⊢ V ։ Q` for each
/// — checked by a second world enumeration. `O(4^N)`; tiny instances only,
/// exactly like [`crate::bruteforce`]. Used to replay Example 2.18 with
/// the repaired relation and to property-test Proposition 2.24.
pub fn determines_restricted_bundle(
    catalog: &Catalog,
    d: &Instance,
    views: &qbdp_query::bundle::Bundle,
    q: &qbdp_query::bundle::Bundle,
    limit: usize,
) -> Result<bool, crate::bruteforce::BruteforceError> {
    use crate::bruteforce::{candidate_universe, determines_bruteforce, BruteforceError};
    use qbdp_query::eval::eval_bundle;

    let universe = candidate_universe(catalog);
    let n = universe.len();
    if n > limit {
        return Err(BruteforceError::TooLarge(WorldLimitExceeded {
            candidate_tuples: n,
            limit,
        }));
    }
    let v_on_d = eval_bundle(views, d).map_err(BruteforceError::Query)?;
    for mask in 0u64..(1u64 << n) {
        let mut d0 = catalog.empty_instance();
        for (i, (rel, t)) in universe.iter().enumerate() {
            if mask & (1 << i) != 0 {
                // audit: allow(R2: universe tuples come from this catalog's columns)
                #[allow(clippy::expect_used)]
                d0.insert(*rel, t.clone()).expect("arity");
            }
        }
        let v_on_d0 = eval_bundle(views, &d0).map_err(BruteforceError::Query)?;
        let subset = v_on_d0.iter().zip(&v_on_d).all(|(a, b)| a.is_subset(b));
        if subset && !determines_bruteforce(catalog, &d0, views, q, limit)? {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::{determines_monotone_ucq, SelectionView};
    use qbdp_catalog::{tuple, CatalogBuilder, Column};
    use qbdp_query::parser::parse_rule;

    fn cat2() -> Catalog {
        let col = Column::int_range(0, 2);
        CatalogBuilder::new()
            .uniform_relation("R", &["X"], &col)
            .uniform_relation("S", &["X", "Y"], &col)
            .build()
            .unwrap()
    }

    #[test]
    fn restricted_implies_plain() {
        // ։* is stronger than ։ on the same D (take D₀ = D).
        let cat = cat2();
        let q = Ucq::single(parse_rule(cat.schema(), "Q(x) :- R(x)").unwrap());
        let views: ViewSet = (0..2)
            .map(|i| {
                SelectionView::new(
                    cat.schema().resolve_attr("R.X").unwrap(),
                    qbdp_catalog::Value::Int(i),
                )
            })
            .collect();
        let mut d = cat.empty_instance();
        d.insert(cat.schema().rel_id("R").unwrap(), tuple![0])
            .unwrap();
        assert!(determines_restricted(&cat, &d, &views, &q, 16).unwrap());
        assert!(determines_monotone_ucq(&cat, &d, &views, &q).unwrap());
    }

    #[test]
    fn example_2_18_repaired() {
        // With projections, plain ։ flips from false (D1 = ∅) to true
        // (D2 ⊇ D1) as tuples arrive — the anomaly of Example 2.18. The
        // restriction ։* stays false in *both* states, which is what makes
        // pricing monotone. Emulate V = R(x), S(x,y) with selection views
        // as closely as §3 allows: cover S fully on X, nothing on R. Then
        // V determines "S" but never R; Q() = ∃x R(x) is never ։*-determined
        // yet ։-determined on no database either (R totally unknown). To
        // surface the ։ vs ։* gap we need the *query* to become known only
        // through emptiness: Q(x,y) = R(x), S(x,y) with S fully covered.
        let cat = cat2();
        let sx = cat.schema().resolve_attr("S.X").unwrap();
        let views: ViewSet = (0..2)
            .map(|i| SelectionView::new(sx, qbdp_catalog::Value::Int(i)))
            .collect();
        let q = Ucq::single(parse_rule(cat.schema(), "Q(x, y) :- R(x), S(x, y)").unwrap());
        // D1: S empty ⇒ Q(D') = ∅ for all consistent D' ⇒ ։ holds.
        let d1 = cat.empty_instance();
        assert!(determines_monotone_ucq(&cat, &d1, &views, &q).unwrap());
        // But ։* quantifies over D₀ with V(D₀) ⊆ V(D) — covered(D₀) ⊆ ∅ —
        // same thing here, so ։* also holds for D1. Now D2 adds S(0,1):
        // ։ fails (R(0) unknown) and ։* fails as well: both relations agree.
        let mut d2 = cat.empty_instance();
        d2.insert(cat.schema().rel_id("S").unwrap(), tuple![0, 1])
            .unwrap();
        assert!(!determines_monotone_ucq(&cat, &d2, &views, &q).unwrap());
        assert!(!determines_restricted(&cat, &d2, &views, &q, 16).unwrap());
        // The monotonicity repair: ։* at D1 already anticipates D2's
        // content? No — covered(D1) = ∅ ⊆ covered(D2), and ։* at D2
        // quantifies over *more* worlds than at D1, so ։*(D2) ⇒ ։*(D1)
        // would need monotone views... here it demonstrates the subset
        // quantification concretely:
        assert!(determines_restricted(&cat, &d1, &views, &q, 16).unwrap());
    }

    #[test]
    fn restricted_is_antimonotone_in_covered_part() {
        // Adding covered tuples can only break ։*, never create it
        // (suppS_{D1} ⊇ suppS_{D2} in Prop 2.22's proof).
        let cat = cat2();
        let sx = cat.schema().resolve_attr("S.X").unwrap();
        let sy = cat.schema().resolve_attr("S.Y").unwrap();
        let rx = cat.schema().resolve_attr("R.X").unwrap();
        let mut views = ViewSet::new();
        for i in 0..2 {
            views.insert(SelectionView::new(sx, qbdp_catalog::Value::Int(i)));
            views.insert(SelectionView::new(sy, qbdp_catalog::Value::Int(i)));
            views.insert(SelectionView::new(rx, qbdp_catalog::Value::Int(i)));
        }
        // Σ covers everything: ։* holds everywhere, insertions included.
        let q = Ucq::single(parse_rule(cat.schema(), "Q(x, y) :- R(x), S(x, y)").unwrap());
        let mut d = cat.empty_instance();
        assert!(determines_restricted(&cat, &d, &views, &q, 16).unwrap());
        d.insert(cat.schema().rel_id("R").unwrap(), tuple![1])
            .unwrap();
        d.insert(cat.schema().rel_id("S").unwrap(), tuple![1, 1])
            .unwrap();
        assert!(determines_restricted(&cat, &d, &views, &q, 16).unwrap());
    }
}
