//! Definition 2.5: a determinacy relation must satisfy reflexivity,
//! transitivity, augmentation, and boundedness. The paper proves both
//! instance-based and information-theoretic determinacy satisfy these; here
//! we machine-check the axioms for our brute-force instance-based relation
//! on exhaustively-enumerated tiny worlds, and spot-check the same axioms
//! for the PTIME selection-view oracle.

use qbdp_catalog::{tuple, Catalog, CatalogBuilder, Column, Instance};
use qbdp_determinacy::bruteforce::determines_bruteforce;
use qbdp_determinacy::selection::{determines_monotone_bundle, SelectionView, ViewSet};
use qbdp_query::bundle::Bundle;
use qbdp_query::parser::parse_rule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const LIMIT: usize = 10;

fn tiny() -> Catalog {
    let col = Column::int_range(0, 2);
    CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .build()
        .unwrap()
}

fn random_db(cat: &Catalog, rng: &mut StdRng) -> Instance {
    let mut d = cat.empty_instance();
    for x in 0..2i64 {
        if rng.gen_bool(0.5) {
            let _ = d.insert(cat.schema().rel_id("R").unwrap(), tuple![x]);
        }
        for y in 0..2i64 {
            if rng.gen_bool(0.5) {
                let _ = d.insert(cat.schema().rel_id("S").unwrap(), tuple![x, y]);
            }
        }
    }
    d
}

/// A small pool of bundles to draw V1, V2, V3 from.
fn bundle_pool(cat: &Catalog) -> Vec<Bundle> {
    let s = cat.schema();
    let q = |src: &str| Bundle::from(parse_rule(s, src).unwrap());
    vec![
        Bundle::empty(),
        q("A(x) :- R(x)"),
        q("B(x, y) :- S(x, y)"),
        q("C(x, y) :- R(x), S(x, y)"),
        q("D() :- S(x, x)"),
        q("E(x) :- S(x, y)"),
    ]
}

fn det(cat: &Catalog, d: &Instance, v: &Bundle, q: &Bundle) -> bool {
    determines_bruteforce(cat, d, v, q, LIMIT).unwrap()
}

/// Reflexivity: `D ⊢ V1,V2 ։ V1`.
#[test]
fn axiom_reflexivity() {
    let cat = tiny();
    let mut rng = StdRng::seed_from_u64(251);
    let pool = bundle_pool(&cat);
    for _ in 0..6 {
        let d = random_db(&cat, &mut rng);
        for v1 in &pool {
            for v2 in &pool {
                assert!(
                    det(&cat, &d, &v1.union(v2), v1),
                    "reflexivity failed for {v1:?} with {v2:?}"
                );
            }
        }
    }
}

/// Transitivity: `V1 ։ V2` and `V2 ։ V3` imply `V1 ։ V3`.
#[test]
fn axiom_transitivity() {
    let cat = tiny();
    let mut rng = StdRng::seed_from_u64(252);
    let pool = bundle_pool(&cat);
    let mut triggered = 0;
    for _ in 0..6 {
        let d = random_db(&cat, &mut rng);
        for v1 in &pool {
            for v2 in &pool {
                if !det(&cat, &d, v1, v2) {
                    continue;
                }
                for v3 in &pool {
                    if det(&cat, &d, v2, v3) {
                        triggered += 1;
                        assert!(
                            det(&cat, &d, v1, v3),
                            "transitivity failed: {v1:?} ։ {v2:?} ։ {v3:?}"
                        );
                    }
                }
            }
        }
    }
    assert!(
        triggered > 20,
        "transitivity premises rarely held ({triggered})"
    );
}

/// Augmentation: `V1 ։ V2` implies `V1,V' ։ V2,V'`.
#[test]
fn axiom_augmentation() {
    let cat = tiny();
    let mut rng = StdRng::seed_from_u64(253);
    let pool = bundle_pool(&cat);
    let mut triggered = 0;
    for _ in 0..4 {
        let d = random_db(&cat, &mut rng);
        for v1 in &pool {
            for v2 in &pool {
                if !det(&cat, &d, v1, v2) {
                    continue;
                }
                for vp in pool.iter().take(4) {
                    triggered += 1;
                    assert!(
                        det(&cat, &d, &v1.union(vp), &v2.union(vp)),
                        "augmentation failed: {v1:?} ։ {v2:?} with {vp:?}"
                    );
                }
            }
        }
    }
    assert!(
        triggered > 20,
        "augmentation premises rarely held ({triggered})"
    );
}

/// Boundedness: `D ⊢ ID ։ V` for every bundle V.
#[test]
fn axiom_boundedness() {
    let cat = tiny();
    let mut rng = StdRng::seed_from_u64(254);
    let id = Bundle::identity(cat.schema()).unwrap();
    for _ in 0..6 {
        let d = random_db(&cat, &mut rng);
        for v in &bundle_pool(&cat) {
            assert!(det(&cat, &d, &id, v), "boundedness failed for {v:?}");
        }
    }
}

/// The same axioms hold for the PTIME selection-view oracle, phrased over
/// view sets: monotone in V (augmentation's consequence) and bounded by Σ.
#[test]
fn selection_oracle_monotone_and_bounded() {
    let cat = tiny();
    let mut rng = StdRng::seed_from_u64(255);
    let sigma: Vec<SelectionView> = ViewSet::sigma(&cat).iter().collect();
    let q = Bundle::from(parse_rule(cat.schema(), "Q(x, y) :- R(x), S(x, y)").unwrap());
    for _ in 0..30 {
        let d = random_db(&cat, &mut rng);
        let vs: ViewSet = sigma
            .iter()
            .filter(|_| rng.gen_bool(0.4))
            .cloned()
            .collect();
        let determined = determines_monotone_bundle(&cat, &d, &vs, &q).unwrap();
        // Adding one more view never destroys determinacy.
        if determined {
            for extra in &sigma {
                let mut bigger = vs.clone();
                bigger.insert(extra.clone());
                assert!(
                    determines_monotone_bundle(&cat, &d, &bigger, &q).unwrap(),
                    "monotonicity in V failed"
                );
            }
        }
        // Σ always determines.
        let full: ViewSet = sigma.iter().cloned().collect();
        assert!(determines_monotone_bundle(&cat, &d, &full, &q).unwrap());
    }
}
