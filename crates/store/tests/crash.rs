//! Crash-recovery properties of the WAL (the satellite the whole
//! subsystem is judged by): for **every** byte offset a log can be cut
//! at, reopening either reaches a state equal to a prefix of the
//! committed events (a torn tail is truncated) or fails with a *typed*
//! [`StoreError::CorruptRecord`] — it never panics and never invents or
//! reorders events. Bit flips — damage, as opposed to truncation — must
//! never be silently absorbed into a *wrong* event: CRC-32 framing turns
//! them into a typed error or, when they sever the tail, a clean prefix.

use proptest::prelude::*;
use qbdp_store::{FsyncPolicy, MarketEvent, StoreError, Wal};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "qbdp_crash_{tag}_{}_{}.wal",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

const RELS: [&str; 3] = ["R", "S", "T"];
const VALS: [&str; 4] = ["a1", "b2", "c3", "quoted value"];

/// A strategy over single events, covering every variant (strings picked
/// from fixed pools — the event codec's own unit tests cover arbitrary
/// text; here the subject is framing).
fn event_strategy() -> impl Strategy<Value = MarketEvent> {
    prop_oneof![
        (0usize..3, 0u64..10_000).prop_map(|(r, cents)| MarketEvent::SetPrice {
            view: format!("{}.X=a1", RELS[r]),
            cents,
        }),
        (0usize..3, proptest::collection::vec(0usize..4, 1..3)).prop_map(|(r, vs)| {
            MarketEvent::InsertTuple {
                relation: RELS[r].to_string(),
                values: vs.iter().map(|&v| VALS[v].to_string()).collect(),
            }
        }),
        (0u64..10_000, 0u64..50, 0u64..10).prop_map(|(price_cents, answer_tuples, views)| {
            MarketEvent::Purchase {
                query: "Q(x, y) :- R(x), S(x, y)".to_string(),
                price_cents,
                answer_tuples,
                views,
            }
        }),
        (any::<bool>(), 0u64..16, 0u64..8).prop_map(|(sell_degraded, max_in_flight, workers)| {
            MarketEvent::PolicyChange {
                deadline_ms: (max_in_flight % 2 == 0).then_some(max_in_flight * 10),
                fuel: (workers % 2 == 0).then_some(workers * 1000),
                sell_degraded,
                max_in_flight,
                batch_workers: workers,
            }
        }),
        (0u64..1_000_000).prop_map(|wal_pos| MarketEvent::SnapshotMark { wal_pos }),
    ]
}

/// Write `events` to a fresh WAL and return the raw file bytes.
fn committed_bytes(tag: &str, events: &[MarketEvent]) -> Vec<u8> {
    let path = temp_path(tag);
    let mut wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
    for e in events {
        wal.append(e).unwrap();
    }
    wal.sync().unwrap();
    drop(wal);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

/// Reopen a WAL whose file contains exactly `bytes`; return the replayed
/// events or the typed error.
fn recover(tag: &str, bytes: &[u8]) -> Result<Vec<MarketEvent>, StoreError> {
    let path = temp_path(tag);
    std::fs::write(&path, bytes).unwrap();
    let result = Wal::open(&path, FsyncPolicy::Never)
        .and_then(|wal| Ok(wal.replay()?.into_iter().map(|r| r.event).collect()));
    std::fs::remove_file(&path).ok();
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill the process at any byte: recovery yields exactly the events
    /// whose frames were fully on disk — nothing more, nothing else, no
    /// error, no panic.
    #[test]
    fn truncation_at_every_byte_recovers_a_prefix(
        events in proptest::collection::vec(event_strategy(), 1..8)
    ) {
        let bytes = committed_bytes("trunc", &events);
        // Frame boundaries, for computing the expected prefix at each cut.
        let mut boundaries = vec![0u64];
        {
            let path = temp_path("bounds");
            std::fs::write(&path, &bytes).unwrap();
            let wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
            for r in wal.replay().unwrap() {
                boundaries.push(r.end);
            }
            std::fs::remove_file(&path).ok();
        }
        prop_assert_eq!(boundaries.len(), events.len() + 1);
        for cut in 0..=bytes.len() {
            let recovered = recover("cut", &bytes[..cut]);
            let expected = boundaries.iter().filter(|&&b| b > 0 && b <= cut as u64).count();
            match recovered {
                Ok(replayed) => {
                    prop_assert_eq!(
                        replayed.len(), expected,
                        "cut at {} recovered {} events, expected {}",
                        cut, replayed.len(), expected
                    );
                    prop_assert_eq!(&replayed[..], &events[..expected]);
                }
                Err(e) => {
                    return Err(TestCaseError::fail(format!(
                        "pure truncation at byte {cut} must never error, got {e}"
                    )));
                }
            }
        }
    }

    /// Flip any single bit anywhere in the log: recovery must yield a
    /// (possibly shorter) prefix of the committed events or a typed
    /// `CorruptRecord` — never a panic, never a *different* event.
    #[test]
    fn single_bit_flip_is_detected_or_severs_the_tail(
        events in proptest::collection::vec(event_strategy(), 1..6),
        flip_seed in 0usize..4096,
    ) {
        let bytes = committed_bytes("flip", &events);
        let byte = flip_seed / 8 % bytes.len();
        let bit = (flip_seed % 8) as u8;
        let mut damaged = bytes.clone();
        damaged[byte] ^= 1 << bit;
        match recover("flipped", &damaged) {
            Ok(replayed) => {
                // The flip enlarged a length field past EOF (or hit the
                // already-torn region): the tail is severed, but what
                // remains must still be an exact prefix.
                prop_assert!(replayed.len() <= events.len());
                prop_assert_eq!(&replayed[..], &events[..replayed.len()]);
            }
            Err(StoreError::CorruptRecord { offset, .. }) => {
                prop_assert!(
                    offset <= bytes.len() as u64,
                    "corruption reported beyond the file: {}", offset
                );
            }
            Err(other) => {
                return Err(TestCaseError::fail(format!(
                    "expected CorruptRecord, got {other}"
                )));
            }
        }
    }
}

/// The deterministic regression the ISSUE names: flip one bit in the CRC
/// of a mid-log record and recovery refuses with `CorruptRecord` at that
/// record's offset.
#[test]
fn flipped_crc_bit_yields_typed_corrupt_record() {
    let events = vec![
        MarketEvent::SetPrice {
            view: "R.X=a1".into(),
            cents: 100,
        },
        MarketEvent::InsertTuple {
            relation: "S".into(),
            values: vec!["a1".into(), "b2".into()],
        },
        MarketEvent::Purchase {
            query: "Q(x) :- R(x)".into(),
            price_cents: 100,
            answer_tuples: 1,
            views: 1,
        },
    ];
    let bytes = committed_bytes("crc", &events);
    // Record 0's frame: [len u32][crc u32][payload]. Flip a CRC bit.
    let mut damaged = bytes.clone();
    damaged[4] ^= 0x01;
    match recover("crc_flip", &damaged) {
        Err(StoreError::CorruptRecord { offset, .. }) => assert_eq!(offset, 0),
        other => panic!("expected CorruptRecord at offset 0, got {other:?}"),
    }
    // Sanity: the undamaged log replays everything.
    assert_eq!(recover("crc_ok", &bytes).unwrap(), events);
}

/// Clean-shutdown regression for `FsyncPolicy::EveryN`: appends inside
/// the current batch window are acked but not yet fsynced, and a
/// *graceful* drop of the handle used to abandon them — a crash-grade
/// data loss on the no-crash path. `FaultFs` models exactly this: its
/// durable shadow only advances on fsync, and `simulate_crash` rolls
/// the visible files back to the shadow. With the `Drop` flush, a clean
/// drop syncs the tail, so the post-"crash" replay must contain every
/// acked append, including the final partial batch.
#[test]
fn every_n_clean_drop_keeps_the_unsynced_tail() {
    use qbdp_store::{FaultFs, FaultPlan, RetryPolicy, Wal};
    use std::sync::Arc;

    let fs = Arc::new(FaultFs::new(FaultPlan::none()));
    let path = temp_path("every_n_tail");
    let events: Vec<MarketEvent> = (0..7)
        .map(|i| MarketEvent::SetPrice {
            view: format!("R.X=a{i}"),
            cents: 100 + i,
        })
        .collect();
    {
        let mut wal = Wal::open_with(
            fs.clone() as Arc<dyn qbdp_store::Vfs>,
            &path,
            FsyncPolicy::EveryN(5),
            RetryPolicy::none(),
        )
        .unwrap();
        for e in &events {
            wal.append(e).unwrap();
        }
        // 7 appends under EveryN(5): records 0..=4 fsynced at the batch
        // boundary, 5..=6 acked but sitting in the unsynced tail.
    } // clean shutdown: Drop must flush the tail
    fs.simulate_crash(42).unwrap();
    let wal = Wal::open_with(
        fs.clone() as Arc<dyn qbdp_store::Vfs>,
        &path,
        FsyncPolicy::EveryN(5),
        RetryPolicy::none(),
    )
    .unwrap();
    let recovered: Vec<MarketEvent> = wal
        .replay_from(0)
        .unwrap()
        .into_iter()
        .map(|r| r.event)
        .collect();
    assert_eq!(
        recovered, events,
        "the acked-but-unfsynced EveryN tail must survive a clean drop"
    );
}
