//! The chaos suite: randomized fault schedules against full market
//! workloads on [`FaultFs`], asserting the three robustness invariants
//! (see `qbdp_market::chaos`):
//!
//! 1. the recovered state equals a prefix of the acknowledged history
//!    (exactly the acked state, or acked + the one uncertain tail event
//!    of a poisoning fsync);
//! 2. no acknowledged purchase is ever lost (under `FsyncPolicy::Always`);
//! 3. every quote served under degradation is still a sound
//!    `[lower, upper]` interval over the frozen state.
//!
//! Locally this runs a few dozen schedules per scenario; CI cranks it
//! to 1000 via `QBDP_CHAOS_SCHEDULES` in `--release`. Every schedule is
//! deterministic in its seed, so any failure message names the exact
//! seed to replay.

use qbdp_market::chaos::{run_schedule, ChaosConfig};
use qbdp_market::{FsyncPolicy, Market, MarketHealth};
use qbdp_store::{FaultFs, FaultPlan, RetryPolicy};
use qbdp_workload::scenarios::{business, sports, webgraph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const FIG1_QDP: &str = include_str!("../../../data/figure1.qdp");

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "qbdp_chaos_suite_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Schedules per scenario: a fast default locally, 1000 in CI.
fn schedules() -> u64 {
    std::env::var("QBDP_CHAOS_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25)
}

fn run_scenario(tag: &str, qdp: &str) {
    let n = schedules();
    let mut injected = 0u64;
    let mut refused = 0u64;
    let mut acked = 0u64;
    let mut pending_tails = 0u64;
    for seed in 0..n {
        let dir = temp_dir(tag);
        let cfg = ChaosConfig::new(seed);
        let report = run_schedule(qdp, &dir, &cfg)
            .unwrap_or_else(|e| panic!("{tag} seed {seed}: schedule setup failed: {e}"));
        assert!(
            report.is_sound(),
            "{tag} seed {seed} violated invariants: {report}"
        );
        injected += report.faults_injected;
        refused += report.store_errors + report.degraded_ops;
        acked += report.acked;
        pending_tails += u64::from(report.recovered_pending_tail);
        std::fs::remove_dir_all(&dir).ok();
    }
    // Never vacuous: across the schedule set, real work was acked, real
    // faults fired, and real operations were refused because of them.
    assert!(acked > 0, "{tag}: nothing was ever acknowledged");
    assert!(injected > 0, "{tag}: the injector never fired");
    assert!(refused > 0, "{tag}: no operation ever hit a fault");
    qbdp_obs::log_info!(
        "{tag}: {n} schedule(s), {acked} acked, {injected} fault(s), \
         {refused} refused, {pending_tails} pending tail(s) recovered"
    );
}

fn scenario_qdp(build: impl FnOnce() -> Market) -> String {
    build().to_qdp()
}

#[test]
fn chaos_figure1() {
    run_scenario("figure1", FIG1_QDP);
}

#[test]
fn chaos_sports() {
    let qdp = scenario_qdp(|| {
        let mut rng = StdRng::seed_from_u64(12);
        let m = sports::generate(
            &mut rng,
            sports::SportsConfig {
                teams: 5,
                games: 8,
                ..Default::default()
            },
        )
        .unwrap();
        Market::open(m.catalog, m.instance, m.prices).unwrap()
    });
    run_scenario("sports", &qdp);
}

#[test]
fn chaos_webgraph() {
    let qdp = scenario_qdp(|| {
        let mut rng = StdRng::seed_from_u64(13);
        let m = webgraph::generate(
            &mut rng,
            webgraph::WebGraphConfig {
                domains: 4,
                links: 8,
                ..Default::default()
            },
        )
        .unwrap();
        Market::open(m.catalog, m.instance, m.prices).unwrap()
    });
    run_scenario("webgraph", &qdp);
}

#[test]
fn chaos_business() {
    let qdp = scenario_qdp(|| {
        let mut rng = StdRng::seed_from_u64(11);
        let m = business::generate(
            &mut rng,
            business::BusinessConfig {
                states: 4,
                counties_per_state: 3,
                businesses: 40,
                ..Default::default()
            },
        )
        .unwrap();
        Market::open(m.catalog, m.instance, m.prices).unwrap()
    });
    run_scenario("business", &qdp);
}

/// The degradation contract end to end on the real market type: a
/// poisoning fsync flips the market read-only, quotes keep serving the
/// frozen state, and a restart recovers a healthy, writable market.
#[test]
fn fsync_poison_keeps_serving_then_recovers() {
    use qbdp_store::{FaultKind, FaultOp, ScriptedFault};
    let dir = temp_dir("poison_serve");
    let fs = FaultFs::new(FaultPlan {
        script: vec![ScriptedFault {
            op: FaultOp::Fsync,
            path_contains: "market.wal".into(),
            skip: 2,
            kind: FaultKind::FsyncFail,
        }],
        seeded: None,
    });
    let dm = qbdp_market::DurableMarket::create_with(
        std::sync::Arc::new(fs.clone()),
        &dir,
        FIG1_QDP,
        FsyncPolicy::Always,
        RetryPolicy::none(),
    )
    .unwrap();
    dm.purchase_str("Q(x) :- R(x)").unwrap();
    dm.purchase_str("Q(x, y) :- S(x, y)").unwrap();
    let acked_revenue = dm.market().revenue();
    // Third append hits the scripted fsync failure.
    assert!(dm.purchase_str("Q(y) :- T(y)").is_err());
    assert!(matches!(dm.health(), MarketHealth::ReadOnly { .. }));
    // Quotes keep serving sound intervals from the frozen state.
    let q = dm.quote_str("Q(x) :- R(x)").unwrap();
    assert!(q.lower_bound <= q.price);
    drop(dm);
    fs.simulate_crash(99).unwrap();
    let back = qbdp_market::DurableMarket::open_on(
        std::sync::Arc::new(fs),
        &dir,
        FsyncPolicy::Never,
        RetryPolicy::none(),
    )
    .unwrap();
    assert_eq!(back.health(), MarketHealth::Healthy);
    assert!(back.market().revenue() >= acked_revenue, "acked sales kept");
    back.purchase_str("Q(x) :- R(x)").unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Post-crash bit-rot: scrub() reports the damaged file and offset
/// before the bytes are load-bearing.
#[test]
fn scrub_detects_post_crash_bit_rot() {
    let dir = temp_dir("bitrot");
    let fs = FaultFs::new(FaultPlan::none());
    let dm = qbdp_market::DurableMarket::create_with(
        std::sync::Arc::new(fs.clone()),
        &dir,
        FIG1_QDP,
        FsyncPolicy::Always,
        RetryPolicy::none(),
    )
    .unwrap();
    dm.purchase_str("Q(x) :- R(x)").unwrap();
    assert!(dm.scrub().is_clean());
    // Rot one durable byte mid-log, as a dying disk would.
    let wal_path = dir.join("market.wal");
    let len = std::fs::metadata(&wal_path).unwrap().len();
    fs.corrupt_byte(&wal_path, len / 2, 0x08).unwrap();
    fs.simulate_crash(7).unwrap();
    let report = dm.scrub();
    assert!(!report.is_clean(), "{report}");
    assert_eq!(report.findings[0].file, "wal");
    assert!(report.findings[0].offset.is_some());
    std::fs::remove_dir_all(&dir).ok();
}
