//! Store-layer errors and the failure-domain taxonomy.
//!
//! Every error the durability layer can surface is classified into one
//! of two [`FaultClass`]es the caller can act on mechanically:
//!
//! * **Transient** — the operation itself failed but left no damage
//!   behind (`EINTR`, `EAGAIN`, a timeout). Retrying is safe; the store
//!   layer already retried with bounded jittered backoff before
//!   surfacing [`StoreError::Transient`], so a caller seeing it should
//!   report upstream rather than spin.
//! * **Fatal** — the store cannot promise the usual durability contract
//!   any more (`ENOSPC`, a failed fsync, corruption). Some fatal errors
//!   additionally demand the market stop accepting mutations
//!   ([`StoreError::degrades_to_read_only`]): serving reads from the
//!   last consistent state is still sound, but appending after them
//!   could bury garbage or acknowledge writes that will not survive.

use std::fmt;
use std::io;

/// The two failure domains a [`StoreError`] falls into. See the module
/// docs for the operational meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// Safe to retry; no state was damaged.
    Transient,
    /// The durability contract is at risk; do not blindly retry.
    Fatal,
}

/// Errors surfaced by the durability layer.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed with a non-transient
    /// error (`ENOSPC`, `EIO`, permissions…).
    Io(io::Error),
    /// A transient fault (`EINTR`/`EAGAIN`/timeout) persisted through
    /// the bounded retry-with-backoff policy. Nothing was damaged; the
    /// operation simply never completed.
    Transient {
        /// The logical operation that kept failing (e.g. `wal-append`).
        op: &'static str,
        /// The file involved.
        path: String,
        /// The last underlying error.
        source: io::Error,
    },
    /// A log record is present in full but fails its integrity checks
    /// (CRC mismatch or undecodable payload). Unlike a torn tail — which
    /// is the expected residue of a crash and is silently truncated — a
    /// corrupt record in the *body* of the log means the file was damaged
    /// after it was written, and recovery refuses to guess.
    CorruptRecord {
        /// Byte offset of the record's frame header.
        offset: u64,
        /// What failed (CRC, tag, field decoding…).
        reason: String,
    },
    /// A snapshot file is present but damaged (bad header, checksum
    /// mismatch, or truncated section).
    CorruptSnapshot(String),
    /// The directory has no snapshot: it was never initialized as a
    /// durable market (or the snapshot was deleted).
    SnapshotMissing,
    /// The directory already holds a durable market and cannot be
    /// re-initialized over it.
    AlreadyInitialized,
    /// The log handle refuses further appends. Either a failed append
    /// left partial frame bytes that could not be truncated away
    /// (appending after them would bury a complete-but-invalid frame
    /// mid-log), or an fsync failed — after which, per fsyncgate
    /// semantics, the kernel may have dropped the dirty pages and a
    /// later "successful" fsync would not make the earlier write
    /// durable. The offset and path identify the poisoned tail for
    /// triage; reopen the log to repair.
    Poisoned {
        /// The poisoned log file.
        path: String,
        /// Byte offset of the last known-clean record boundary.
        offset: u64,
        /// What poisoned the handle (unrepaired partial append, failed
        /// fsync…).
        reason: String,
    },
}

impl StoreError {
    /// Which failure domain this error falls into.
    pub fn class(&self) -> FaultClass {
        match self {
            StoreError::Transient { .. } => FaultClass::Transient,
            _ => FaultClass::Fatal,
        }
    }

    /// Whether the market holding the failed store should stop accepting
    /// mutations and degrade to read-only serving: `true` for a poisoned
    /// log (unrepaired partial append or failed fsync) and for `ENOSPC`.
    /// Reads from the in-memory state remain sound either way; what is
    /// no longer sound is *acknowledging* new writes.
    pub fn degrades_to_read_only(&self) -> bool {
        match self {
            StoreError::Poisoned { .. } => true,
            StoreError::Io(e) => e.kind() == io::ErrorKind::StorageFull,
            _ => false,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Transient { op, path, source } => {
                write!(
                    f,
                    "transient fault persisted through retries during {op} on {path}: {source}"
                )
            }
            StoreError::CorruptRecord { offset, reason } => {
                write!(f, "corrupt WAL record at byte {offset}: {reason}")
            }
            StoreError::CorruptSnapshot(m) => write!(f, "corrupt snapshot: {m}"),
            StoreError::SnapshotMissing => {
                write!(
                    f,
                    "no snapshot found: directory is not an initialized market"
                )
            }
            StoreError::AlreadyInitialized => {
                write!(f, "directory already holds a durable market")
            }
            StoreError::Poisoned {
                path,
                offset,
                reason,
            } => {
                write!(
                    f,
                    "log poisoned at byte {offset} of {path}: {reason}; \
                     appends are refused — reopen the log to repair"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Transient { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_and_degradation() {
        let transient = StoreError::Transient {
            op: "wal-append",
            path: "x.wal".into(),
            source: io::Error::from(io::ErrorKind::Interrupted),
        };
        assert_eq!(transient.class(), FaultClass::Transient);
        assert!(!transient.degrades_to_read_only());

        let enospc = StoreError::Io(io::Error::from(io::ErrorKind::StorageFull));
        assert_eq!(enospc.class(), FaultClass::Fatal);
        assert!(enospc.degrades_to_read_only());

        let poisoned = StoreError::Poisoned {
            path: "x.wal".into(),
            offset: 42,
            reason: "fsync failed".into(),
        };
        assert_eq!(poisoned.class(), FaultClass::Fatal);
        assert!(poisoned.degrades_to_read_only());

        let corrupt = StoreError::CorruptSnapshot("checksum".into());
        assert_eq!(corrupt.class(), FaultClass::Fatal);
        assert!(!corrupt.degrades_to_read_only());
    }

    #[test]
    fn poison_message_names_offset_and_path() {
        let poisoned = StoreError::Poisoned {
            path: "/data/market.wal".into(),
            offset: 1234,
            reason: "unrepaired partial append".into(),
        };
        let msg = poisoned.to_string();
        assert!(msg.contains("byte 1234"), "{msg}");
        assert!(msg.contains("/data/market.wal"), "{msg}");
    }
}
