//! Store-layer errors.

use std::fmt;
use std::io;

/// Errors surfaced by the durability layer.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A log record is present in full but fails its integrity checks
    /// (CRC mismatch or undecodable payload). Unlike a torn tail — which
    /// is the expected residue of a crash and is silently truncated — a
    /// corrupt record in the *body* of the log means the file was damaged
    /// after it was written, and recovery refuses to guess.
    CorruptRecord {
        /// Byte offset of the record's frame header.
        offset: u64,
        /// What failed (CRC, tag, field decoding…).
        reason: String,
    },
    /// A snapshot file is present but damaged (bad header, checksum
    /// mismatch, or truncated section).
    CorruptSnapshot(String),
    /// The directory has no snapshot: it was never initialized as a
    /// durable market (or the snapshot was deleted).
    SnapshotMissing,
    /// The directory already holds a durable market and cannot be
    /// re-initialized over it.
    AlreadyInitialized,
    /// An earlier append failed partway through its frame and the
    /// partial bytes could not be removed; the handle refuses further
    /// appends, because writing after the garbage would bury it mid-log
    /// as a complete-but-invalid frame that recovery must refuse.
    /// Reopen the log to repair (open truncates the torn tail).
    Poisoned,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::CorruptRecord { offset, reason } => {
                write!(f, "corrupt WAL record at byte {offset}: {reason}")
            }
            StoreError::CorruptSnapshot(m) => write!(f, "corrupt snapshot: {m}"),
            StoreError::SnapshotMissing => {
                write!(
                    f,
                    "no snapshot found: directory is not an initialized market"
                )
            }
            StoreError::AlreadyInitialized => {
                write!(f, "directory already holds a durable market")
            }
            StoreError::Poisoned => {
                write!(
                    f,
                    "log handle poisoned by an unrepaired partial append; reopen the log"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}
