//! The append-only, checksummed write-ahead log.
//!
//! # Record framing
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────────┐
//! │ len: u32LE │ crc: u32LE │ payload (len bytes)  │
//! └────────────┴────────────┴──────────────────────┘
//! ```
//!
//! `crc` is CRC-32/IEEE over the payload. Records abut with no padding;
//! a record's *position* is the byte offset of its `len` field, and the
//! log's position is the offset one past the last record — the value a
//! snapshot stores as the point its state covers.
//!
//! # Crash semantics
//!
//! A crash can only leave the file with a **torn tail**: some prefix of
//! the final record missing (the kernel persists appends in order within
//! one file). [`Wal::open`] therefore scans the whole log and
//!
//! * truncates a trailing *incomplete* frame (header short, or payload
//!   shorter than `len`) — that is the expected residue of a crash, and
//!   every byte before it is a clean record;
//! * truncates a trailing all-zero header (a filesystem that extended
//!   the file but never wrote the append leaves zeros);
//! * refuses with [`StoreError::CorruptRecord`] if a frame is present
//!   *in full* but its CRC or its payload decoding fails — truncation
//!   cannot manufacture that, so the file was damaged after the fact
//!   and silently dropping the record (and everything after it) would
//!   resurrect a state the market never durably confirmed.
//!
//! # Failure domains
//!
//! Appends run on a [`Vfs`] and classify faults per the taxonomy in
//! [`crate::error`]: transient faults (`EINTR`/`EAGAIN`) retry the
//! whole frame with jittered backoff after discarding partial bytes; a
//! partial fatal write (`ENOSPC`) truncates back to the last record
//! boundary (bounded retries on the truncate itself) so the garbage
//! can never be buried mid-log; and a **failed fsync poisons the
//! handle** — per fsyncgate semantics the kernel may already have
//! dropped the dirty pages, so continuing to append would let later
//! "synced" events leapfrog an earlier acknowledged-but-lost one.
//! Poisoning guarantees the at-most-one uncertain event is always the
//! *last* one in the log, which is what keeps recovery
//! prefix-consistent.
//!
//! # Fsync policy
//!
//! [`FsyncPolicy`] trades durability for append latency: `Always` fsyncs
//! every append (group-commit left to the caller), `EveryN(n)` fsyncs
//! every `n` appends, `Never` leaves flushing to the OS. Whatever the
//! policy, the *framing* guarantees recovery is prefix-consistent — the
//! policy only bounds how many tail events a power loss may drop.

use crate::crc::crc32;
use crate::error::StoreError;
use crate::event::MarketEvent;
use crate::vfs::{is_transient_kind, RealFs, RetryPolicy, Vfs, VfsFile};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// How often the log fsyncs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: an acknowledged mutation survives
    /// power loss.
    Always,
    /// `fsync` every `n` appends: at most `n-1` acknowledged mutations
    /// can be lost (`EveryN(0)` and `EveryN(1)` behave like `Always`).
    EveryN(u64),
    /// Never `fsync` explicitly; the OS flushes when it pleases. A
    /// process crash (not power loss) still loses nothing.
    Never,
}

/// One decoded log record with its byte extent.
#[derive(Clone, Debug)]
pub struct LogRecord {
    /// Offset of the record's frame header.
    pub start: u64,
    /// Offset one past the record (= position of the next record).
    pub end: u64,
    /// The decoded event.
    pub event: MarketEvent,
}

/// Records larger than this are rejected as corrupt rather than
/// allocated: no market event comes within orders of magnitude of it.
const MAX_RECORD: u32 = 1 << 24;

pub(crate) const HEADER: usize = 8;

/// The append handle over one log file. Opening scans and repairs the
/// torn tail; see the module docs for the exact semantics.
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    file: Box<dyn VfsFile>,
    path: PathBuf,
    position: u64,
    policy: FsyncPolicy,
    retry: RetryPolicy,
    unsynced: u64,
    /// Why appends are refused, when they are: the clean offset plus
    /// the poisoning cause. See [`StoreError::Poisoned`].
    poisoned: Option<String>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("position", &self.position)
            .field("policy", &self.policy)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

/// Clean-shutdown flush. Under [`FsyncPolicy::EveryN`] up to `n - 1`
/// acked appends sit in the "synced by the *next* batch boundary"
/// window; without this, dropping the last handle on a graceful exit
/// silently abandoned that tail — the one failure `EveryN`'s contract
/// ("bounded loss on *power failure*", not on *clean shutdown*) does
/// not permit. [`FsyncPolicy::Never`] is deliberately excluded — that
/// policy is an explicit opt-out of fsync entirely, and `Always` never
/// has a tail (`unsynced` returns to zero on every append). Best-effort
/// by necessity (`Drop` cannot return an error): a failure here poisons
/// nothing because the handle is gone, and callers that need the error
/// path use an explicit [`Wal::sync`] — the drop flush is the backstop,
/// not the contract.
impl Drop for Wal {
    fn drop(&mut self) {
        if matches!(self.policy, FsyncPolicy::EveryN(_))
            && self.unsynced > 0
            && self.poisoned.is_none()
        {
            let _ = self.sync();
        }
    }
}

/// Scan `bytes`, returning the decoded records plus the clean length
/// (the offset the log should be truncated to). A complete-but-invalid
/// frame is a hard error; an incomplete one ends the scan.
pub(crate) fn scan(bytes: &[u8]) -> Result<(Vec<LogRecord>, u64), StoreError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remaining = &bytes[pos..];
        if remaining.len() < HEADER {
            break; // torn header
        }
        let len = u32::from_le_bytes([remaining[0], remaining[1], remaining[2], remaining[3]]);
        let crc = u32::from_le_bytes([remaining[4], remaining[5], remaining[6], remaining[7]]);
        if len == 0 && crc == 0 {
            // Zero-extended tail: the filesystem grew the file but the
            // append never landed. This is only unambiguous because a
            // real frame can never be all-zero: `MarketEvent::encode`
            // always emits at least its tag byte (enforced by the
            // debug_assert in `append`), and crc32 of any non-empty
            // payload is checked against the header.
            break;
        }
        if len > MAX_RECORD {
            return Err(StoreError::CorruptRecord {
                offset: pos as u64,
                reason: format!("implausible record length {len}"),
            });
        }
        let len = len as usize;
        if remaining.len() < HEADER + len {
            break; // torn payload
        }
        let payload = &remaining[HEADER..HEADER + len];
        if crc32(payload) != crc {
            return Err(StoreError::CorruptRecord {
                offset: pos as u64,
                reason: "CRC mismatch".to_string(),
            });
        }
        let event = MarketEvent::decode(payload, pos as u64)?;
        records.push(LogRecord {
            start: pos as u64,
            end: (pos + HEADER + len) as u64,
            event,
        });
        pos += HEADER + len;
    }
    let clean_len = records.last().map_or(0, |r| r.end);
    Ok((records, clean_len))
}

impl Wal {
    /// Open (or create) the log at `path` on the real filesystem with
    /// the default retry policy. See [`Wal::open_with`].
    pub fn open(path: impl AsRef<Path>, policy: FsyncPolicy) -> Result<Wal, StoreError> {
        Self::open_with(Arc::new(RealFs), path, policy, RetryPolicy::default())
    }

    /// Open (or create) the log at `path` on `vfs`, truncating a torn
    /// tail. Returns the handle positioned at the end of the last clean
    /// record. Transient faults during the open are retried per
    /// `retry`.
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        policy: FsyncPolicy,
        retry: RetryPolicy,
    ) -> Result<Wal, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = retry.run("wal-open", &path, || vfs.open_rw(&path))?;
        let bytes = retry.run("wal-scan", &path, || vfs.read_file(&path))?;
        let (_, clean_len) = scan(&bytes)?;
        if clean_len < bytes.len() as u64 {
            retry.run("wal-repair", &path, || file.set_len(clean_len))?;
            retry.run("wal-repair-sync", &path, || file.sync_all())?;
        }
        // Appends must start exactly at the clean end or they'd punch a
        // hole.
        retry.run("wal-seek", &path, || file.seek_to(clean_len))?;
        Ok(Wal {
            vfs,
            file,
            path,
            position: clean_len,
            policy,
            retry,
            unsynced: 0,
            poisoned: None,
        })
    }

    /// The offset one past the last record — what the next append
    /// returns, and what a snapshot records as the state it covers.
    pub fn position(&self) -> u64 {
        self.position
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    fn poison_error(&self, reason: &str) -> StoreError {
        StoreError::Poisoned {
            path: self.path.display().to_string(),
            offset: self.position,
            reason: reason.to_string(),
        }
    }

    fn poisoned_error(&self) -> Option<StoreError> {
        self.poisoned.as_deref().map(|r| self.poison_error(r))
    }

    /// Append one event; returns the log position *after* it. The write
    /// is flushed to the OS unconditionally and fsynced per the policy,
    /// so once `append` returns the event survives a process crash, and
    /// survives power loss per [`FsyncPolicy`].
    ///
    /// Failure handling follows the module-level failure domains: a
    /// transient write fault discards the partial bytes and retries the
    /// whole frame (bounded, jittered backoff); a fatal write fault
    /// (e.g. `ENOSPC`) truncates back to the last record boundary so
    /// the partial frame cannot be buried by a later successful append;
    /// and if even that truncation fails — or the policy-mandated fsync
    /// does — the handle is poisoned and refuses further appends with
    /// [`StoreError::Poisoned`], naming the offset and path.
    pub fn append(&mut self, event: &MarketEvent) -> Result<u64, StoreError> {
        let sw = qbdp_obs::Stopwatch::start();
        if let Some(e) = self.poisoned_error() {
            return Err(e);
        }
        let payload = event.encode();
        // scan() relies on an all-zero header meaning "filesystem
        // zero-fill, not a record": an empty payload (len 0, crc32 0)
        // would be indistinguishable from that and silently dropped.
        debug_assert!(
            !payload.is_empty(),
            "MarketEvent::encode must never produce an empty payload"
        );
        let mut frame = Vec::with_capacity(HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let attempts = self.retry.attempts.max(1);
        let mut attempt = 0u32;
        // audit: bounded(attempt counter reaches the fixed retry cap)
        loop {
            attempt += 1;
            match self.file.write_all(&frame) {
                Ok(()) => break,
                Err(e) => {
                    // Whether or not we retry, the partial bytes must go
                    // first — a retried frame must start at the boundary.
                    self.discard_partial_append()?;
                    if is_transient_kind(e.kind()) {
                        if attempt < attempts {
                            qbdp_obs::record(qbdp_obs::Ctr::StoreWalRetries, 1);
                            std::thread::sleep(self.retry.delay_for(attempt));
                            continue;
                        }
                        return Err(StoreError::Transient {
                            op: "wal-append",
                            path: self.path.display().to_string(),
                            source: e,
                        });
                    }
                    return Err(e.into());
                }
            }
        }
        self.position += frame.len() as u64;
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        qbdp_obs::record(qbdp_obs::Ctr::StoreWalAppends, 1);
        sw.stop(qbdp_obs::Hst::WalAppendUs);
        Ok(self.position)
    }

    /// Drop whatever a failed `write_all` left past the last record
    /// boundary (the OS cursor has advanced over partial frame bytes)
    /// and restore the cursor, retrying the truncate itself a bounded
    /// number of times (an `ENOSPC` write often coincides with flaky
    /// metadata operations). If the file cannot be repaired, poison
    /// the handle: appending after the garbage would turn a recoverable
    /// torn tail into a complete-but-invalid frame mid-log, which
    /// [`Wal::open`] rightly refuses as corruption. The resulting
    /// [`StoreError::Poisoned`] names the byte offset and file path so
    /// a chaos-run failure can be triaged from the message alone.
    fn discard_partial_append(&mut self) -> Result<(), StoreError> {
        let attempts = self.retry.attempts.max(1);
        let mut attempt = 0u32;
        // audit: bounded(attempt counter reaches the fixed retry cap)
        let repaired = loop {
            attempt += 1;
            let ok = self.file.set_len(self.position).is_ok()
                && self.file.seek_to(self.position).is_ok();
            if ok {
                break true;
            }
            if attempt >= attempts {
                break false;
            }
            std::thread::sleep(self.retry.delay_for(attempt));
        };
        if repaired {
            Ok(())
        } else {
            let reason = "unrepaired partial append (truncate to record boundary failed)";
            self.poisoned = Some(reason.to_string());
            Err(self.poison_error(reason))
        }
    }

    /// Force everything appended so far to stable storage.
    ///
    /// A failed fsync **poisons the handle** (fsyncgate semantics): the
    /// kernel may have dropped the dirty pages, so the most recent
    /// append can no longer be assumed durable, and a later successful
    /// fsync would not bring it back. Refusing further appends keeps
    /// the at-most-one uncertain event at the very end of the log,
    /// which recovery handles as an ordinary (possibly torn) tail.
    /// Transient fsync faults (`EINTR`) are retried before poisoning.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        let sw = qbdp_obs::Stopwatch::start();
        if let Some(e) = self.poisoned_error() {
            return Err(e);
        }
        self.file.flush()?;
        let attempts = self.retry.attempts.max(1);
        let mut attempt = 0u32;
        // audit: bounded(attempt counter reaches the fixed retry cap)
        loop {
            attempt += 1;
            match self.file.sync_data() {
                Ok(()) => {
                    self.unsynced = 0;
                    sw.stop(qbdp_obs::Hst::WalFsyncUs);
                    return Ok(());
                }
                Err(e) if is_transient_kind(e.kind()) && attempt < attempts => {
                    qbdp_obs::record(qbdp_obs::Ctr::StoreWalRetries, 1);
                    std::thread::sleep(self.retry.delay_for(attempt));
                }
                Err(e) => {
                    let reason = format!("fsync failed: {e}");
                    self.poisoned = Some(reason.clone());
                    return Err(self.poison_error(&reason));
                }
            }
        }
    }

    /// Decode every record from byte offset `from` (which must be a
    /// record boundary recorded earlier, e.g. by a snapshot) to the end.
    /// An offset at or past the end yields no records — after a
    /// compaction crash the snapshot may legitimately cover more log
    /// than survived truncation.
    pub fn replay_from(&self, from: u64) -> Result<Vec<LogRecord>, StoreError> {
        let mut bytes = self
            .retry
            .run("wal-replay", &self.path, || self.vfs.read_file(&self.path))?;
        bytes.truncate(self.position as usize);
        if from >= bytes.len() as u64 {
            return Ok(Vec::new());
        }
        let (records, _) = scan(&bytes[from as usize..])?;
        Ok(records
            .into_iter()
            .map(|r| LogRecord {
                start: r.start + from,
                end: r.end + from,
                event: r.event,
            })
            .collect())
    }

    /// All records, oldest first.
    pub fn replay(&self) -> Result<Vec<LogRecord>, StoreError> {
        self.replay_from(0)
    }

    /// Drop every record (compaction: the snapshot now covers them) and
    /// fsync the truncation. On success the handle is clean again: an
    /// empty file has no partial frame left to bury, and the truncation
    /// was durably confirmed. A handle poisoned by a *failed fsync*
    /// stays poisoned unless this reset's own fsync succeeds — which,
    /// under fsyncgate semantics, a real kernel will not grant on the
    /// same file description.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        // Before the truncation lands the file is untouched, so a
        // failure here is an ordinary (non-poisoning) error.
        self.retry
            .run("wal-reset", &self.path, || self.file.set_len(0))?;
        // From here the file IS truncated: if the cursor reposition or
        // the fsync cannot be completed, the handle's bookkeeping no
        // longer matches the file, and limping on would append frames
        // at an offset `position` does not describe — poison instead.
        type FileStep = fn(&mut Box<dyn VfsFile>) -> std::io::Result<()>;
        let attempts = self.retry.attempts.max(1);
        let finish = |file: &mut Box<dyn VfsFile>,
                      retry: &RetryPolicy,
                      op: FileStep|
         -> Result<(), String> {
            let mut attempt = 0u32;
            // audit: bounded(attempt counter reaches the fixed retry cap)
            loop {
                attempt += 1;
                match op(file) {
                    Ok(()) => return Ok(()),
                    Err(e) if is_transient_kind(e.kind()) && attempt < attempts => {
                        std::thread::sleep(retry.delay_for(attempt));
                    }
                    Err(e) => return Err(e.to_string()),
                }
            }
        };
        let steps: [(FileStep, &str); 2] = [
            (
                |f| f.seek_to(0).map(|_| ()),
                "cursor reposition after log truncation",
            ),
            (|f| f.sync_all(), "fsync of log truncation"),
        ];
        for (op, what) in steps {
            if let Err(e) = finish(&mut self.file, &self.retry, op) {
                let reason = format!("{what} failed: {e}");
                self.poisoned = Some(reason.clone());
                return Err(self.poison_error(&reason));
            }
        }
        self.position = 0;
        self.unsynced = 0;
        self.poisoned = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultFs, FaultKind, FaultOp, FaultPlan, ScriptedFault};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "qbdp_wal_{tag}_{}_{}.wal",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_delay_micros: 1,
            max_delay_micros: 2,
            jitter_seed: 9,
        }
    }

    fn sample_events() -> Vec<MarketEvent> {
        vec![
            MarketEvent::InsertTuple {
                relation: "T".into(),
                values: vec!["b2".into()],
            },
            MarketEvent::SetPrice {
                view: "S.Y=b1".into(),
                cents: 25,
            },
            MarketEvent::Purchase {
                query: "Q(x) :- R(x)".into(),
                price_cents: 400,
                answer_tuples: 2,
                views: 4,
            },
        ]
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = temp_path("roundtrip");
        let events = sample_events();
        let mut wal = Wal::open(&path, FsyncPolicy::EveryN(2)).unwrap();
        assert_eq!(wal.position(), 0);
        let mut ends = Vec::new();
        for ev in &events {
            ends.push(wal.append(ev).unwrap());
        }
        assert_eq!(wal.position(), *ends.last().unwrap());
        let records = wal.replay().unwrap();
        assert_eq!(records.len(), events.len());
        for ((rec, ev), end) in records.iter().zip(&events).zip(&ends) {
            assert_eq!(&rec.event, ev);
            assert_eq!(rec.end, *end);
        }
        // Suffix replay from the second record's start.
        let suffix = wal.replay_from(records[1].start).unwrap();
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].event, events[1]);
        // Reopening lands at the same position.
        drop(wal);
        let wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(wal.position(), *ends.last().unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = temp_path("torn");
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        for ev in sample_events() {
            wal.append(&ev).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let second_end = wal.replay().unwrap()[1].end;
        drop(wal);
        // Cut into the middle of the third record.
        std::fs::write(&path, &full[..second_end as usize + 3]).unwrap();
        let wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(wal.position(), second_end);
        assert_eq!(wal.replay().unwrap().len(), 2);
        // The file itself was repaired.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), second_end);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_extended_tail_is_truncated() {
        let path = temp_path("zeros");
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        for ev in sample_events() {
            wal.append(&ev).unwrap();
        }
        let end = wal.position();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &bytes).unwrap();
        let wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(wal.position(), end);
        assert_eq!(wal.replay().unwrap().len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_log_corruption_is_refused() {
        let path = temp_path("corrupt");
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        for ev in sample_events() {
            wal.append(&ev).unwrap();
        }
        let first_end = wal.replay().unwrap()[0].end;
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit in the second record's payload.
        bytes[first_end as usize + HEADER + 1] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::open(&path, FsyncPolicy::Always);
        assert!(
            matches!(err, Err(StoreError::CorruptRecord { offset, .. }) if offset == first_end),
            "{err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = temp_path("reset");
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        for ev in sample_events() {
            wal.append(&ev).unwrap();
        }
        wal.reset().unwrap();
        assert_eq!(wal.position(), 0);
        assert!(wal.replay().unwrap().is_empty());
        // Appends keep working after a reset.
        wal.append(&sample_events()[0]).unwrap();
        assert_eq!(wal.replay().unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partial_append_residue_is_discarded() {
        let path = temp_path("partial");
        let events = sample_events();
        let mut wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        wal.append(&events[0]).unwrap();
        // Simulate the aftermath of a failed write_all: partial frame
        // bytes on disk with the cursor advanced past them.
        wal.file.write_all(&[0x11, 0x22, 0x33]).unwrap();
        wal.discard_partial_append().unwrap();
        assert!(wal.poisoned.is_none());
        // The next append must land at the record boundary, leaving a
        // log that reopens cleanly — not a CorruptRecord mid-log.
        wal.append(&events[1]).unwrap();
        drop(wal);
        let wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        let replayed = wal.replay().unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].event, events[0]);
        assert_eq!(replayed[1].event, events[1]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn poisoned_handle_refuses_appends_until_reset() {
        let path = temp_path("poison");
        let mut wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        wal.append(&sample_events()[0]).unwrap();
        wal.poisoned = Some("test poison".into());
        let err = wal.append(&sample_events()[1]);
        match &err {
            Err(StoreError::Poisoned {
                path: p, offset, ..
            }) => {
                assert!(p.contains("qbdp_wal_poison"), "{p}");
                assert_eq!(*offset, wal.position());
            }
            other => panic!("expected Poisoned, got {other:?}"),
        }
        // The message alone carries enough for triage.
        let msg = err.unwrap_err().to_string();
        assert!(msg.contains("byte") && msg.contains(".wal"), "{msg}");
        // reset() truncates everything, so there is no garbage left to
        // bury and the handle is usable again.
        wal.reset().unwrap();
        wal.append(&sample_events()[1]).unwrap();
        assert_eq!(wal.replay().unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_from_beyond_end_is_empty() {
        let path = temp_path("beyond");
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        wal.append(&sample_events()[0]).unwrap();
        assert!(wal.replay_from(wal.position()).unwrap().is_empty());
        assert!(wal.replay_from(wal.position() + 999).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_write_faults_are_retried_away() {
        let path = temp_path("transient");
        let fs = FaultFs::new(FaultPlan {
            script: vec![
                ScriptedFault {
                    op: FaultOp::Write,
                    path_contains: "transient".into(),
                    skip: 0,
                    kind: FaultKind::Eintr,
                },
                ScriptedFault {
                    op: FaultOp::Write,
                    path_contains: "transient".into(),
                    skip: 0,
                    kind: FaultKind::Eagain,
                },
            ],
            seeded: None,
        });
        let mut wal = Wal::open_with(
            Arc::new(fs.clone()),
            &path,
            FsyncPolicy::Always,
            fast_retry(),
        )
        .unwrap();
        // Both scripted transients hit this one append; it still lands.
        wal.append(&sample_events()[0]).unwrap();
        assert_eq!(wal.replay().unwrap().len(), 1);
        assert_eq!(fs.injected_count(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn enospc_partial_write_is_repaired_and_typed() {
        let path = temp_path("enospc");
        let fs = FaultFs::new(FaultPlan {
            script: vec![ScriptedFault {
                op: FaultOp::Write,
                path_contains: "enospc".into(),
                skip: 1,
                kind: FaultKind::Enospc { keep: 5 },
            }],
            seeded: None,
        });
        let mut wal = Wal::open_with(
            Arc::new(fs.clone()),
            &path,
            FsyncPolicy::Never,
            fast_retry(),
        )
        .unwrap();
        let end1 = wal.append(&sample_events()[0]).unwrap();
        let err = wal.append(&sample_events()[1]).unwrap_err();
        assert!(
            matches!(&err, StoreError::Io(e) if e.kind() == std::io::ErrorKind::StorageFull),
            "{err:?}"
        );
        assert!(err.degrades_to_read_only());
        // Repair succeeded: position unchanged, partial bytes gone, and
        // the handle is NOT poisoned (the log itself is intact).
        assert_eq!(wal.position(), end1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), end1);
        wal.append(&sample_events()[2]).unwrap();
        assert_eq!(wal.replay().unwrap().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_fsync_poisons_with_offset_and_path() {
        let path = temp_path("fsyncgate");
        let fs = FaultFs::new(FaultPlan {
            script: vec![ScriptedFault {
                op: FaultOp::Fsync,
                path_contains: "fsyncgate".into(),
                skip: 1,
                kind: FaultKind::FsyncFail,
            }],
            seeded: None,
        });
        let mut wal = Wal::open_with(
            Arc::new(fs.clone()),
            &path,
            FsyncPolicy::Always,
            fast_retry(),
        )
        .unwrap();
        let end1 = wal.append(&sample_events()[0]).unwrap();
        let err = wal.append(&sample_events()[1]).unwrap_err();
        match &err {
            StoreError::Poisoned {
                path: p,
                offset,
                reason,
            } => {
                assert!(p.contains("fsyncgate"), "{p}");
                assert_eq!(*offset, end1 + (wal.position() - end1));
                assert!(reason.contains("fsync"), "{reason}");
            }
            other => panic!("expected Poisoned, got {other:?}"),
        }
        assert!(err.degrades_to_read_only());
        // fsyncgate: every further append is refused.
        assert!(matches!(
            wal.append(&sample_events()[2]),
            Err(StoreError::Poisoned { .. })
        ));
        // Recovery after reopen yields at most the acked prefix plus
        // the one uncertain tail event.
        drop(wal);
        let wal = Wal::open_with(Arc::new(fs), &path, FsyncPolicy::Never, fast_retry()).unwrap();
        let n = wal.replay().unwrap().len();
        assert!(n == 1 || n == 2, "prefix of attempted history, got {n}");
        std::fs::remove_file(&path).ok();
    }
}
