//! The append-only, checksummed write-ahead log.
//!
//! # Record framing
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────────┐
//! │ len: u32LE │ crc: u32LE │ payload (len bytes)  │
//! └────────────┴────────────┴──────────────────────┘
//! ```
//!
//! `crc` is CRC-32/IEEE over the payload. Records abut with no padding;
//! a record's *position* is the byte offset of its `len` field, and the
//! log's position is the offset one past the last record — the value a
//! snapshot stores as the point its state covers.
//!
//! # Crash semantics
//!
//! A crash can only leave the file with a **torn tail**: some prefix of
//! the final record missing (the kernel persists appends in order within
//! one file). [`Wal::open`] therefore scans the whole log and
//!
//! * truncates a trailing *incomplete* frame (header short, or payload
//!   shorter than `len`) — that is the expected residue of a crash, and
//!   every byte before it is a clean record;
//! * truncates a trailing all-zero header (a filesystem that extended
//!   the file but never wrote the append leaves zeros);
//! * refuses with [`StoreError::CorruptRecord`] if a frame is present
//!   *in full* but its CRC or its payload decoding fails — truncation
//!   cannot manufacture that, so the file was damaged after the fact
//!   and silently dropping the record (and everything after it) would
//!   resurrect a state the market never durably confirmed.
//!
//! # Fsync policy
//!
//! [`FsyncPolicy`] trades durability for append latency: `Always` fsyncs
//! every append (group-commit left to the caller), `EveryN(n)` fsyncs
//! every `n` appends, `Never` leaves flushing to the OS. Whatever the
//! policy, the *framing* guarantees recovery is prefix-consistent — the
//! policy only bounds how many tail events a power loss may drop.

use crate::crc::crc32;
use crate::error::StoreError;
use crate::event::MarketEvent;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// How often the log fsyncs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: an acknowledged mutation survives
    /// power loss.
    Always,
    /// `fsync` every `n` appends: at most `n-1` acknowledged mutations
    /// can be lost (`EveryN(0)` and `EveryN(1)` behave like `Always`).
    EveryN(u64),
    /// Never `fsync` explicitly; the OS flushes when it pleases. A
    /// process crash (not power loss) still loses nothing.
    Never,
}

/// One decoded log record with its byte extent.
#[derive(Clone, Debug)]
pub struct LogRecord {
    /// Offset of the record's frame header.
    pub start: u64,
    /// Offset one past the record (= position of the next record).
    pub end: u64,
    /// The decoded event.
    pub event: MarketEvent,
}

/// Records larger than this are rejected as corrupt rather than
/// allocated: no market event comes within orders of magnitude of it.
const MAX_RECORD: u32 = 1 << 24;

const HEADER: usize = 8;

/// The append handle over one log file. Opening scans and repairs the
/// torn tail; see the module docs for the exact semantics.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    position: u64,
    policy: FsyncPolicy,
    unsynced: u64,
    /// Set when a failed append left partial frame bytes that could not
    /// be truncated away; all further appends are refused.
    poisoned: bool,
}

/// Scan `bytes`, returning the decoded records plus the clean length
/// (the offset the log should be truncated to). A complete-but-invalid
/// frame is a hard error; an incomplete one ends the scan.
fn scan(bytes: &[u8]) -> Result<(Vec<LogRecord>, u64), StoreError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remaining = &bytes[pos..];
        if remaining.len() < HEADER {
            break; // torn header
        }
        let len = u32::from_le_bytes([remaining[0], remaining[1], remaining[2], remaining[3]]);
        let crc = u32::from_le_bytes([remaining[4], remaining[5], remaining[6], remaining[7]]);
        if len == 0 && crc == 0 {
            // Zero-extended tail: the filesystem grew the file but the
            // append never landed. This is only unambiguous because a
            // real frame can never be all-zero: `MarketEvent::encode`
            // always emits at least its tag byte (enforced by the
            // debug_assert in `append`), and crc32 of any non-empty
            // payload is checked against the header.
            break;
        }
        if len > MAX_RECORD {
            return Err(StoreError::CorruptRecord {
                offset: pos as u64,
                reason: format!("implausible record length {len}"),
            });
        }
        let len = len as usize;
        if remaining.len() < HEADER + len {
            break; // torn payload
        }
        let payload = &remaining[HEADER..HEADER + len];
        if crc32(payload) != crc {
            return Err(StoreError::CorruptRecord {
                offset: pos as u64,
                reason: "CRC mismatch".to_string(),
            });
        }
        let event = MarketEvent::decode(payload, pos as u64)?;
        records.push(LogRecord {
            start: pos as u64,
            end: (pos + HEADER + len) as u64,
            event,
        });
        pos += HEADER + len;
    }
    let clean_len = records.last().map_or(0, |r| r.end);
    Ok((records, clean_len))
}

impl Wal {
    /// Open (or create) the log at `path`, truncating a torn tail.
    /// Returns the handle positioned at the end of the last clean record.
    pub fn open(path: impl AsRef<Path>, policy: FsyncPolicy) -> Result<Wal, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (_, clean_len) = scan(&bytes)?;
        if clean_len < bytes.len() as u64 {
            file.set_len(clean_len)?;
            file.sync_all()?;
        }
        // `read_to_end`/`set_len` leave the cursor elsewhere; appends
        // must start exactly at the clean end or they'd punch a hole.
        file.seek(SeekFrom::Start(clean_len))?;
        Ok(Wal {
            file,
            path,
            position: clean_len,
            policy,
            unsynced: 0,
            poisoned: false,
        })
    }

    /// The offset one past the last record — what the next append
    /// returns, and what a snapshot records as the state it covers.
    pub fn position(&self) -> u64 {
        self.position
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Append one event; returns the log position *after* it. The write
    /// is flushed to the OS unconditionally and fsynced per the policy,
    /// so once `append` returns the event survives a process crash, and
    /// survives power loss per [`FsyncPolicy`].
    ///
    /// A failed write (e.g. `ENOSPC`) truncates back to the last record
    /// boundary so the partial frame cannot be buried by a later
    /// successful append; if even that truncation fails the handle is
    /// poisoned and refuses further appends with
    /// [`StoreError::Poisoned`].
    pub fn append(&mut self, event: &MarketEvent) -> Result<u64, StoreError> {
        if self.poisoned {
            return Err(StoreError::Poisoned);
        }
        let payload = event.encode();
        // scan() relies on an all-zero header meaning "filesystem
        // zero-fill, not a record": an empty payload (len 0, crc32 0)
        // would be indistinguishable from that and silently dropped.
        debug_assert!(
            !payload.is_empty(),
            "MarketEvent::encode must never produce an empty payload"
        );
        let mut frame = Vec::with_capacity(HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if let Err(e) = self.file.write_all(&frame) {
            self.discard_partial_append();
            return Err(e.into());
        }
        self.position += frame.len() as u64;
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(self.position)
    }

    /// Drop whatever a failed `write_all` left past the last record
    /// boundary (the OS cursor has advanced over partial frame bytes)
    /// and restore the cursor. If the file cannot be repaired, poison
    /// the handle: appending after the garbage would turn a recoverable
    /// torn tail into a complete-but-invalid frame mid-log, which
    /// [`Wal::open`] rightly refuses as corruption.
    fn discard_partial_append(&mut self) {
        let repaired = self.file.set_len(self.position).is_ok()
            && self.file.seek(SeekFrom::Start(self.position)).is_ok();
        self.poisoned = !repaired;
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.flush()?;
        self.file.sync_data()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Decode every record from byte offset `from` (which must be a
    /// record boundary recorded earlier, e.g. by a snapshot) to the end.
    /// An offset at or past the end yields no records — after a
    /// compaction crash the snapshot may legitimately cover more log
    /// than survived truncation.
    pub fn replay_from(&self, from: u64) -> Result<Vec<LogRecord>, StoreError> {
        let mut bytes = Vec::new();
        File::open(&self.path)?
            .take(self.position)
            .read_to_end(&mut bytes)?;
        if from >= bytes.len() as u64 {
            return Ok(Vec::new());
        }
        let (records, _) = scan(&bytes[from as usize..])?;
        Ok(records
            .into_iter()
            .map(|r| LogRecord {
                start: r.start + from,
                end: r.end + from,
                event: r.event,
            })
            .collect())
    }

    /// All records, oldest first.
    pub fn replay(&self) -> Result<Vec<LogRecord>, StoreError> {
        self.replay_from(0)
    }

    /// Drop every record (compaction: the snapshot now covers them) and
    /// fsync the truncation.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()?;
        self.position = 0;
        self.unsynced = 0;
        // An empty file has no partial frame left to bury.
        self.poisoned = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "qbdp_wal_{tag}_{}_{}.wal",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_events() -> Vec<MarketEvent> {
        vec![
            MarketEvent::InsertTuple {
                relation: "T".into(),
                values: vec!["b2".into()],
            },
            MarketEvent::SetPrice {
                view: "S.Y=b1".into(),
                cents: 25,
            },
            MarketEvent::Purchase {
                query: "Q(x) :- R(x)".into(),
                price_cents: 400,
                answer_tuples: 2,
                views: 4,
            },
        ]
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = temp_path("roundtrip");
        let events = sample_events();
        let mut wal = Wal::open(&path, FsyncPolicy::EveryN(2)).unwrap();
        assert_eq!(wal.position(), 0);
        let mut ends = Vec::new();
        for ev in &events {
            ends.push(wal.append(ev).unwrap());
        }
        assert_eq!(wal.position(), *ends.last().unwrap());
        let records = wal.replay().unwrap();
        assert_eq!(records.len(), events.len());
        for ((rec, ev), end) in records.iter().zip(&events).zip(&ends) {
            assert_eq!(&rec.event, ev);
            assert_eq!(rec.end, *end);
        }
        // Suffix replay from the second record's start.
        let suffix = wal.replay_from(records[1].start).unwrap();
        assert_eq!(suffix.len(), 2);
        assert_eq!(suffix[0].event, events[1]);
        // Reopening lands at the same position.
        drop(wal);
        let wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(wal.position(), *ends.last().unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = temp_path("torn");
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        for ev in sample_events() {
            wal.append(&ev).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let second_end = wal.replay().unwrap()[1].end;
        drop(wal);
        // Cut into the middle of the third record.
        std::fs::write(&path, &full[..second_end as usize + 3]).unwrap();
        let wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(wal.position(), second_end);
        assert_eq!(wal.replay().unwrap().len(), 2);
        // The file itself was repaired.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), second_end);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_extended_tail_is_truncated() {
        let path = temp_path("zeros");
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        for ev in sample_events() {
            wal.append(&ev).unwrap();
        }
        let end = wal.position();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &bytes).unwrap();
        let wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(wal.position(), end);
        assert_eq!(wal.replay().unwrap().len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_log_corruption_is_refused() {
        let path = temp_path("corrupt");
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        for ev in sample_events() {
            wal.append(&ev).unwrap();
        }
        let first_end = wal.replay().unwrap()[0].end;
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit in the second record's payload.
        bytes[first_end as usize + HEADER + 1] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::open(&path, FsyncPolicy::Always);
        assert!(
            matches!(err, Err(StoreError::CorruptRecord { offset, .. }) if offset == first_end),
            "{err:?}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = temp_path("reset");
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        for ev in sample_events() {
            wal.append(&ev).unwrap();
        }
        wal.reset().unwrap();
        assert_eq!(wal.position(), 0);
        assert!(wal.replay().unwrap().is_empty());
        // Appends keep working after a reset.
        wal.append(&sample_events()[0]).unwrap();
        assert_eq!(wal.replay().unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partial_append_residue_is_discarded() {
        let path = temp_path("partial");
        let events = sample_events();
        let mut wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        wal.append(&events[0]).unwrap();
        // Simulate the aftermath of a failed write_all: partial frame
        // bytes on disk with the cursor advanced past them.
        wal.file.write_all(&[0x11, 0x22, 0x33]).unwrap();
        wal.discard_partial_append();
        assert!(!wal.poisoned);
        // The next append must land at the record boundary, leaving a
        // log that reopens cleanly — not a CorruptRecord mid-log.
        wal.append(&events[1]).unwrap();
        drop(wal);
        let wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        let replayed = wal.replay().unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].event, events[0]);
        assert_eq!(replayed[1].event, events[1]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn poisoned_handle_refuses_appends_until_reset() {
        let path = temp_path("poison");
        let mut wal = Wal::open(&path, FsyncPolicy::Never).unwrap();
        wal.append(&sample_events()[0]).unwrap();
        wal.poisoned = true;
        assert!(matches!(
            wal.append(&sample_events()[1]),
            Err(StoreError::Poisoned)
        ));
        // reset() truncates everything, so there is no garbage left to
        // bury and the handle is usable again.
        wal.reset().unwrap();
        wal.append(&sample_events()[1]).unwrap();
        assert_eq!(wal.replay().unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_from_beyond_end_is_empty() {
        let path = temp_path("beyond");
        let mut wal = Wal::open(&path, FsyncPolicy::Always).unwrap();
        wal.append(&sample_events()[0]).unwrap();
        assert!(wal.replay_from(wal.position()).unwrap().is_empty());
        assert!(wal.replay_from(wal.position() + 999).unwrap().is_empty());
        std::fs::remove_file(&path).ok();
    }
}
