//! The virtual filesystem the durability layer runs on.
//!
//! Production code uses [`RealFs`] (thin delegation to `std::fs`); the
//! chaos harness swaps in [`FaultFs`], a deterministic fault injector
//! that wraps the real filesystem and misbehaves on command:
//!
//! * **transient faults** — `EINTR`/`EAGAIN`-style errors that succeed
//!   on retry (exercising [`RetryPolicy`]);
//! * **`ENOSPC` at byte N** — a write lands a strict prefix, then fails
//!   with `StorageFull` (exercising the WAL's partial-append repair);
//! * **fsync failures with fsyncgate semantics** — a failed fsync
//!   *permanently poisons* the file: the kernel may have dropped the
//!   dirty pages, so a later "successful" fsync must not resurrect the
//!   illusion of durability. `FaultFs` keeps failing fsyncs on that
//!   path until the file is re-created;
//! * **torn writes** — a prefix lands, then simulated power loss: every
//!   subsequent operation fails until [`FaultFs::simulate_crash`];
//! * **post-crash bit-rot** — [`FaultFs::corrupt_byte`] flips bits in
//!   the on-disk image, exercising CRC detection and `scrub()`.
//!
//! # The durability shadow
//!
//! `FaultFs` tracks, per file, the **durable image**: the content a
//! power loss is guaranteed to preserve. The image advances only on a
//! *successful* fsync (first-seen disk content counts as durable — it
//! predates the injector). Renames are pending until the containing
//! directory is fsynced, and [`FaultFs::simulate_crash`] restores every
//! file to a state a real power loss could have left: the durable
//! image, the current content, or the durable image plus a prefix of
//! the unsynced suffix (a torn tail) — chosen by a seeded RNG.

use crate::error::StoreError;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// An open, writable file handle. Reads go through [`Vfs::read_file`]
/// (the log replays from the path, not the handle), so the trait only
/// carries the append-side surface `Wal` and `Snapshot` need.
pub trait VfsFile: Send {
    /// Write the whole buffer at the current cursor.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flush userspace buffers to the OS (no durability implied).
    fn flush(&mut self) -> io::Result<()>;
    /// Fsync file data to stable storage.
    fn sync_data(&mut self) -> io::Result<()>;
    /// Fsync file data and metadata to stable storage.
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncate (or extend with zeros) to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Move the cursor to an absolute offset.
    fn seek_to(&mut self, pos: u64) -> io::Result<u64>;
}

/// The filesystem operations the durability layer performs. Method
/// names are deliberately distinct from `std` trait methods so call
/// sites stay greppable and unambiguous in audits.
pub trait Vfs: Send + Sync {
    /// Open `path` read-write, creating it if absent (no truncation).
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Create `path`, truncating any existing content.
    fn create_file(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Read the whole file.
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` onto `to` (same directory).
    fn rename_file(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Create a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Fsync a directory, persisting renames within it. Best-effort on
    /// platforms where directories cannot be opened.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Whether a path exists.
    fn exists(&self, path: &Path) -> bool;
}

/// Whether an I/O error kind is transiently retryable (`EINTR`,
/// `EAGAIN`, timeouts) as opposed to a real failure.
pub fn is_transient_kind(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

// ---------------------------------------------------------------------
// RealFs
// ---------------------------------------------------------------------

/// The production filesystem: straight delegation to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealFs;

struct RealFile(File);

impl VfsFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn seek_to(&mut self, pos: u64) -> io::Result<u64> {
        self.0.seek(SeekFrom::Start(pos))
    }
}

impl Vfs for RealFs {
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn create_file(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(File::create(path)?)))
    }
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn rename_file(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // On platforms where directories cannot be opened this is
        // best-effort, matching the pre-vfs snapshot recipe.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ---------------------------------------------------------------------
// Deterministic RNG + retry policy
// ---------------------------------------------------------------------

/// SplitMix64: a tiny, deterministic, seedable RNG. Used for retry
/// jitter and by the fault injector / chaos driver, so no external
/// randomness dependency is needed and every schedule replays exactly.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeded generator; equal seeds give equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` 0 yields 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Bounded retry with jittered exponential backoff for transient I/O
/// faults. Deterministic: the jitter stream is a pure function of
/// `jitter_seed` and the attempt number.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (including the first); clamped to at least 1.
    pub attempts: u32,
    /// Backoff before the second attempt, microseconds.
    pub base_delay_micros: u64,
    /// Backoff ceiling, microseconds.
    pub max_delay_micros: u64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_delay_micros: 20,
            max_delay_micros: 2_000,
            jitter_seed: 0x9bd5,
        }
    }
}

impl RetryPolicy {
    /// No retries: fail on the first error.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The backoff to sleep after failed attempt number `attempt`
    /// (1-based): exponential from the base, capped, plus up to 100%
    /// deterministic jitter.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay_micros
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_delay_micros.max(self.base_delay_micros));
        let jitter = SplitMix64::new(self.jitter_seed ^ u64::from(attempt)).next_below(exp.max(1));
        Duration::from_micros(exp + jitter)
    }

    /// Run `f`, retrying transient errors with backoff. Non-transient
    /// errors surface immediately as [`StoreError::Io`]; a transient
    /// error on the final attempt surfaces as [`StoreError::Transient`]
    /// carrying `op` and `path` for triage.
    pub fn run<T>(
        &self,
        op: &'static str,
        path: &Path,
        mut f: impl FnMut() -> io::Result<T>,
    ) -> Result<T, StoreError> {
        let attempts = self.attempts.max(1);
        let mut attempt = 0u32;
        // audit: bounded(attempt counter reaches the fixed retry cap)
        loop {
            attempt += 1;
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if !is_transient_kind(e.kind()) => return Err(StoreError::Io(e)),
                Err(e) if attempt >= attempts => {
                    return Err(StoreError::Transient {
                        op,
                        path: path.display().to_string(),
                        source: e,
                    })
                }
                Err(_) => std::thread::sleep(self.delay_for(attempt)),
            }
        }
    }
}

// ---------------------------------------------------------------------
// FaultFs
// ---------------------------------------------------------------------

/// Which filesystem operation a fault targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// `open_rw` / `create_file`.
    Open,
    /// `read_file`.
    Read,
    /// `write_all`.
    Write,
    /// `sync_data` / `sync_all` on a file.
    Fsync,
    /// `set_len`.
    SetLen,
    /// `rename_file`.
    Rename,
    /// `sync_dir`.
    SyncDir,
}

/// What an injected fault does.
#[derive(Clone, Debug)]
pub enum FaultKind {
    /// Fail with `EINTR` before touching anything; a retry succeeds.
    Eintr,
    /// Fail with `EAGAIN` before touching anything; a retry succeeds.
    Eagain,
    /// Land `keep` bytes of the write (strictly less than the buffer),
    /// then fail with `StorageFull`.
    Enospc {
        /// Bytes of the buffer that reach the file before the error.
        keep: usize,
    },
    /// Fail the fsync and poison the file per fsyncgate semantics: the
    /// unsynced pages are considered dropped and every later fsync on
    /// this path fails too, until the file is re-created.
    FsyncFail,
    /// Land `keep` bytes, then simulated power loss: every subsequent
    /// operation on the filesystem fails until
    /// [`FaultFs::simulate_crash`].
    TornWrite {
        /// Bytes of the buffer that reach the file before the cut.
        keep: usize,
    },
}

/// One scripted fault: fires on the `skip`+1-th operation matching
/// `op` whose path contains `path_contains`, then is consumed.
#[derive(Clone, Debug)]
pub struct ScriptedFault {
    /// Operation to intercept.
    pub op: FaultOp,
    /// Substring the path must contain (empty matches everything).
    pub path_contains: String,
    /// Matching operations to let through before firing.
    pub skip: u64,
    /// What to do when firing.
    pub kind: FaultKind,
}

/// Seeded probabilistic faults: each rate is per-mille per matching
/// operation, rolled on a deterministic stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeededFaults {
    /// RNG seed for the roll stream.
    pub seed: u64,
    /// `EINTR`/`EAGAIN` on open/read/write/fsync/set-len, per mille.
    pub transient_per_mille: u32,
    /// `ENOSPC` partial write, per mille of writes.
    pub enospc_per_mille: u32,
    /// Failed (and poisoning) fsync, per mille of fsyncs.
    pub fsync_fail_per_mille: u32,
    /// Torn write + power cut, per mille of writes.
    pub torn_write_per_mille: u32,
}

/// A full injection plan: scripted faults fire first (and are
/// consumed); seeded faults roll on everything else.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// One-shot scripted faults, checked in order.
    pub script: Vec<ScriptedFault>,
    /// Background probabilistic faults.
    pub seeded: Option<SeededFaults>,
}

impl FaultPlan {
    /// No faults at all — `FaultFs` behaves like `RealFs` plus the
    /// durability shadow (the configuration the E16 overhead bench
    /// measures).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }
}

#[derive(Debug)]
struct PendingRename {
    from: PathBuf,
    to: PathBuf,
    prev_from: Option<Vec<u8>>,
    prev_to: Option<Vec<u8>>,
}

#[derive(Debug, Default)]
struct FaultState {
    script: Vec<ScriptedFault>,
    seeded: Option<SeededFaults>,
    rng: Option<SplitMix64>,
    /// Per-path durable image: `Some(bytes)` = content a power loss
    /// preserves; `None` = the file durably does not exist.
    durable: HashMap<PathBuf, Option<Vec<u8>>>,
    /// Renames not yet committed by a directory fsync.
    pending_renames: Vec<PendingRename>,
    /// Paths whose fsync failed (fsyncgate): all later fsyncs fail too.
    fsync_poisoned: Vec<PathBuf>,
    /// Set by a torn write; everything fails until `simulate_crash`.
    powered_off: bool,
    /// Human-readable log of injected faults, for triage.
    injected: Vec<String>,
}

enum Verdict {
    Proceed,
    Fail(io::Error),
    Partial {
        keep: usize,
        error: io::Error,
        power_cut: bool,
    },
}

impl FaultState {
    /// First-touch tracking: content already on disk predates the
    /// injector and counts as durable.
    fn track(&mut self, path: &Path) {
        if !self.durable.contains_key(path) {
            let image = std::fs::read(path).ok();
            self.durable.insert(path.to_path_buf(), image);
        }
    }

    /// Size a partial write: scripted faults pass their `keep` through
    /// (clamped to a strict prefix); seeded faults size it by RNG.
    fn clamp_partial(&mut self, keep: usize, write_len: usize) -> usize {
        if write_len == 0 {
            0
        } else if keep >= write_len {
            let rng = self.rng.get_or_insert_with(|| SplitMix64::new(0));
            rng.next_below(write_len as u64) as usize
        } else {
            keep
        }
    }

    fn fault_for(&mut self, op: FaultOp, path: &Path) -> Option<FaultKind> {
        if let Some(i) = self.script.iter().position(|s| {
            s.op == op
                && (s.path_contains.is_empty()
                    || path.display().to_string().contains(&s.path_contains))
        }) {
            if self.script[i].skip > 0 {
                self.script[i].skip -= 1;
            } else {
                return Some(self.script.remove(i).kind);
            }
        }
        let seeded = self.seeded?;
        let rng = self.rng.get_or_insert_with(|| SplitMix64::new(seeded.seed));
        let roll = |rng: &mut SplitMix64, per_mille: u32| {
            per_mille > 0 && rng.next_below(1000) < u64::from(per_mille)
        };
        match op {
            FaultOp::Write => {
                if roll(rng, seeded.torn_write_per_mille) {
                    Some(FaultKind::TornWrite { keep: usize::MAX })
                } else if roll(rng, seeded.enospc_per_mille) {
                    Some(FaultKind::Enospc { keep: usize::MAX })
                } else if roll(rng, seeded.transient_per_mille) {
                    Some(FaultKind::Eintr)
                } else {
                    None
                }
            }
            FaultOp::Fsync => {
                if roll(rng, seeded.fsync_fail_per_mille) {
                    Some(FaultKind::FsyncFail)
                } else if roll(rng, seeded.transient_per_mille) {
                    Some(FaultKind::Eagain)
                } else {
                    None
                }
            }
            FaultOp::Open
            | FaultOp::Read
            | FaultOp::SetLen
            | FaultOp::Rename
            | FaultOp::SyncDir => {
                if roll(rng, seeded.transient_per_mille) {
                    Some(FaultKind::Eintr)
                } else {
                    None
                }
            }
        }
    }

    /// Decide what happens to one operation. `write_len` sizes partial
    /// faults for writes (0 for non-writes).
    fn decide(&mut self, op: FaultOp, path: &Path, write_len: usize) -> Verdict {
        if self.powered_off {
            return Verdict::Fail(io::Error::other(
                "simulated power loss: filesystem is down until crash recovery",
            ));
        }
        // fsyncgate: once an fsync on this path failed, the dirty pages
        // are gone; keep failing until the file is re-created.
        if op == FaultOp::Fsync && self.fsync_poisoned.iter().any(|p| p == path) {
            return Verdict::Fail(io::Error::other(
                "fsync failed earlier on this file (fsyncgate); clean state unrecoverable",
            ));
        }
        let Some(kind) = self.fault_for(op, path) else {
            return Verdict::Proceed;
        };
        let verdict = match kind {
            FaultKind::Eintr => Verdict::Fail(io::Error::from(io::ErrorKind::Interrupted)),
            FaultKind::Eagain => Verdict::Fail(io::Error::from(io::ErrorKind::WouldBlock)),
            FaultKind::Enospc { keep } => Verdict::Partial {
                keep: self.clamp_partial(keep, write_len),
                error: io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC"),
                power_cut: false,
            },
            FaultKind::FsyncFail => {
                self.fsync_poisoned.push(path.to_path_buf());
                Verdict::Fail(io::Error::other("injected fsync failure"))
            }
            FaultKind::TornWrite { keep } => Verdict::Partial {
                keep: self.clamp_partial(keep, write_len),
                error: io::Error::other("injected torn write (power cut)"),
                power_cut: true,
            },
        };
        let label = match &verdict {
            Verdict::Fail(e) => format!("{op:?} {} -> {e}", path.display()),
            Verdict::Partial { keep, error, .. } => {
                format!("{op:?} {} -> {keep} byte(s) then {error}", path.display())
            }
            Verdict::Proceed => String::new(),
        };
        self.injected.push(label);
        verdict
    }
}

/// The deterministic fault injector. Wraps the real filesystem; see the
/// module docs for the fault model and the durability shadow. Cloning
/// is cheap and shares the fault state — handles, the store, and the
/// chaos driver all see one injector.
#[derive(Clone, Debug)]
pub struct FaultFs {
    state: Arc<Mutex<FaultState>>,
}

impl FaultFs {
    /// A new injector over the real filesystem with `plan` armed.
    pub fn new(plan: FaultPlan) -> FaultFs {
        let fs = FaultFs {
            state: Arc::new(Mutex::new(FaultState::default())),
        };
        fs.locked().script = plan.script;
        fs.locked().seeded = plan.seeded;
        fs
    }

    // A poisoned mutex only means another thread panicked mid-update of
    // bookkeeping that the next reader can still use; recover the guard.
    // audit: holds-lock(vfs-state)
    fn locked(&self) -> MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Replace the armed fault plan (keeps the durability shadow).
    // audit: holds-lock(vfs-state)
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut s = self.locked();
        s.script = plan.script;
        s.seeded = plan.seeded;
        s.rng = None;
    }

    /// Disarm all faults (keeps the durability shadow).
    pub fn clear_plan(&self) {
        self.set_plan(FaultPlan::none());
    }

    /// Human-readable log of every fault injected so far.
    // audit: holds-lock(vfs-state)
    pub fn injected_faults(&self) -> Vec<String> {
        self.locked().injected.clone()
    }

    /// How many faults have been injected so far.
    // audit: holds-lock(vfs-state)
    pub fn injected_count(&self) -> usize {
        self.locked().injected.len()
    }

    /// Whether a torn write has cut the power (everything fails until
    /// [`FaultFs::simulate_crash`]).
    // audit: holds-lock(vfs-state)
    pub fn powered_off(&self) -> bool {
        self.locked().powered_off
    }

    /// Simulate the machine dying and rebooting: every tracked file is
    /// restored to a state a real power loss could have left it in —
    /// the durable image, the current content, or the durable image
    /// plus a seeded-length prefix of the unsynced suffix (a torn
    /// tail). Uncommitted renames are rolled back or committed by the
    /// same seeded coin. Fsync poison and the power-cut flag clear (a
    /// reboot starts clean); the fault plan is left as armed.
    ///
    /// Callers must drop every open handle first: restoring rewrites
    /// the files on disk underneath them.
    // audit: holds-lock(vfs-state)
    pub fn simulate_crash(&self, seed: u64) -> io::Result<()> {
        let mut s = self.locked();
        let mut rng = SplitMix64::new(seed);
        // Roll back (or commit) pending renames, newest first, so the
        // durable map reflects the chosen outcome before files restore.
        while let Some(p) = s.pending_renames.pop() {
            if rng.next_below(2) == 0 {
                // Not committed: both paths revert to their pre-rename
                // durable images.
                s.durable.insert(p.from.clone(), p.prev_from);
                s.durable.insert(p.to.clone(), p.prev_to);
            }
            // Committed: the images moved at rename time already stand.
        }
        let paths: Vec<PathBuf> = s.durable.keys().cloned().collect();
        for path in paths {
            let durable = s.durable.get(&path).and_then(|i| i.clone());
            let current = std::fs::read(&path).ok();
            let restored: Option<Vec<u8>> = match (durable, current) {
                (Some(d), Some(c)) => {
                    // The durable prefix survives; the unsynced suffix
                    // survives partially, fully, or not at all.
                    if c.len() > d.len() && c[..d.len()] == d[..] {
                        let extra = rng.next_below(c.len() as u64 - d.len() as u64 + 1) as usize;
                        Some(c[..d.len() + extra].to_vec())
                    } else if rng.next_below(2) == 0 {
                        Some(d)
                    } else {
                        Some(c)
                    }
                }
                (Some(d), None) => Some(d),
                (None, Some(c)) => {
                    // Never fsynced: the file may survive (metadata
                    // flushed by the OS) or vanish entirely.
                    if rng.next_below(2) == 0 {
                        None
                    } else {
                        let keep = rng.next_below(c.len() as u64 + 1) as usize;
                        Some(c[..keep].to_vec())
                    }
                }
                (None, None) => None,
            };
            match &restored {
                Some(bytes) => std::fs::write(&path, bytes)?,
                None => match std::fs::remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                },
            }
            // After the reboot, what is on disk is what is durable.
            s.durable.insert(path, restored);
        }
        s.fsync_poisoned.clear();
        s.powered_off = false;
        Ok(())
    }

    /// Flip bits at `offset` of the on-disk (and durable) image of
    /// `path` — post-crash bit-rot, for exercising CRC detection.
    // audit: holds-lock(vfs-state)
    pub fn corrupt_byte(&self, path: &Path, offset: u64, xor: u8) -> io::Result<()> {
        let mut s = self.locked();
        let mut bytes = std::fs::read(path)?;
        let i = offset as usize;
        if i >= bytes.len() {
            return Err(io::Error::other("corrupt_byte offset past end of file"));
        }
        bytes[i] ^= xor;
        std::fs::write(path, &bytes)?;
        s.durable.insert(path.to_path_buf(), Some(bytes));
        s.injected.push(format!(
            "bit-rot {} @ {offset} ^ {xor:#04x}",
            path.display()
        ));
        Ok(())
    }
}

/// A handle through the injector: every operation consults the shared
/// fault state first.
struct FaultFile {
    inner: File,
    path: PathBuf,
    fs: FaultFs,
}

impl FaultFile {
    // audit: holds-lock(vfs-state)
    fn decide(&self, op: FaultOp, write_len: usize) -> Verdict {
        self.fs.locked().decide(op, &self.path, write_len)
    }

    // audit: holds-lock(vfs-state)
    fn fsync(&mut self, all: bool) -> io::Result<()> {
        match self.decide(FaultOp::Fsync, 0) {
            Verdict::Proceed => {}
            Verdict::Fail(e) | Verdict::Partial { error: e, .. } => return Err(e),
        }
        if all {
            self.inner.sync_all()?;
        } else {
            self.inner.sync_data()?;
        }
        // Success: the file's full current content is now durable.
        let image = std::fs::read(&self.path)?;
        self.fs
            .locked()
            .durable
            .insert(self.path.clone(), Some(image));
        Ok(())
    }
}

impl VfsFile for FaultFile {
    // audit: holds-lock(vfs-state)
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.decide(FaultOp::Write, buf.len()) {
            Verdict::Proceed => self.inner.write_all(buf),
            Verdict::Fail(e) => Err(e),
            Verdict::Partial {
                keep,
                error,
                power_cut,
            } => {
                self.inner.write_all(&buf[..keep.min(buf.len())])?;
                if power_cut {
                    self.fs.locked().powered_off = true;
                }
                Err(error)
            }
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.fsync(false)
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.fsync(true)
    }
    // audit: holds-lock(vfs-state)
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        match self.decide(FaultOp::SetLen, 0) {
            Verdict::Proceed => self.inner.set_len(len),
            Verdict::Fail(e) | Verdict::Partial { error: e, .. } => Err(e),
        }
    }
    fn seek_to(&mut self, pos: u64) -> io::Result<u64> {
        self.inner.seek(SeekFrom::Start(pos))
    }
}

impl Vfs for FaultFs {
    // audit: holds-lock(vfs-state)
    fn open_rw(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        {
            let mut s = self.locked();
            s.track(path);
            match s.decide(FaultOp::Open, path, 0) {
                Verdict::Proceed => {}
                Verdict::Fail(e) | Verdict::Partial { error: e, .. } => return Err(e),
            }
        }
        let inner = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(FaultFile {
            inner,
            path: path.to_path_buf(),
            fs: self.clone(),
        }))
    }

    // audit: holds-lock(vfs-state)
    fn create_file(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        {
            let mut s = self.locked();
            s.track(path);
            match s.decide(FaultOp::Open, path, 0) {
                Verdict::Proceed => {}
                Verdict::Fail(e) | Verdict::Partial { error: e, .. } => return Err(e),
            }
            // A re-created file is a new inode: fsyncgate poison does
            // not follow it.
            s.fsync_poisoned.retain(|p| p != path);
        }
        let inner = File::create(path)?;
        Ok(Box::new(FaultFile {
            inner,
            path: path.to_path_buf(),
            fs: self.clone(),
        }))
    }

    // audit: holds-lock(vfs-state)
    fn read_file(&self, path: &Path) -> io::Result<Vec<u8>> {
        {
            let mut s = self.locked();
            s.track(path);
            match s.decide(FaultOp::Read, path, 0) {
                Verdict::Proceed => {}
                Verdict::Fail(e) | Verdict::Partial { error: e, .. } => return Err(e),
            }
        }
        std::fs::read(path)
    }

    // audit: holds-lock(vfs-state)
    fn rename_file(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.locked();
        s.track(from);
        s.track(to);
        match s.decide(FaultOp::Rename, to, 0) {
            Verdict::Proceed => {}
            Verdict::Fail(e) | Verdict::Partial { error: e, .. } => return Err(e),
        }
        std::fs::rename(from, to)?;
        // The rename is durable only once the directory is fsynced;
        // until then a crash may roll it back.
        let prev_from = s.durable.get(from).cloned().unwrap_or(None);
        let prev_to = s.durable.get(to).cloned().unwrap_or(None);
        s.pending_renames.push(PendingRename {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
            prev_from: prev_from.clone(),
            prev_to,
        });
        s.durable.insert(to.to_path_buf(), prev_from);
        s.durable.insert(from.to_path_buf(), None);
        // Poison follows the inode out of existence, not the name.
        s.fsync_poisoned.retain(|p| p != to && p != from);
        Ok(())
    }

    // audit: holds-lock(vfs-state)
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.locked();
        if s.powered_off {
            return Err(io::Error::other("simulated power loss"));
        }
        std::fs::remove_file(path)?;
        // Model removal as immediately durable (the market only removes
        // a stale WAL before its genesis snapshot exists; resurrecting
        // it would be indistinguishable from an uninitialized dir).
        s.durable.insert(path.to_path_buf(), None);
        s.fsync_poisoned.retain(|p| p != path);
        Ok(())
    }

    // audit: holds-lock(vfs-state)
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        if self.locked().powered_off {
            return Err(io::Error::other("simulated power loss"));
        }
        std::fs::create_dir_all(path)
    }

    // audit: holds-lock(vfs-state)
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut s = self.locked();
        match s.decide(FaultOp::SyncDir, dir, 0) {
            Verdict::Proceed => {}
            Verdict::Fail(e) | Verdict::Partial { error: e, .. } => return Err(e),
        }
        // Commit pending renames inside this directory: they survive
        // any later crash.
        s.pending_renames
            .retain(|p| p.to.parent() != Some(dir) && p.from.parent() != Some(dir));
        Ok(())
    }

    // audit: holds-lock(vfs-state)
    fn exists(&self, path: &Path) -> bool {
        if self.locked().powered_off {
            return false;
        }
        path.exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "qbdp_vfs_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let below: Vec<u64> = (0..100).map(|_| a.next_below(10)).collect();
        assert!(below.iter().all(|&v| v < 10));
        assert!(below.iter().collect::<std::collections::HashSet<_>>().len() > 3);
    }

    #[test]
    fn retry_recovers_from_transient_faults() {
        let policy = RetryPolicy {
            attempts: 4,
            base_delay_micros: 1,
            max_delay_micros: 2,
            jitter_seed: 1,
        };
        let mut fails = 2;
        let out = policy.run("test-op", Path::new("x"), || {
            if fails > 0 {
                fails -= 1;
                Err(io::Error::from(io::ErrorKind::Interrupted))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.ok(), Some(42));
    }

    #[test]
    fn retry_exhaustion_is_typed_transient() {
        let policy = RetryPolicy {
            attempts: 3,
            base_delay_micros: 1,
            max_delay_micros: 2,
            jitter_seed: 1,
        };
        let mut calls = 0;
        let out: Result<(), StoreError> = policy.run("wal-append", Path::new("/tmp/x.wal"), || {
            calls += 1;
            Err(io::Error::from(io::ErrorKind::WouldBlock))
        });
        assert_eq!(calls, 3);
        match out {
            Err(StoreError::Transient { op, path, .. }) => {
                assert_eq!(op, "wal-append");
                assert!(path.contains("x.wal"));
            }
            other => panic!("expected Transient, got {other:?}"),
        }
    }

    #[test]
    fn retry_surfaces_fatal_immediately() {
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let out: Result<(), StoreError> = policy.run("op", Path::new("x"), || {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::StorageFull, "full"))
        });
        assert_eq!(calls, 1, "fatal errors must not be retried");
        assert!(matches!(out, Err(StoreError::Io(_))));
    }

    #[test]
    fn scripted_enospc_lands_a_strict_prefix() {
        let path = temp_path("enospc");
        let fs = FaultFs::new(FaultPlan {
            script: vec![ScriptedFault {
                op: FaultOp::Write,
                path_contains: "enospc".into(),
                skip: 1,
                kind: FaultKind::Enospc { keep: 3 },
            }],
            seeded: None,
        });
        let mut f = fs.open_rw(&path).unwrap();
        f.write_all(b"hello").unwrap(); // skip lets the first through
        let err = f.write_all(b"world").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"hellowor");
        assert_eq!(fs.injected_count(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsyncgate_poison_persists_until_recreate() {
        let path = temp_path("fsyncgate");
        let fs = FaultFs::new(FaultPlan {
            script: vec![ScriptedFault {
                op: FaultOp::Fsync,
                path_contains: String::new(),
                skip: 0,
                kind: FaultKind::FsyncFail,
            }],
            seeded: None,
        });
        let mut f = fs.open_rw(&path).unwrap();
        f.write_all(b"data").unwrap();
        assert!(f.sync_data().is_err(), "injected fsync failure");
        // The script is consumed, but fsyncgate keeps the file poisoned.
        assert!(f.sync_data().is_err(), "fsyncgate: still failing");
        assert!(f.sync_all().is_err());
        drop(f);
        // Re-creating the file is a new inode: fsync works again.
        let mut f = fs.create_file(&path).unwrap();
        f.write_all(b"fresh").unwrap();
        assert!(f.sync_data().is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_restores_durable_image_and_drops_unsynced_suffix() {
        let path = temp_path("crash");
        let fs = FaultFs::new(FaultPlan::none());
        let mut f = fs.open_rw(&path).unwrap();
        f.write_all(b"durable!").unwrap();
        f.sync_data().unwrap();
        f.write_all(b"-unsynced-tail").unwrap();
        drop(f);
        // Whatever the seeded coin picks, the durable prefix survives
        // and nothing beyond the written bytes appears.
        for seed in 0..20u64 {
            fs.simulate_crash(seed).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            assert!(bytes.len() >= 8, "durable prefix lost (seed {seed})");
            assert_eq!(&bytes[..8], b"durable!");
            assert!(bytes.len() <= 8 + 14);
            // Reset for the next round: crash made the restored state
            // durable, so re-append an unsynced tail.
            let mut f = fs.open_rw(&path).unwrap();
            f.set_len(8).unwrap();
            f.sync_data().unwrap();
            f.seek_to(8).unwrap();
            f.write_all(b"-unsynced-tail").unwrap();
            drop(f);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_write_cuts_the_power() {
        let path = temp_path("torn");
        let fs = FaultFs::new(FaultPlan {
            script: vec![ScriptedFault {
                op: FaultOp::Write,
                path_contains: String::new(),
                skip: 0,
                kind: FaultKind::TornWrite { keep: 2 },
            }],
            seeded: None,
        });
        let mut f = fs.open_rw(&path).unwrap();
        let err = f.write_all(b"abcdef").unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        assert!(fs.powered_off());
        // Everything fails until the crash is simulated.
        assert!(f.write_all(b"x").is_err());
        assert!(f.sync_data().is_err());
        assert!(fs.read_file(&path).is_err());
        drop(f);
        fs.simulate_crash(3).unwrap();
        assert!(!fs.powered_off());
        // The file never had an fsync: it holds at most the torn bytes.
        let bytes = std::fs::read(&path).unwrap_or_default();
        assert!(bytes.len() <= 2, "{bytes:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn uncommitted_rename_may_roll_back_committed_never_does() {
        // Committed: a dir fsync after the rename pins it.
        let to = temp_path("ren_committed");
        let from = to.with_extension("tmp");
        let fs = FaultFs::new(FaultPlan::none());
        let mut f = fs.create_file(&from).unwrap();
        f.write_all(b"new").unwrap();
        f.sync_all().unwrap();
        drop(f);
        fs.rename_file(&from, &to).unwrap();
        fs.sync_dir(to.parent().unwrap()).unwrap();
        for seed in 0..10 {
            fs.simulate_crash(seed).unwrap();
            assert_eq!(std::fs::read(&to).unwrap(), b"new", "seed {seed}");
        }
        std::fs::remove_file(&to).ok();

        // Uncommitted: some seed rolls the rename back.
        let to2 = temp_path("ren_pending");
        let from2 = to2.with_extension("tmp");
        let mut rolled_back = false;
        let mut survived = false;
        for seed in 0..20 {
            std::fs::write(&to2, b"old").unwrap();
            let fs = FaultFs::new(FaultPlan::none());
            let mut f = fs.create_file(&from2).unwrap();
            f.write_all(b"new").unwrap();
            f.sync_all().unwrap();
            drop(f);
            fs.rename_file(&from2, &to2).unwrap();
            fs.simulate_crash(seed).unwrap();
            match std::fs::read(&to2).unwrap().as_slice() {
                b"old" => rolled_back = true,
                b"new" => survived = true,
                other => panic!("torn hybrid after rename: {other:?}"),
            }
        }
        assert!(rolled_back, "no seed rolled the uncommitted rename back");
        assert!(survived, "no seed let the uncommitted rename survive");
        std::fs::remove_file(&to2).ok();
        std::fs::remove_file(&from2).ok();
    }

    #[test]
    fn corrupt_byte_flips_on_disk_and_durable_image() {
        let path = temp_path("rot");
        let fs = FaultFs::new(FaultPlan::none());
        let mut f = fs.open_rw(&path).unwrap();
        f.write_all(b"pristine").unwrap();
        f.sync_data().unwrap();
        drop(f);
        fs.corrupt_byte(&path, 0, 0x20).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"Pristine");
        // The rot is durable: a crash does not undo it.
        fs.simulate_crash(1).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"Pristine");
        assert!(fs.corrupt_byte(&path, 999, 1).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seeded_faults_fire_deterministically() {
        let run = |seed: u64| {
            let path = temp_path(&format!("seeded{seed}"));
            let fs = FaultFs::new(FaultPlan {
                script: vec![],
                seeded: Some(SeededFaults {
                    seed,
                    transient_per_mille: 300,
                    enospc_per_mille: 100,
                    fsync_fail_per_mille: 100,
                    torn_write_per_mille: 0,
                }),
            });
            let mut f = fs.open_rw(&path).unwrap();
            let mut outcomes = Vec::new();
            for i in 0..50 {
                outcomes.push(f.write_all(&[i]).is_ok());
                outcomes.push(f.sync_data().is_ok());
            }
            drop(f);
            std::fs::remove_file(&path).ok();
            (outcomes, fs.injected_count())
        };
        let (a, fa) = run(11);
        let (b, fb) = run(11);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(fa, fb);
        assert!(fa > 0, "rates this high must inject something");
        let (c, _) = run(12);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn real_fs_roundtrip() {
        let path = temp_path("realfs");
        let fs = RealFs;
        let mut f = fs.create_file(&path).unwrap();
        f.write_all(b"abc").unwrap();
        f.sync_all().unwrap();
        drop(f);
        assert!(fs.exists(&path));
        assert_eq!(fs.read_file(&path).unwrap(), b"abc");
        let to = path.with_extension("renamed");
        fs.rename_file(&path, &to).unwrap();
        fs.sync_dir(to.parent().unwrap()).unwrap();
        assert!(!fs.exists(&path));
        let mut f = fs.open_rw(&to).unwrap();
        f.set_len(1).unwrap();
        f.seek_to(1).unwrap();
        f.write_all(b"z").unwrap();
        f.flush().unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(fs.read_file(&to).unwrap(), b"az");
        fs.remove_file(&to).unwrap();
    }
}
