//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven and built
//! at compile time. The framing layer uses it to distinguish a record
//! that was written in full from one damaged by a crash or bit rot; it is
//! an integrity check, not a cryptographic one.

/// The 256-entry lookup table, one step of the bitwise algorithm per
/// byte value, generated in a const context so the runtime cost is a
/// single table walk per input byte.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (initial value all-ones, final complement — the
/// standard "crc32" everyone else computes).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let data = b"qbdp wal record payload".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
