//! The typed market event log vocabulary and its binary encoding.
//!
//! One [`MarketEvent`] is one durable mutation of a market. The store
//! layer knows nothing about pricing semantics: relations, tuples, and
//! selection views travel as the same rendered literals the `.qdp` text
//! format uses, so the market layer can re-resolve them against its
//! schema on replay and the log stays readable with one `xxd`.
//!
//! # Wire format
//!
//! Every event is `[u8 tag]` followed by its fields in order. Integers
//! are fixed-width little-endian `u64`; strings are `u32` byte length +
//! UTF-8 bytes; `Option<u64>` is a presence byte + value; lists are a
//! `u32` count + elements. The encoding is self-contained per event —
//! framing, length, and checksum belong to [`crate::wal`].

use crate::error::StoreError;

/// One durable market mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MarketEvent {
    /// The seller set (or added) the price of one selection view.
    /// `view` is the `R.X=a` selector syntax; `cents` the new price.
    SetPrice {
        /// Selector in `R.X=a` syntax.
        view: String,
        /// New price in cents.
        cents: u64,
    },
    /// The seller inserted one tuple.
    InsertTuple {
        /// Relation name.
        relation: String,
        /// Values as `.qdp` literals, in attribute order.
        values: Vec<String>,
    },
    /// A buyer completed a purchase. The quoted terms are recorded so
    /// replay can restore the ledger without re-pricing.
    Purchase {
        /// The query, rendered canonically.
        query: String,
        /// The price paid, in cents.
        price_cents: u64,
        /// Answer tuples delivered.
        answer_tuples: u64,
        /// Views in the receipt.
        views: u64,
    },
    /// The market's resource policy changed.
    PolicyChange {
        /// Wall-clock deadline per quote, milliseconds (`None` = unlimited).
        deadline_ms: Option<u64>,
        /// Fuel per quote (`None` = unlimited).
        fuel: Option<u64>,
        /// Whether degraded quotes may be sold.
        sell_degraded: bool,
        /// Admission cap on in-flight requests.
        max_in_flight: u64,
        /// Batch worker count (0 = one per core).
        batch_workers: u64,
    },
    /// A snapshot covering the log up to `wal_pos` was written. Purely
    /// informational (recovery trusts the snapshot file's own header);
    /// kept in the log so `replay` can narrate compaction history.
    SnapshotMark {
        /// Byte position of the log the snapshot covers.
        wal_pos: u64,
    },
}

const TAG_SET_PRICE: u8 = 1;
const TAG_INSERT_TUPLE: u8 = 2;
const TAG_PURCHASE: u8 = 3;
const TAG_POLICY_CHANGE: u8 = 4;
const TAG_SNAPSHOT_MARK: u8 = 5;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
        None => out.push(0),
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over an event payload.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(format!("bad Option discriminant {other}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "string is not UTF-8".to_string())
    }

    fn done(&self) -> Result<(), String> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing byte(s) after event",
                self.data.len() - self.pos
            ))
        }
    }
}

impl MarketEvent {
    /// Serialize to the wire format (payload only; no framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            MarketEvent::SetPrice { view, cents } => {
                out.push(TAG_SET_PRICE);
                put_str(&mut out, view);
                put_u64(&mut out, *cents);
            }
            MarketEvent::InsertTuple { relation, values } => {
                out.push(TAG_INSERT_TUPLE);
                put_str(&mut out, relation);
                out.extend_from_slice(&(values.len() as u32).to_le_bytes());
                for v in values {
                    put_str(&mut out, v);
                }
            }
            MarketEvent::Purchase {
                query,
                price_cents,
                answer_tuples,
                views,
            } => {
                out.push(TAG_PURCHASE);
                put_str(&mut out, query);
                put_u64(&mut out, *price_cents);
                put_u64(&mut out, *answer_tuples);
                put_u64(&mut out, *views);
            }
            MarketEvent::PolicyChange {
                deadline_ms,
                fuel,
                sell_degraded,
                max_in_flight,
                batch_workers,
            } => {
                out.push(TAG_POLICY_CHANGE);
                put_opt_u64(&mut out, *deadline_ms);
                put_opt_u64(&mut out, *fuel);
                out.push(u8::from(*sell_degraded));
                put_u64(&mut out, *max_in_flight);
                put_u64(&mut out, *batch_workers);
            }
            MarketEvent::SnapshotMark { wal_pos } => {
                out.push(TAG_SNAPSHOT_MARK);
                put_u64(&mut out, *wal_pos);
            }
        }
        out
    }

    /// Decode one event from a CRC-validated payload. `offset` is the
    /// record's position in the log, used only to type the error.
    pub fn decode(payload: &[u8], offset: u64) -> Result<MarketEvent, StoreError> {
        Self::decode_inner(payload).map_err(|reason| StoreError::CorruptRecord { offset, reason })
    }

    fn decode_inner(payload: &[u8]) -> Result<MarketEvent, String> {
        let mut r = Reader {
            data: payload,
            pos: 0,
        };
        let event = match r.u8()? {
            TAG_SET_PRICE => MarketEvent::SetPrice {
                view: r.string()?,
                cents: r.u64()?,
            },
            TAG_INSERT_TUPLE => {
                let relation = r.string()?;
                let n = r.u32()? as usize;
                // Each value needs at least its 4-byte length prefix, so a
                // plausible count is bounded by the remaining payload.
                if n > payload.len() / 4 + 1 {
                    return Err(format!("implausible value count {n}"));
                }
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(r.string()?);
                }
                MarketEvent::InsertTuple { relation, values }
            }
            TAG_PURCHASE => MarketEvent::Purchase {
                query: r.string()?,
                price_cents: r.u64()?,
                answer_tuples: r.u64()?,
                views: r.u64()?,
            },
            TAG_POLICY_CHANGE => MarketEvent::PolicyChange {
                deadline_ms: r.opt_u64()?,
                fuel: r.opt_u64()?,
                sell_degraded: match r.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(format!("bad bool discriminant {other}")),
                },
                max_in_flight: r.u64()?,
                batch_workers: r.u64()?,
            },
            TAG_SNAPSHOT_MARK => MarketEvent::SnapshotMark { wal_pos: r.u64()? },
            other => return Err(format!("unknown event tag {other}")),
        };
        r.done()?;
        Ok(event)
    }

    /// Short human name for logs and `replay` summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            MarketEvent::SetPrice { .. } => "set-price",
            MarketEvent::InsertTuple { .. } => "insert",
            MarketEvent::Purchase { .. } => "purchase",
            MarketEvent::PolicyChange { .. } => "policy",
            MarketEvent::SnapshotMark { .. } => "snapshot-mark",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<MarketEvent> {
        vec![
            MarketEvent::SetPrice {
                view: "S.Y=b1".into(),
                cents: 25,
            },
            MarketEvent::InsertTuple {
                relation: "S".into(),
                values: vec!["a1".into(), "'odd name'".into()],
            },
            MarketEvent::InsertTuple {
                relation: "R".into(),
                values: vec![],
            },
            MarketEvent::Purchase {
                query: "Q(x) :- R(x)".into(),
                price_cents: 400,
                answer_tuples: 2,
                views: 4,
            },
            MarketEvent::PolicyChange {
                deadline_ms: Some(50),
                fuel: None,
                sell_degraded: true,
                max_in_flight: 64,
                batch_workers: 0,
            },
            MarketEvent::SnapshotMark { wal_pos: 12345 },
        ]
    }

    #[test]
    fn roundtrip() {
        for ev in samples() {
            let bytes = ev.encode();
            let back = MarketEvent::decode(&bytes, 0).unwrap();
            assert_eq!(ev, back);
        }
    }

    #[test]
    fn truncated_payload_is_typed_error() {
        for ev in samples() {
            let bytes = ev.encode();
            for cut in 0..bytes.len() {
                let err = MarketEvent::decode(&bytes[..cut], 7);
                assert!(
                    matches!(err, Err(StoreError::CorruptRecord { offset: 7, .. })),
                    "cut at {cut} of {ev:?} must be CorruptRecord"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = samples()[0].encode();
        bytes.push(0xAA);
        assert!(matches!(
            MarketEvent::decode(&bytes, 0),
            Err(StoreError::CorruptRecord { .. })
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            MarketEvent::decode(&[200, 0, 0], 0),
            Err(StoreError::CorruptRecord { .. })
        ));
    }
}
