//! Atomic, checksummed snapshots.
//!
//! A snapshot is the full materialized state at one log position, so
//! recovery is *snapshot load + suffix replay* instead of replaying the
//! log from genesis. The store layer treats the state as opaque named
//! text **sections** — the market layer puts its `.qdp` serialization in
//! one, its ledger in another — plus the one field recovery needs from
//! us: `wal_pos`, the log offset the state covers.
//!
//! # File format
//!
//! ```text
//! qbdp-snapshot v1
//! wal_pos <u64>
//! crc <u32>                 # CRC-32 over wal_pos and every section
//! sections <count>
//! section <name> <byte_len>
//! <byte_len raw bytes>
//! …one `section` header + body per section…
//! ```
//!
//! # Atomicity
//!
//! [`Snapshot::write`] writes to `<name>.tmp` in the same directory,
//! fsyncs it, renames over the target, and fsyncs the directory — the
//! POSIX recipe that leaves either the old snapshot or the new one,
//! never a torn hybrid. The CRC catches damage that happens *after* a
//! successful write (bit rot, partial disk restore).

use crate::crc::crc32;
use crate::error::StoreError;
use crate::vfs::{RealFs, RetryPolicy, Vfs};
use std::path::Path;

const MAGIC: &str = "qbdp-snapshot v1";

/// A snapshot: the log position it covers plus named state sections.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Log offset this state covers; recovery replays the log from here.
    pub wal_pos: u64,
    /// Named opaque text sections, in writing order.
    pub sections: Vec<(String, String)>,
}

impl Snapshot {
    /// A snapshot covering log position `wal_pos` with no sections yet.
    pub fn new(wal_pos: u64) -> Snapshot {
        Snapshot {
            wal_pos,
            sections: Vec::new(),
        }
    }

    /// Append a named section. Names must be single tokens (no
    /// whitespace); contents are arbitrary text.
    pub fn push_section(&mut self, name: impl Into<String>, body: impl Into<String>) {
        self.sections.push((name.into(), body.into()));
    }

    /// The body of the first section called `name`.
    pub fn section(&self, name: &str) -> Option<&str> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_str())
    }

    fn checksum(&self) -> u32 {
        let mut data = Vec::new();
        data.extend_from_slice(&self.wal_pos.to_le_bytes());
        for (name, body) in &self.sections {
            data.extend_from_slice(name.as_bytes());
            data.push(0);
            data.extend_from_slice(body.as_bytes());
            data.push(0);
        }
        crc32(&data)
    }

    /// Serialize to the file format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC.as_bytes());
        out.push(b'\n');
        out.extend_from_slice(format!("wal_pos {}\n", self.wal_pos).as_bytes());
        out.extend_from_slice(format!("crc {}\n", self.checksum()).as_bytes());
        out.extend_from_slice(format!("sections {}\n", self.sections.len()).as_bytes());
        for (name, body) in &self.sections {
            out.extend_from_slice(format!("section {} {}\n", name, body.len()).as_bytes());
            out.extend_from_slice(body.as_bytes());
            out.push(b'\n');
        }
        out
    }

    /// Parse the file format, verifying the checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, StoreError> {
        let bad = |m: &str| StoreError::CorruptSnapshot(m.to_string());
        let mut pos = 0usize;
        let line = |pos: &mut usize| -> Result<&str, StoreError> {
            let rest = bytes.get(*pos..).ok_or_else(|| bad("unexpected end"))?;
            let nl = rest
                .iter()
                .position(|&b| b == b'\n')
                .ok_or_else(|| bad("missing newline"))?;
            let s = std::str::from_utf8(&rest[..nl]).map_err(|_| bad("non-UTF-8 header"))?;
            *pos += nl + 1;
            Ok(s)
        };
        if line(&mut pos)? != MAGIC {
            return Err(bad("bad magic"));
        }
        let field = |l: &str, key: &str| -> Result<u64, StoreError> {
            l.strip_prefix(key)
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| bad(&format!("bad `{key}` line")))
        };
        let wal_pos = field(line(&mut pos)?, "wal_pos ")?;
        let crc = field(line(&mut pos)?, "crc ")? as u32;
        let count = field(line(&mut pos)?, "sections ")? as usize;
        if count > 1024 {
            return Err(bad("implausible section count"));
        }
        let mut sections = Vec::with_capacity(count);
        for _ in 0..count {
            let header = line(&mut pos)?.to_string();
            let mut parts = header
                .strip_prefix("section ")
                .ok_or_else(|| bad("bad section header"))?
                .splitn(2, ' ');
            let name = parts.next().ok_or_else(|| bad("missing section name"))?;
            let len: usize = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| bad("bad section length"))?;
            let end = pos
                .checked_add(len)
                .filter(|&e| e < bytes.len() + 1)
                .ok_or_else(|| bad("section body truncated"))?;
            let body = std::str::from_utf8(
                bytes
                    .get(pos..end)
                    .ok_or_else(|| bad("section body truncated"))?,
            )
            .map_err(|_| bad("non-UTF-8 section body"))?
            .to_string();
            pos = end;
            if bytes.get(pos) != Some(&b'\n') {
                return Err(bad("section body not newline-terminated"));
            }
            pos += 1;
            sections.push((name.to_string(), body));
        }
        let snapshot = Snapshot { wal_pos, sections };
        if snapshot.checksum() != crc {
            return Err(bad("checksum mismatch"));
        }
        Ok(snapshot)
    }

    /// Write atomically to `path`: temp file in the same directory,
    /// fsync, rename, directory fsync. Uses the real filesystem with
    /// the default retry policy; see [`Snapshot::write_with`].
    pub fn write(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        self.write_with(&RealFs, path, &RetryPolicy::default())
    }

    /// Write atomically to `path` on `vfs`. Each step retries transient
    /// faults per `retry`; the whole temp-file build (create + write +
    /// fsync) retries as one unit — `create_file` truncates, so a retry
    /// restarts from a clean slate. A transient fault that persists
    /// through the retries surfaces as the typed
    /// [`StoreError::Transient`], never as a corruption error: nothing
    /// past the temp file was touched, so the previous snapshot is
    /// intact and the caller may simply try compacting again later.
    pub fn write_with(
        &self,
        vfs: &dyn Vfs,
        path: impl AsRef<Path>,
        retry: &RetryPolicy,
    ) -> Result<(), StoreError> {
        let sw = qbdp_obs::Stopwatch::start();
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        let bytes = self.to_bytes();
        retry.run("snapshot-tmp", &tmp, || {
            let mut f = vfs.create_file(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()
        })?;
        retry.run("snapshot-rename", path, || vfs.rename_file(&tmp, path))?;
        if let Some(dir) = path.parent() {
            // Persist the rename itself; on platforms where directories
            // cannot be opened this is best-effort.
            let _ = vfs.sync_dir(dir);
        }
        qbdp_obs::record(qbdp_obs::Ctr::StoreSnapshots, 1);
        sw.stop(qbdp_obs::Hst::SnapshotWriteUs);
        Ok(())
    }

    /// Load and verify a snapshot from `path`. A missing file is
    /// [`StoreError::SnapshotMissing`], distinct from a damaged one.
    pub fn load(path: impl AsRef<Path>) -> Result<Snapshot, StoreError> {
        Self::load_with(&RealFs, path)
    }

    /// Load and verify a snapshot from `path` on `vfs`.
    pub fn load_with(vfs: &dyn Vfs, path: impl AsRef<Path>) -> Result<Snapshot, StoreError> {
        let bytes = match vfs.read_file(path.as_ref()) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::SnapshotMissing)
            }
            Err(e) => return Err(e.into()),
        };
        Snapshot::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "qbdp_snap_{tag}_{}_{}.qdps",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample() -> Snapshot {
        let mut s = Snapshot::new(4242);
        s.push_section("market", "schema R(X)\ntuple R(a1)\n");
        s.push_section(
            "ledger",
            "revenue 600\nnext_id 2\nsale 1 600 1 6 Q(x) :- R(x)\n",
        );
        s
    }

    #[test]
    fn roundtrip_bytes() {
        let s = sample();
        let back = Snapshot::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.section("ledger").unwrap().lines().count(), 3);
        assert!(back.section("nope").is_none());
    }

    #[test]
    fn roundtrip_file_and_missing() {
        let path = temp_path("file");
        assert!(matches!(
            Snapshot::load(&path),
            Err(StoreError::SnapshotMissing)
        ));
        sample().write(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), sample());
        // Overwrite is atomic-replace, not append.
        let mut s2 = sample();
        s2.wal_pos = 1;
        s2.write(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap().wal_pos, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn damage_is_detected() {
        let bytes = sample().to_bytes();
        // Flip a byte inside a section body.
        let mut bad = bytes.clone();
        let idx = bytes.len() - 10;
        bad[idx] ^= 0x20;
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(StoreError::CorruptSnapshot(_))
        ));
        // Truncations anywhere are CorruptSnapshot, never a panic.
        for cut in 0..bytes.len() {
            assert!(matches!(
                Snapshot::from_bytes(&bytes[..cut]),
                Err(StoreError::CorruptSnapshot(_))
            ));
        }
    }

    #[test]
    fn empty_sections_and_weird_bodies() {
        let mut s = Snapshot::new(0);
        s.push_section("empty", "");
        s.push_section("tricky", "section fake 99\nwal_pos 7\n");
        let back = Snapshot::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
    }
}
