#![warn(missing_docs)]
// The durability layer sits under the serving layer, so the same rule
// applies: never panic on bad bytes — every corruption is a typed error.
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # qbdp-store — durable market state
//!
//! A write-ahead log plus snapshots, so a market survives restarts and
//! crashes: every mutation is appended to a checksummed, length-prefixed
//! log *before* it is applied in memory, and periodic [`Snapshot`]s bound
//! replay time. Recovery is snapshot-load + suffix-replay, and is
//! **prefix-consistent**: whatever byte a crash (or `kill -9`, or a torn
//! write) leaves the log at, the recovered state equals a market that
//! applied exactly the durable prefix of the history — never a
//! half-applied event, never a resurrected one.
//!
//! The crate is deliberately market-agnostic: it speaks [`MarketEvent`]s
//! whose fields are rendered literals, and snapshots carry opaque named
//! text sections. `qbdp-market`'s `DurableMarket` owns the semantics
//! (what applying an event *means*); this crate owns the bytes (framing,
//! checksums, fsync, atomic rename, torn-tail truncation).
//!
//! * [`wal`] — the append-only log: CRC-framed records, configurable
//!   [`FsyncPolicy`], torn-tail repair on open;
//! * [`snapshot`] — atomic (temp file + rename) checksummed snapshots
//!   recording the log position they cover;
//! * [`event`] — the typed event vocabulary and its wire encoding;
//! * [`error`] — [`StoreError`] and the [`FaultClass`] taxonomy: the
//!   load-bearing distinctions between a *torn tail* (expected crash
//!   residue, truncated silently), a *corrupt record* (damage, refused
//!   loudly), a *transient* fault (retried, then surfaced typed), and a
//!   *poisoned* log (fsyncgate; appends refused, reads still sound);
//! * [`vfs`] — the filesystem seam: [`RealFs`] for production and
//!   [`FaultFs`], a deterministic fault injector (scripted + seeded
//!   EINTR/ENOSPC/fsync-failure/torn-write faults, durability-aware
//!   crash simulation) that the chaos harness drives;
//! * [`scrub()`] — a background-free integrity pass verifying every
//!   snapshot and WAL checksum before the bytes are load-bearing.

pub mod crc;
pub mod error;
pub mod event;
pub mod scrub;
pub mod snapshot;
pub mod vfs;
pub mod wal;

pub use error::{FaultClass, StoreError};
pub use event::MarketEvent;
pub use scrub::{scrub, ScrubFinding, ScrubReport};
pub use snapshot::Snapshot;
pub use vfs::{
    FaultFs, FaultKind, FaultOp, FaultPlan, RealFs, RetryPolicy, ScriptedFault, SeededFaults, Vfs,
    VfsFile,
};
pub use wal::{FsyncPolicy, LogRecord, Wal};
