//! Integrity scrubbing: verify every checksum **before** it is
//! load-bearing.
//!
//! Recovery only reads the snapshot plus the log suffix it covers, so
//! bit-rot in an already-compacted region sits undetected until the next
//! full replay needs it. [`scrub`] walks both files end to end — snapshot
//! header, section checksum, every WAL frame CRC — and reports damage as
//! data rather than failing, so an operator (or the `qbdp scrub` CLI
//! verb) can see *all* the damage at once and decide what to restore.
//! Scrubbing never mutates anything: it opens both files read-only and
//! is safe to run against a live market directory between syncs.

use crate::error::StoreError;
use crate::snapshot::Snapshot;
use crate::vfs::Vfs;
use crate::wal;
use std::fmt;
use std::path::Path;

/// One piece of damage found by [`scrub`].
#[derive(Clone, Debug)]
pub struct ScrubFinding {
    /// Which file is damaged (`snapshot` or `wal`).
    pub file: String,
    /// Byte offset of the damage, where known.
    pub offset: Option<u64>,
    /// What the check found.
    pub detail: String,
}

/// The full result of one scrub pass. `findings` is damage that makes
/// some state unrecoverable; `notes` are benign observations (a torn
/// tail, a snapshot covering more log than exists) that recovery
/// handles on its own.
#[derive(Clone, Debug, Default)]
pub struct ScrubReport {
    /// Intact records decoded from the log.
    pub wal_records: u64,
    /// Clean log bytes (offset of the first non-intact byte).
    pub wal_bytes: u64,
    /// Bytes past the clean prefix (torn tail residue); 0 when clean.
    pub wal_torn_bytes: u64,
    /// The log position the snapshot covers, when the snapshot loaded.
    pub snapshot_wal_pos: Option<u64>,
    /// Section names present in the snapshot, when it loaded.
    pub snapshot_sections: Vec<String>,
    /// Damage that loses state. Empty means every checksum verified.
    pub findings: Vec<ScrubFinding>,
    /// Benign observations recovery already tolerates.
    pub notes: Vec<String>,
}

impl ScrubReport {
    /// True when nothing unrecoverable was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.snapshot_wal_pos {
            Some(pos) => writeln!(
                f,
                "snapshot: ok (wal_pos {pos}, sections: {})",
                self.snapshot_sections.join(", ")
            )?,
            None => writeln!(f, "snapshot: not verified")?,
        }
        writeln!(
            f,
            "wal: {} record(s), {} clean byte(s), {} torn tail byte(s)",
            self.wal_records, self.wal_bytes, self.wal_torn_bytes
        )?;
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        if self.findings.is_empty() {
            write!(f, "scrub: clean")?;
        } else {
            for finding in &self.findings {
                match finding.offset {
                    Some(off) => writeln!(
                        f,
                        "DAMAGE in {} at byte {off}: {}",
                        finding.file, finding.detail
                    )?,
                    None => writeln!(f, "DAMAGE in {}: {}", finding.file, finding.detail)?,
                }
            }
            write!(f, "scrub: {} finding(s)", self.findings.len())?;
        }
        Ok(())
    }
}

/// Walk the snapshot and WAL at the given paths, verifying every
/// checksum, and report. Never fails: I/O errors and corruption both
/// become findings so one damaged file does not hide damage in the
/// other.
pub fn scrub(vfs: &dyn Vfs, snapshot_path: &Path, wal_path: &Path) -> ScrubReport {
    let mut report = ScrubReport::default();

    match Snapshot::load_with(vfs, snapshot_path) {
        Ok(snap) => {
            report.snapshot_wal_pos = Some(snap.wal_pos);
            report.snapshot_sections = snap.sections.iter().map(|(n, _)| n.clone()).collect();
        }
        Err(StoreError::SnapshotMissing) => {
            report
                .notes
                .push("no snapshot file (directory not initialized?)".to_string());
        }
        Err(e) => {
            report.findings.push(ScrubFinding {
                file: "snapshot".to_string(),
                offset: None,
                detail: e.to_string(),
            });
        }
    }

    match vfs.read_file(wal_path) {
        Ok(bytes) => match wal::scan(&bytes) {
            Ok((records, clean_len)) => {
                report.wal_records = records.len() as u64;
                report.wal_bytes = clean_len;
                report.wal_torn_bytes = bytes.len() as u64 - clean_len;
                if report.wal_torn_bytes > 0 {
                    report.notes.push(format!(
                        "torn tail of {} byte(s) past offset {clean_len} \
                         (expected crash residue; reopening repairs it)",
                        report.wal_torn_bytes
                    ));
                }
            }
            Err(e) => {
                let offset = match &e {
                    StoreError::CorruptRecord { offset, .. } => Some(*offset),
                    _ => None,
                };
                report.findings.push(ScrubFinding {
                    file: "wal".to_string(),
                    offset,
                    detail: e.to_string(),
                });
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            report
                .notes
                .push("no WAL file (clean post-compaction state)".to_string());
        }
        Err(e) => {
            report.findings.push(ScrubFinding {
                file: "wal".to_string(),
                offset: None,
                detail: format!("unreadable: {e}"),
            });
        }
    }

    if let Some(pos) = report.snapshot_wal_pos {
        if pos > report.wal_bytes && report.findings.is_empty() {
            report.notes.push(format!(
                "snapshot covers log position {pos} but only {} clean \
                 byte(s) exist (compaction crash window; recovery rebases)",
                report.wal_bytes
            ));
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::MarketEvent;
    use crate::vfs::RealFs;
    use crate::wal::{FsyncPolicy, Wal};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "qbdp_scrub_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn populate(dir: &Path) -> (PathBuf, PathBuf) {
        let snap_path = dir.join("snapshot.qdps");
        let wal_path = dir.join("market.wal");
        let mut snap = Snapshot::new(0);
        snap.push_section("market", "schema R(X)\n");
        snap.write(&snap_path).unwrap();
        let mut wal = Wal::open(&wal_path, FsyncPolicy::Always).unwrap();
        for i in 0..3 {
            wal.append(&MarketEvent::SetPrice {
                view: format!("R.X=a{i}"),
                cents: 100 + i,
            })
            .unwrap();
        }
        (snap_path, wal_path)
    }

    #[test]
    fn clean_state_scrubs_clean() {
        let dir = temp_dir("clean");
        let (snap_path, wal_path) = populate(&dir);
        let report = scrub(&RealFs, &snap_path, &wal_path);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.wal_records, 3);
        assert_eq!(report.snapshot_wal_pos, Some(0));
        assert_eq!(report.snapshot_sections, vec!["market".to_string()]);
        assert_eq!(report.wal_torn_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_a_note_not_a_finding() {
        let dir = temp_dir("torn");
        let (snap_path, wal_path) = populate(&dir);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        bytes.extend_from_slice(&[7, 0, 0, 0]); // half a header
        std::fs::write(&wal_path, &bytes).unwrap();
        let report = scrub(&RealFs, &snap_path, &wal_path);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.wal_torn_bytes, 4);
        assert!(report.notes.iter().any(|n| n.contains("torn tail")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_rot_in_both_files_yields_both_findings() {
        let dir = temp_dir("rot");
        let (snap_path, wal_path) = populate(&dir);
        for path in [&snap_path, &wal_path] {
            let mut bytes = std::fs::read(path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(path, &bytes).unwrap();
        }
        let report = scrub(&RealFs, &snap_path, &wal_path);
        assert!(!report.is_clean());
        let files: Vec<&str> = report.findings.iter().map(|f| f.file.as_str()).collect();
        assert!(files.contains(&"snapshot"), "{report}");
        assert!(files.contains(&"wal"), "{report}");
        assert!(report.to_string().contains("DAMAGE"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_are_notes() {
        let dir = temp_dir("missing");
        let report = scrub(&RealFs, &dir.join("snapshot.qdps"), &dir.join("market.wal"));
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.notes.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
