//! E1: the Figure 1 / Example 3.8 price computation, end to end
//! (partial answers + graph construction + min-cut + cut extraction).

use criterion::{criterion_group, criterion_main, Criterion};
use qbdp_bench::figure1;
use qbdp_core::Price;
use std::hint::black_box;

fn bench_figure1(c: &mut Criterion) {
    let f = figure1();
    let pricer = f.pricer();
    c.bench_function("figure1/price", |b| {
        b.iter(|| {
            let quote = pricer.price_cq(black_box(&f.query)).unwrap();
            assert_eq!(quote.price, Price::dollars(6));
            quote
        })
    });
    c.bench_function("figure1/quote_with_views", |b| {
        b.iter(|| pricer.price_cq(black_box(&f.query)).unwrap().views.len())
    });
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
