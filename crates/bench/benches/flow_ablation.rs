//! E12: ablation of the Step 4 graph construction — the paper's literal
//! dense tuple edges vs the hub optimization, and Dinic vs Edmonds–Karp.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbdp_bench::chain;
use qbdp_core::chain::graph::TupleEdgeMode;
use qbdp_core::chain::price::{chain_price, FlowAlgo};
use qbdp_core::gchq::reorder_to_gchq;
use qbdp_core::normalize::Problem;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_ablation");
    group.sample_size(10);
    for n in [32i64, 128, 512] {
        let f = chain(3, n, (4 * n) as usize, 12);
        let problem = Problem::new(
            f.catalog.clone(),
            f.instance.clone(),
            f.prices.clone(),
            reorder_to_gchq(&f.query).unwrap(),
        );
        for (label, mode, algo) in [
            ("hub_dinic", TupleEdgeMode::Hub, FlowAlgo::Dinic),
            ("dense_dinic", TupleEdgeMode::Dense, FlowAlgo::Dinic),
            ("hub_ek", TupleEdgeMode::Hub, FlowAlgo::EdmondsKarp),
            ("dense_ek", TupleEdgeMode::Dense, FlowAlgo::EdmondsKarp),
        ] {
            if label == "dense_ek" && n > 128 {
                continue; // ~1.4 s/iteration at n = 512; E12 covers it once
            }
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| chain_price(black_box(&problem), mode, algo).unwrap().price)
            });
        }
    }
    group.finish();
}

/// Raw solver ablation on the constructed graphs (construction excluded).
fn bench_solvers_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_solvers");
    group.sample_size(10);
    let f = chain(3, 256, 1024, 12);
    let problem = Problem::new(
        f.catalog.clone(),
        f.instance.clone(),
        f.prices.clone(),
        reorder_to_gchq(&f.query).unwrap(),
    );
    let chain_q = qbdp_query::chain::ChainQuery::from_cq(&problem.query).unwrap();
    let pa = chain_q.partial_answers(&problem.catalog, &problem.instance);
    let cg = qbdp_core::chain::graph::ChainGraph::build(
        &problem.catalog,
        &problem.prices,
        &chain_q,
        &pa,
        TupleEdgeMode::Hub,
    );
    group.bench_function("dinic", |b| {
        b.iter(|| qbdp_flow::dinic(black_box(&cg.graph), cg.s, cg.t).value)
    });
    group.bench_function("edmonds_karp", |b| {
        b.iter(|| qbdp_flow::edmonds_karp(black_box(&cg.graph), cg.s, cg.t).value)
    });
    group.finish();
}

criterion_group!(benches, bench_ablation, bench_solvers_only);
criterion_main!(benches);
