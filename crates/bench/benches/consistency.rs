//! E4: the Proposition 3.2 consistency check — a finite, instance-
//! independent sweep over the price list.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qbdp_core::consistency::find_list_arbitrage;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_consistency(c: &mut Criterion) {
    let mut group = c.benchmark_group("consistency/prop_3_2");
    for n in [16i64, 64, 256, 1024] {
        let qs = qbdp_workload::queries::chain_schema(2, n).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let prices = qbdp_workload::prices::random(&qs.catalog, &mut rng, 2, 9);
        group.throughput(Throughput::Elements(qs.catalog.sigma_size() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| find_list_arbitrage(black_box(&qs.catalog), &prices).len())
        });
    }
    group.finish();
}

fn bench_consistency_with_violations(c: &mut Criterion) {
    let mut group = c.benchmark_group("consistency/violating_list");
    let qs = qbdp_workload::queries::chain_schema(2, 256).unwrap();
    let prices =
        qbdp_workload::prices::with_arbitrage(&qs.catalog, qbdp_core::Price::dollars(1)).unwrap();
    group.bench_function("find_all", |b| {
        b.iter(|| find_list_arbitrage(black_box(&qs.catalog), &prices).len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_consistency,
    bench_consistency_with_violations
);
criterion_main!(benches);
