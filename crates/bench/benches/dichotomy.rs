//! E5: throughput of the Theorem 3.16 classifier over the paper's named
//! queries and growing synthetic chains.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbdp_core::dichotomy::classify;
use qbdp_workload::queries::{chain_schema, cycle_schema, h1_schema, h2_schema, star_schema};
use std::hint::black_box;

fn bench_named_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("dichotomy/named");
    let cases = vec![
        ("chain3", chain_schema(3, 4).unwrap().query),
        ("star3", star_schema(3, 4).unwrap().query),
        ("cycle4", cycle_schema(4, 4).unwrap().query),
        ("h1", h1_schema(4).unwrap().query),
        ("h2", h2_schema(4).unwrap().query),
    ];
    for (label, q) in cases {
        group.bench_function(label, |b| b.iter(|| classify(black_box(&q))));
    }
    group.finish();
}

fn bench_long_chains(c: &mut Criterion) {
    // The GChQ order search is exponential in atom count with memoization —
    // measure where it actually starts to cost.
    let mut group = c.benchmark_group("dichotomy/chain_length");
    for k in [4usize, 8, 12, 16] {
        let q = chain_schema(k, 2).unwrap().query;
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| classify(black_box(&q)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_named_queries, bench_long_chains);
criterion_main!(benches);
