//! E2: PTIME scaling of the GChQ pipeline (Theorem 3.7) over column size
//! `n` and chain length `k`, plus the Step 3 branching cost on stars.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qbdp_bench::{chain, star};
use std::hint::black_box;

fn bench_chain_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("gchq/chain");
    for k in [2usize, 4] {
        for n in [8i64, 32, 128] {
            let f = chain(k, n, (4 * n) as usize, 42);
            let pricer = f.pricer();
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(BenchmarkId::new(format!("k{k}"), n), &n, |b, _| {
                b.iter(|| pricer.price_cq(black_box(&f.query)).unwrap().price)
            });
        }
    }
    group.finish();
}

fn bench_star_branching(c: &mut Criterion) {
    let mut group = c.benchmark_group("gchq/star");
    // Stars have 2^k Step 3 branches: the k-axis measures that cost.
    for k in [1usize, 2, 3, 4] {
        let f = star(k, 8, 32, 43);
        let pricer = f.pricer();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| pricer.price_cq(black_box(&f.query)).unwrap().price)
        });
    }
    group.finish();
}

fn bench_zipf_vs_uniform(c: &mut Criterion) {
    let mut group = c.benchmark_group("gchq/skew");
    let n = 64i64;
    let qs = qbdp_workload::queries::chain_schema(3, n).unwrap();
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(44);
    for (label, theta) in [("uniform", None), ("zipf1.2", Some(1.2))] {
        let instance = match theta {
            None => qbdp_workload::dbgen::populate_random(&qs.catalog, &mut rng, 4 * n as usize)
                .unwrap(),
            Some(t) => {
                qbdp_workload::dbgen::populate_zipf(&qs.catalog, &mut rng, 4 * n as usize, t)
                    .unwrap()
            }
        };
        let prices = qbdp_workload::prices::random(&qs.catalog, &mut rng, 1, 5);
        let pricer = qbdp_core::Pricer::new(qs.catalog.clone(), instance, prices).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| pricer.price_cq(black_box(&qs.query)).unwrap().price)
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_chain_scaling,
    bench_star_branching,
    bench_zipf_vs_uniform
);
criterion_main!(benches);
