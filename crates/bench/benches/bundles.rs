//! E14: GChQ bundle pricing (Definition 3.9) — shared-graph Min-Cut cost as
//! bundle size and column size grow, vs the exact bundle-certificate engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbdp_catalog::{Catalog, CatalogBuilder, Column};
use qbdp_core::chain::bundle::chain_bundle_price;
use qbdp_core::exact::certificates::{certificate_price_bundle, CertificateConfig};
use qbdp_core::normalize::Provenance;
use qbdp_core::price_points::PriceList;
use qbdp_query::ast::ConjunctiveQuery;
use qbdp_query::parser::parse_rule;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// A bundle with a shared prefix `A, S` and `m` divergent tails.
fn bundle(
    n: i64,
    m: usize,
) -> (
    Catalog,
    qbdp_catalog::Instance,
    PriceList,
    Vec<ConjunctiveQuery>,
) {
    let col = Column::int_range(0, n);
    let mut b = CatalogBuilder::new()
        .uniform_relation("A", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col);
    for i in 0..m {
        b = b
            .uniform_relation(format!("M{i}"), &["X", "Y"], &col)
            .uniform_relation(format!("C{i}"), &["X"], &col);
    }
    let catalog = b.build().unwrap();
    let mut rng = StdRng::seed_from_u64(14);
    let instance =
        qbdp_workload::dbgen::populate_random(&catalog, &mut rng, (2 * n) as usize).unwrap();
    let prices = qbdp_workload::prices::random(&catalog, &mut rng, 1, 5);
    let members = (0..m)
        .map(|i| {
            parse_rule(
                catalog.schema(),
                &format!("Q{i}(x, y, z) :- A(x), S(x, y), M{i}(y, z), C{i}(z)"),
            )
            .unwrap()
        })
        .collect();
    (catalog, instance, prices, members)
}

fn bench_bundle_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("bundles/flow");
    for (n, m) in [(8i64, 2usize), (8, 4), (32, 4), (64, 4)] {
        let (catalog, instance, prices, members) = bundle(n, m);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &n,
            |b, _| {
                b.iter(|| {
                    chain_bundle_price(
                        black_box(&catalog),
                        &instance,
                        &prices,
                        &members,
                        &Provenance::identity(),
                    )
                    .unwrap()
                    .price
                })
            },
        );
    }
    group.finish();
}

fn bench_bundle_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("bundles/exact");
    group.sample_size(10);
    for (n, m) in [(3i64, 2usize), (3, 3)] {
        let (catalog, instance, prices, members) = bundle(n, m);
        let refs: Vec<&ConjunctiveQuery> = members.iter().collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &n,
            |b, _| {
                b.iter(|| {
                    certificate_price_bundle(
                        black_box(&catalog),
                        &instance,
                        &prices,
                        &refs,
                        CertificateConfig::default(),
                    )
                    .unwrap()
                    .price
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bundle_flow, bench_bundle_exact);
criterion_main!(benches);
