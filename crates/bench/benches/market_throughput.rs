//! E13: marketplace quote and purchase throughput on the business
//! directory scenario, plus E13b: batched vs serial pricing of a GChQ
//! workload (the parallel worker-pool datapoint; on a single-core host
//! the two land within noise of each other, the speedup appears with
//! cores).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qbdp_core::Budget;
use qbdp_market::Market;
use qbdp_workload::scenarios::business::{generate, BusinessConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn market() -> Market {
    let mut rng = StdRng::seed_from_u64(13);
    let m = generate(
        &mut rng,
        BusinessConfig {
            states: 10,
            counties_per_state: 5,
            businesses: 200,
            ..Default::default()
        },
    )
    .unwrap();
    Market::open(m.catalog, m.instance, m.prices).unwrap()
}

fn bench_quotes(c: &mut Criterion) {
    let market = market();
    let mut group = c.benchmark_group("market");
    group.throughput(Throughput::Elements(1));
    group.bench_function("quote_state_slice", |b| {
        b.iter(|| {
            market
                .quote_str(black_box("Q(n, c) :- Business(n, 'S3', c)"))
                .unwrap()
                .price
        })
    });
    group.bench_function("quote_join", |b| {
        b.iter(|| {
            market
                .quote_str(black_box("Q(n, c) :- Business(n, 'S3', c), Restaurant(n)"))
                .unwrap()
                .price
        })
    });
    group.bench_function("purchase", |b| {
        b.iter(|| {
            market
                .purchase_str(black_box("Q(n, c) :- Business(n, 'S1', c)"))
                .unwrap()
                .answer
                .len()
        })
    });
    group.finish();
}

/// E13b: one GChQ workload (20 distinct state-slice and join queries),
/// priced serially (1 worker) vs on the batch pool (4 workers). Uses the
/// `Pricer` batch API directly so the quote cache cannot turn the
/// comparison into a hash-lookup benchmark.
fn bench_batch(c: &mut Criterion) {
    let market = market();
    let rules: Vec<String> = (0..10)
        .flat_map(|s| {
            [
                format!("Q(n, c) :- Business(n, 'S{s}', c)"),
                format!("Q(n, c) :- Business(n, 'S{s}', c), Restaurant(n)"),
            ]
        })
        .collect();
    let rule_refs: Vec<&str> = rules.iter().map(String::as_str).collect();
    let mut group = c.benchmark_group("batch_gchq");
    group.throughput(Throughput::Elements(rule_refs.len() as u64));
    for workers in [1usize, 4] {
        group.bench_function(format!("{workers}_workers"), |b| {
            b.iter(|| {
                market.with_pricer(|p| {
                    let ok = p
                        .price_rules_batch_within(
                            black_box(&rule_refs),
                            &Budget::unlimited(),
                            workers,
                        )
                        .into_iter()
                        .filter(|r| r.is_ok())
                        .count();
                    assert_eq!(ok, rule_refs.len());
                    ok
                })
            })
        });
    }
    // The cached market path for contrast: a warm quote_batch is pure
    // sharded-cache lookups.
    group.bench_function("warm_cache", |b| {
        market.quote_batch(&rule_refs);
        b.iter(|| {
            market
                .quote_batch(black_box(&rule_refs))
                .into_iter()
                .filter(|r| r.is_ok())
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_quotes, bench_batch);
criterion_main!(benches);
