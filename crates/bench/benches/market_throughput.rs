//! E13: marketplace quote and purchase throughput on the business
//! directory scenario, plus E13b: batched vs serial pricing of a GChQ
//! workload (the parallel worker-pool datapoint; on a single-core host
//! the two land within noise of each other, the speedup appears with
//! cores), plus E15: the durability tax — purchase throughput with the
//! write-ahead log off vs on under each fsync policy, and recovery time
//! for a snapshot plus a 10k-event log replay.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qbdp_core::Budget;
use qbdp_market::{DurableMarket, FsyncPolicy, Market};
use qbdp_store::{MarketEvent, Wal};
use qbdp_workload::scenarios::business::{generate, BusinessConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn market() -> Market {
    let mut rng = StdRng::seed_from_u64(13);
    let m = generate(
        &mut rng,
        BusinessConfig {
            states: 10,
            counties_per_state: 5,
            businesses: 200,
            ..Default::default()
        },
    )
    .unwrap();
    Market::open(m.catalog, m.instance, m.prices).unwrap()
}

fn bench_quotes(c: &mut Criterion) {
    let market = market();
    let mut group = c.benchmark_group("market");
    group.throughput(Throughput::Elements(1));
    group.bench_function("quote_state_slice", |b| {
        b.iter(|| {
            market
                .quote_str(black_box("Q(n, c) :- Business(n, 'S3', c)"))
                .unwrap()
                .price
        })
    });
    group.bench_function("quote_join", |b| {
        b.iter(|| {
            market
                .quote_str(black_box("Q(n, c) :- Business(n, 'S3', c), Restaurant(n)"))
                .unwrap()
                .price
        })
    });
    group.bench_function("purchase", |b| {
        b.iter(|| {
            market
                .purchase_str(black_box("Q(n, c) :- Business(n, 'S1', c)"))
                .unwrap()
                .answer
                .len()
        })
    });
    group.finish();
}

/// E13b: one GChQ workload (20 distinct state-slice and join queries),
/// priced serially (1 worker) vs on the batch pool (4 workers). Uses the
/// `Pricer` batch API directly so the quote cache cannot turn the
/// comparison into a hash-lookup benchmark.
fn bench_batch(c: &mut Criterion) {
    let market = market();
    let rules: Vec<String> = (0..10)
        .flat_map(|s| {
            [
                format!("Q(n, c) :- Business(n, 'S{s}', c)"),
                format!("Q(n, c) :- Business(n, 'S{s}', c), Restaurant(n)"),
            ]
        })
        .collect();
    let rule_refs: Vec<&str> = rules.iter().map(String::as_str).collect();
    let mut group = c.benchmark_group("batch_gchq");
    group.throughput(Throughput::Elements(rule_refs.len() as u64));
    for workers in [1usize, 4] {
        group.bench_function(format!("{workers}_workers"), |b| {
            b.iter(|| {
                market.with_pricer(|p| {
                    let ok = p
                        .price_rules_batch_within(
                            black_box(&rule_refs),
                            &Budget::unlimited(),
                            workers,
                        )
                        .into_iter()
                        .filter(|r| r.is_ok())
                        .count();
                    assert_eq!(ok, rule_refs.len());
                    ok
                })
            })
        });
    }
    // The cached market path for contrast: a warm quote_batch is pure
    // sharded-cache lookups.
    group.bench_function("warm_cache", |b| {
        market.quote_batch(&rule_refs);
        b.iter(|| {
            market
                .quote_batch(black_box(&rule_refs))
                .into_iter()
                .filter(|r| r.is_ok())
                .count()
        })
    });
    group.finish();
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "qbdp_bench_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// E15: what the write-ahead log costs per purchase. `wal_off` is the
/// in-memory market; the `wal_*` variants append + apply under each
/// fsync policy (`always` = one `fdatasync` per mutation, `every_32`
/// amortizes, `never` leaves syncing to the OS — the spread *is* the
/// durability/throughput trade-off DESIGN.md §4.3 describes).
fn bench_durability_tax(c: &mut Criterion) {
    let qdp = market().to_qdp();
    let buy = "Q(n, c) :- Business(n, 'S1', c)";
    let mut group = c.benchmark_group("durability");
    group.throughput(Throughput::Elements(1));
    let plain = Market::open_qdp(&qdp).unwrap();
    group.bench_function("purchase_wal_off", |b| {
        b.iter(|| plain.purchase_str(black_box(buy)).unwrap().quote.price)
    });
    for (name, fsync) in [
        ("purchase_wal_never", FsyncPolicy::Never),
        ("purchase_wal_every_32", FsyncPolicy::EveryN(32)),
        ("purchase_wal_always", FsyncPolicy::Always),
    ] {
        let dir = temp_dir(name);
        let dm = DurableMarket::create(&dir, &qdp, fsync).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| dm.purchase_str(black_box(buy)).unwrap().quote.price)
        });
        drop(dm);
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();
}

/// E15b: recovery time = snapshot load + replay of a 10k-event log
/// suffix (purchases forged straight into the WAL so building the
/// fixture doesn't take a purchase evaluation per event).
fn bench_recovery(c: &mut Criterion) {
    let qdp = market().to_qdp();
    let dir = temp_dir("recovery");
    let dm = DurableMarket::create(&dir, &qdp, FsyncPolicy::Never).unwrap();
    drop(dm);
    {
        let mut wal = Wal::open(dir.join("market.wal"), FsyncPolicy::Never).unwrap();
        for i in 0..10_000u64 {
            wal.append(&MarketEvent::Purchase {
                query: "Q(n, c) :- Business(n, 'S1', c)".into(),
                price_cents: 100 + i % 50,
                answer_tuples: 3,
                views: 8,
            })
            .unwrap();
        }
        wal.sync().unwrap();
    }
    let mut group = c.benchmark_group("recovery");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("snapshot_plus_10k_replay", |b| {
        b.iter(|| {
            let m = DurableMarket::open(&dir, FsyncPolicy::Never).unwrap();
            assert_eq!(m.market().with_ledger(|l| l.sales()), 10_000);
            m.market().revenue()
        })
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(
    benches,
    bench_quotes,
    bench_batch,
    bench_durability_tax,
    bench_recovery
);
criterion_main!(benches);
