//! E13: marketplace quote and purchase throughput on the business
//! directory scenario.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qbdp_market::Market;
use qbdp_workload::scenarios::business::{generate, BusinessConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn market() -> Market {
    let mut rng = StdRng::seed_from_u64(13);
    let m = generate(
        &mut rng,
        BusinessConfig {
            states: 10,
            counties_per_state: 5,
            businesses: 200,
            ..Default::default()
        },
    )
    .unwrap();
    Market::open(m.catalog, m.instance, m.prices).unwrap()
}

fn bench_quotes(c: &mut Criterion) {
    let market = market();
    let mut group = c.benchmark_group("market");
    group.throughput(Throughput::Elements(1));
    group.bench_function("quote_state_slice", |b| {
        b.iter(|| {
            market
                .quote_str(black_box("Q(n, c) :- Business(n, 'S3', c)"))
                .unwrap()
                .price
        })
    });
    group.bench_function("quote_join", |b| {
        b.iter(|| {
            market
                .quote_str(black_box("Q(n, c) :- Business(n, 'S3', c), Restaurant(n)"))
                .unwrap()
                .price
        })
    });
    group.bench_function("purchase", |b| {
        b.iter(|| {
            market
                .purchase_str(black_box("Q(n, c) :- Business(n, 'S1', c)"))
                .unwrap()
                .answer
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_quotes);
criterion_main!(benches);
