//! E3: the tractability boundary (Theorem 3.5 vs Theorem 3.7) — exact
//! pricing of the NP-complete H1 against Min-Cut pricing of a chain of the
//! same size. The shapes (exponential vs polynomial) are the result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbdp_bench::{chain, h1};
use qbdp_core::exact::certificates::{certificate_price, CertificateConfig};
use std::hint::black_box;

fn bench_h1_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_vs_flow/h1_exact");
    group.sample_size(10);
    for n in [2i64, 3, 4] {
        let f = h1(n, (n * n) as usize, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                certificate_price(
                    black_box(&f.catalog),
                    &f.instance,
                    &f.prices,
                    &f.query,
                    CertificateConfig::default(),
                )
                .unwrap()
                .price
            })
        });
    }
    group.finish();
}

fn bench_chain_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_vs_flow/chain_flow");
    for n in [2i64, 3, 4, 8, 16] {
        let f = chain(3, n, (n * n) as usize, 7);
        let pricer = f.pricer();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| pricer.price_cq(black_box(&f.query)).unwrap().price)
        });
    }
    group.finish();
}

/// The flow price equals the exact price on chains — benchmark both engines
/// on the *same* query to expose the engine gap at equal correctness.
fn bench_same_query_both_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_vs_flow/chain_both");
    group.sample_size(10);
    let n = 6i64;
    let f = chain(2, n, (n * n) as usize, 7);
    let pricer = f.pricer();
    group.bench_function("flow", |b| {
        b.iter(|| pricer.price_cq(black_box(&f.query)).unwrap().price)
    });
    group.bench_function("exact_certificates", |b| {
        b.iter(|| {
            certificate_price(
                black_box(&f.catalog),
                &f.instance,
                &f.prices,
                &f.query,
                CertificateConfig::default(),
            )
            .unwrap()
            .price
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_h1_exact,
    bench_chain_flow,
    bench_same_query_both_engines
);
criterion_main!(benches);
