//! E9: cycle queries (Theorem 3.15) — exact pricing cost vs the polynomial
//! global-cut upper bound, as the cycle length and column size grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbdp_bench::cycle;
use qbdp_core::cycle::{cycle_price, global_cut_upper_bound};
use qbdp_core::exact::certificates::CertificateConfig;
use qbdp_core::normalize::Problem;
use std::hint::black_box;

fn problem_for(k: usize, n: i64) -> Problem {
    let f = cycle(k, n, (n * n) as usize, 900);
    Problem::new(
        f.catalog.clone(),
        f.instance.clone(),
        f.prices.clone(),
        f.query.clone(),
    )
}

fn bench_cycle_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle/exact");
    group.sample_size(10);
    for (k, n) in [(2usize, 2i64), (2, 3), (3, 2), (3, 3)] {
        let problem = problem_for(k, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_n{n}")),
            &n,
            |b, _| {
                b.iter(|| {
                    cycle_price(black_box(&problem), CertificateConfig::default())
                        .unwrap()
                        .price
                })
            },
        );
    }
    group.finish();
}

fn bench_cycle_upper_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle/upper_bound");
    group.sample_size(10);
    for (k, n) in [(2usize, 3i64), (3, 3), (3, 8), (4, 8)] {
        let problem = problem_for(k, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_n{n}")),
            &n,
            |b, _| b.iter(|| global_cut_upper_bound(black_box(&problem)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cycle_exact, bench_cycle_upper_bound);
criterion_main!(benches);
