//! E8: the Theorem 3.3 determinacy oracle — min/max-world construction and
//! query evaluation — as column size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qbdp_bench::chain;
use qbdp_determinacy::selection::{determines_monotone_cq, max_world, min_world, ViewSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn half_sigma(f: &qbdp_bench::Fixture, seed: u64) -> ViewSet {
    let mut rng = StdRng::seed_from_u64(seed);
    ViewSet::sigma(&f.catalog)
        .iter()
        .filter(|_| rng.gen_bool(0.5))
        .collect()
}

fn bench_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("determinacy/oracle");
    for n in [8i64, 32, 128] {
        let f = chain(2, n, (2 * n) as usize, 8);
        let views = half_sigma(&f, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                determines_monotone_cq(black_box(&f.catalog), &f.instance, &views, &f.query)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_worlds(c: &mut Criterion) {
    let mut group = c.benchmark_group("determinacy/worlds");
    let f = chain(2, 64, 128, 8);
    let views = half_sigma(&f, 99);
    group.bench_function("min_world", |b| {
        b.iter(|| min_world(black_box(&f.instance), &views).total_tuples())
    });
    group.bench_function("max_world", |b| {
        b.iter(|| max_world(black_box(&f.catalog), &f.instance, &views).total_tuples())
    });
    group.finish();
}

criterion_group!(benches, bench_oracle, bench_worlds);
criterion_main!(benches);
