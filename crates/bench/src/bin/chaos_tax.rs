//! E16: the chaos tax — what the fault-injection seam costs when nothing
//! fails. Three rigs run the same purchase workload: an in-memory market
//! (no durability at all), a `DurableMarket` on `RealFs`, and a
//! `DurableMarket` on `FaultFs` armed with a **zero-fault** plan. The
//! `RealFs` → `FaultFs` delta is the full clean-path price of the `Vfs`
//! indirection plus the retry wrappers; a raw WAL-append microbench
//! isolates the same delta without pricing in the loop. Results print as
//! a table and land in `BENCH_chaos.json` for the experiment index.

use qbdp_market::{DurableMarket, FsyncPolicy, Market};
use qbdp_store::{FaultFs, FaultPlan, MarketEvent, RealFs, RetryPolicy, Wal};
use qbdp_workload::scenarios::business::{generate, BusinessConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const PURCHASES: u32 = 300;
const WAL_APPENDS: u32 = 20_000;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("qbdp_chaos_tax_{tag}_{}", std::process::id()))
}

fn market_qdp() -> String {
    let mut rng = StdRng::seed_from_u64(13);
    let m = generate(
        &mut rng,
        BusinessConfig {
            states: 10,
            counties_per_state: 5,
            businesses: 200,
            ..Default::default()
        },
    )
    .expect("business scenario generates");
    Market::open(m.catalog, m.instance, m.prices)
        .expect("scenario market opens")
        .to_qdp()
}

/// Ops per second for `n` runs of `f`, after a small warmup.
fn rate(n: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..(n / 10).max(1) {
        f();
    }
    let start = Instant::now();
    for _ in 0..n {
        f();
    }
    f64::from(n) / start.elapsed().as_secs_f64()
}

/// Percentage slowdown of `slow` relative to `fast` (positive = tax).
fn tax_pct(fast: f64, slow: f64) -> f64 {
    (fast / slow - 1.0) * 100.0
}

fn wal_append_rates() -> (f64, f64) {
    let event = MarketEvent::SetPrice {
        view: "Business.State=S3".into(),
        cents: 4900,
    };
    // `Never` keeps fdatasync out of the loop so the measured delta is
    // the seam itself: one retry-closure dispatch per vfs write.
    let real_dir = scratch("wal_real");
    std::fs::create_dir_all(&real_dir).expect("scratch dir");
    let mut wal = Wal::open_with(
        Arc::new(RealFs),
        real_dir.join("bench.wal"),
        FsyncPolicy::Never,
        RetryPolicy::default(),
    )
    .expect("wal opens");
    let real = rate(WAL_APPENDS, || {
        black_box(wal.append(black_box(&event)).expect("clean append"));
    });
    drop(wal);
    std::fs::remove_dir_all(&real_dir).ok();

    let fault_dir = scratch("wal_fault");
    std::fs::create_dir_all(&fault_dir).expect("scratch dir");
    let mut wal = Wal::open_with(
        Arc::new(FaultFs::new(FaultPlan::none())),
        fault_dir.join("bench.wal"),
        FsyncPolicy::Never,
        RetryPolicy::default(),
    )
    .expect("wal opens");
    let faulted = rate(WAL_APPENDS, || {
        black_box(wal.append(black_box(&event)).expect("clean append"));
    });
    drop(wal);
    std::fs::remove_dir_all(&fault_dir).ok();
    (real, faulted)
}

fn purchase_rates(qdp: &str) -> (f64, f64, f64) {
    let queries: Vec<String> = (0..10)
        .map(|s| format!("Q(n, c) :- Business(n, 'S{s}', c)"))
        .collect();
    let mut cursor = 0usize;
    let mut next = move || {
        cursor = (cursor + 1) % queries.len();
        queries[cursor].clone()
    };

    let memory = Market::open_qdp(qdp).expect("market opens");
    let in_memory = rate(PURCHASES, || {
        black_box(memory.purchase_str(&next()).expect("purchase"));
    });

    let real_dir = scratch("buy_real");
    std::fs::remove_dir_all(&real_dir).ok();
    let dm = DurableMarket::create(&real_dir, qdp, FsyncPolicy::Always).expect("durable market");
    let real = rate(PURCHASES, || {
        black_box(dm.purchase_str(&next()).expect("purchase"));
    });
    drop(dm);
    std::fs::remove_dir_all(&real_dir).ok();

    let fault_dir = scratch("buy_fault");
    std::fs::remove_dir_all(&fault_dir).ok();
    let dm = DurableMarket::create_with(
        Arc::new(FaultFs::new(FaultPlan::none())),
        &fault_dir,
        qdp,
        FsyncPolicy::Always,
        RetryPolicy::default(),
    )
    .expect("durable market");
    let faulted = rate(PURCHASES, || {
        black_box(dm.purchase_str(&next()).expect("purchase"));
    });
    drop(dm);
    std::fs::remove_dir_all(&fault_dir).ok();
    (in_memory, real, faulted)
}

fn main() {
    let qdp = market_qdp();
    let (wal_real, wal_fault) = wal_append_rates();
    let (buy_memory, buy_real, buy_fault) = purchase_rates(&qdp);

    println!("E16 — the chaos tax (clean path, zero faults injected)");
    println!("  wal append (fsync=never):");
    println!("    RealFs          {wal_real:>12.0} ops/s");
    println!(
        "    FaultFs (clean) {wal_fault:>12.0} ops/s   seam tax {:+.1}%",
        tax_pct(wal_real, wal_fault)
    );
    println!("  purchase (business scenario, fsync=always):");
    println!("    in-memory       {buy_memory:>12.0} ops/s");
    println!(
        "    RealFs          {buy_real:>12.0} ops/s   durability tax {:+.1}%",
        tax_pct(buy_memory, buy_real)
    );
    println!(
        "    FaultFs (clean) {buy_fault:>12.0} ops/s   seam tax {:+.1}%",
        tax_pct(buy_real, buy_fault)
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"E16\",");
    let _ = writeln!(json, "  \"wal_appends\": {WAL_APPENDS},");
    let _ = writeln!(json, "  \"purchases\": {PURCHASES},");
    let _ = writeln!(json, "  \"wal_append_real_fs_ops_per_sec\": {wal_real:.1},");
    let _ = writeln!(
        json,
        "  \"wal_append_fault_fs_ops_per_sec\": {wal_fault:.1},"
    );
    let _ = writeln!(
        json,
        "  \"wal_append_seam_tax_pct\": {:.2},",
        tax_pct(wal_real, wal_fault)
    );
    let _ = writeln!(
        json,
        "  \"purchase_in_memory_ops_per_sec\": {buy_memory:.1},"
    );
    let _ = writeln!(json, "  \"purchase_real_fs_ops_per_sec\": {buy_real:.1},");
    let _ = writeln!(json, "  \"purchase_fault_fs_ops_per_sec\": {buy_fault:.1},");
    let _ = writeln!(
        json,
        "  \"purchase_durability_tax_pct\": {:.2},",
        tax_pct(buy_memory, buy_real)
    );
    let _ = writeln!(
        json,
        "  \"purchase_seam_tax_pct\": {:.2}",
        tax_pct(buy_real, buy_fault)
    );
    json.push('}');
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("  wrote BENCH_chaos.json");
}
