//! E17: the update storm — what incremental pricing buys when quotes
//! interleave with price revisions. Two markets serve the identical
//! op stream: one pricing every quote cold (the default policy), one
//! through the plan cache + residual warm starts
//! (`MarketPolicy::incremental`). Each `set_price` invalidates the
//! touched quotes column-scoped, so every measured quote really pays a
//! reprice — the cold market re-solves its min-cut from scratch, the
//! warm one repairs the previous flow. Per-quote latencies are
//! recorded and the medians compared at two mixes (90/10 and 50/50
//! quote/setprice) across two scenarios; results print as a table and
//! land in `BENCH_update_storm.json` for the experiment index.

use qbdp_catalog::{tuple, Catalog, CatalogBuilder, Column};
use qbdp_core::price_points::PriceList;
use qbdp_core::Price;
use qbdp_determinacy::selection::SelectionView;
use qbdp_market::{Market, MarketPolicy};
use std::fmt::Write as _;
use std::time::Instant;

/// Column size: {0, …, N-1}. Sized so the chain join's flow network is
/// big enough that a cold solve visibly out-costs a residual repair.
const N: i64 = 40;

/// Quotes measured per (scenario, mix, mode) run.
const QUOTES: usize = 400;

struct Scenario {
    name: &'static str,
    /// Quote stream: cycled in order.
    queries: Vec<String>,
    /// Price-revision stream: `(view, cents)`, cycled in order. Ranges
    /// are chosen arbitrage-free (single-attribute relations accept any
    /// price; `S` revisions stay far below any alternative cover).
    revisions: Vec<(String, u64)>,
}

fn chain_market() -> Market {
    let col = Column::int_range(0, N);
    let catalog: Catalog = CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .uniform_relation("T", &["Y"], &col)
        .build()
        .expect("chain catalog builds");
    let mut instance = catalog.empty_instance();
    let (r, s, t) = (
        catalog.schema().rel_id("R").expect("R"),
        catalog.schema().rel_id("S").expect("S"),
        catalog.schema().rel_id("T").expect("T"),
    );
    for x in 0..N {
        instance.insert(r, tuple![x]).expect("R tuple");
        instance.insert(t, tuple![x]).expect("T tuple");
        for k in 1..4 {
            instance.insert(s, tuple![x, (x + k) % N]).expect("S tuple");
        }
    }
    let mut prices = PriceList::new();
    for attr in catalog.schema().all_attrs() {
        let name = catalog.schema().attr_display(attr);
        let cents = if name.starts_with("S.") { 150 } else { 100 };
        for v in catalog.column(attr).iter() {
            prices.set(SelectionView::new(attr, v.clone()), Price::cents(cents));
        }
    }
    Market::open(catalog, instance, prices).expect("chain market opens")
}

fn scenarios() -> Vec<Scenario> {
    // One hot query shape: every revision forces a full reprice of the
    // chain join — the purest cold-solve vs warm-start comparison.
    let chain_join = Scenario {
        name: "chain_join",
        queries: vec!["Q(x, y) :- R(x), S(x, y), T(y)".to_string()],
        revisions: (0..N as u64)
            .map(|v| (format!("R.X={v}"), 60 + (v * 17) % 300))
            .collect(),
    };
    // A pool of constant-selection shapes over `S`: each constant is its
    // own plan-cache entry, so a storm on `S.X` invalidates the whole
    // pool and the warm market repairs many small networks instead of
    // re-deriving them.
    let selection_pool = Scenario {
        name: "selection_pool",
        queries: (0..N).map(|c| format!("Q(y) :- S({c}, y)")).collect(),
        revisions: (0..N as u64)
            .map(|v| (format!("S.X={v}"), 110 + (v * 13) % 180))
            .collect(),
    };
    vec![chain_join, selection_pool]
}

/// Run `QUOTES` quotes at `quotes_per_revision` against a fresh market,
/// returning per-quote latencies in microseconds, sorted.
fn run_mix(scenario: &Scenario, quotes_per_revision: usize, incremental: bool) -> Vec<f64> {
    let market = chain_market();
    market.set_policy(MarketPolicy {
        incremental,
        ..MarketPolicy::default()
    });
    // Warm both engines up: fill plan/quote caches once so the measured
    // region compares steady states, not first-touch derivation.
    for q in &scenario.queries {
        market.quote_str(q).expect("warmup quote");
    }
    let mut latencies = Vec::with_capacity(QUOTES);
    let mut revision = scenario.revisions.iter().cycle();
    for i in 0..QUOTES {
        if i % quotes_per_revision == 0 {
            let (view, cents) = revision.next().expect("cycled");
            market
                .set_price(view, Price::cents(*cents))
                .expect("arbitrage-free revision");
        }
        let q = &scenario.queries[i % scenario.queries.len()];
        let start = Instant::now();
        let quote = market.quote_str(q).expect("storm quote");
        latencies.push(start.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(quote);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    latencies
}

fn median(sorted: &[f64]) -> f64 {
    sorted[sorted.len() / 2]
}

struct MixResult {
    mix: &'static str,
    cold_median_us: f64,
    warm_median_us: f64,
}

impl MixResult {
    /// Median-throughput ratio warm/cold (quotes per second at the
    /// median latency).
    fn speedup(&self) -> f64 {
        self.cold_median_us / self.warm_median_us
    }
}

fn main() {
    let mut rows: Vec<(&'static str, MixResult)> = Vec::new();
    println!("E17 — update storm: cold solves vs residual warm starts");
    for scenario in scenarios() {
        // 90/10: nine quotes per revision; 50/50: one for one.
        for (mix, per) in [("90_10", 9usize), ("50_50", 1usize)] {
            let cold = run_mix(&scenario, per, false);
            let warm = run_mix(&scenario, per, true);
            let result = MixResult {
                mix,
                cold_median_us: median(&cold),
                warm_median_us: median(&warm),
            };
            println!(
                "  {:>15} {}: cold median {:>9.1} µs   warm median {:>9.1} µs   speedup {:>5.2}x",
                scenario.name,
                mix,
                result.cold_median_us,
                result.warm_median_us,
                result.speedup()
            );
            rows.push((scenario.name, result));
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"E17\",");
    let _ = writeln!(json, "  \"quotes_per_run\": {QUOTES},");
    let _ = writeln!(json, "  \"column_size\": {N},");
    for (i, (name, r)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "  \"{name}_{}_cold_median_us\": {:.2},",
            r.mix, r.cold_median_us
        );
        let _ = writeln!(
            json,
            "  \"{name}_{}_warm_median_us\": {:.2},",
            r.mix, r.warm_median_us
        );
        let _ = writeln!(
            json,
            "  \"{name}_{}_median_speedup\": {:.2}{comma}",
            r.mix,
            r.speedup()
        );
    }
    json.push('}');
    std::fs::write("BENCH_update_storm.json", &json).expect("write BENCH_update_storm.json");
    println!("  wrote BENCH_update_storm.json");

    // The acceptance bar this experiment exists for: at least one
    // scenario must show ≥3x median quote throughput under the 50/50
    // mix. Fail loudly here rather than letting the JSON rot quietly.
    let best_50_50 = rows
        .iter()
        .filter(|(_, r)| r.mix == "50_50")
        .map(|(_, r)| r.speedup())
        .fold(0.0f64, f64::max);
    assert!(
        best_50_50 >= 3.0,
        "no scenario reached 3x under the 50/50 mix (best {best_50_50:.2}x)"
    );
}
