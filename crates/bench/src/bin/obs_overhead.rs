//! E18: the telemetry tax — what `qbdp-obs` costs the quote path, on
//! and off. The overhead argument in DESIGN §4.6 makes two claims:
//!
//! * **enabled**: counters, histograms, trace spans, and the flight
//!   recorder together tax the median quote latency by less than 2%;
//! * **disabled** (the default): the entire subsystem collapses to one
//!   relaxed atomic load per instrumentation site, well under 0.5% of
//!   a median quote even at an implausibly dense site count.
//!
//! Both claims are asserted here, so a regression fails the CI
//! `observability` job instead of quietly eroding the "leave it on in
//! production" story.
//!
//! Method: one chain-join market serves identical quote streams with
//! telemetry off and on, in interleaved batches (off, on, off, on, …)
//! so thermal drift and allocator warmup land on both sides equally.
//! A price revision precedes every quote, column-scoped-invalidating
//! the quote cache, so every measured quote truly runs the pricing
//! pipeline — a cache-hit-only stream would measure the memoizer, not
//! the instrumented path. The disabled cost is then pinned directly by
//! a microbench of `record` + `Stopwatch::start` with telemetry off.

use qbdp_catalog::{tuple, Catalog, CatalogBuilder, Column};
use qbdp_core::price_points::PriceList;
use qbdp_core::Price;
use qbdp_determinacy::selection::SelectionView;
use qbdp_market::{Market, MarketPolicy};
use std::fmt::Write as _;
use std::time::Instant;

/// Column size: {0, …, N-1}. Same scale as E17 — big enough that a
/// quote is real flow work, small enough that CI finishes quickly.
const N: i64 = 40;

/// Interleaved batches per mode; each batch quotes `BATCH` times.
const BATCHES: usize = 8;
const BATCH: usize = 50;

/// Iterations for the disabled-site microbench.
const MICRO_ITERS: u64 = 1_000_000;

/// Instrumentation sites a single quote could plausibly cross with
/// telemetry off. The real count is a couple dozen; asserting at 4x
/// that keeps the bound honest without making it brittle.
const SITES_PER_QUOTE: f64 = 100.0;

fn chain_market() -> Market {
    let col = Column::int_range(0, N);
    let catalog: Catalog = CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .uniform_relation("T", &["Y"], &col)
        .build()
        .expect("chain catalog builds");
    let mut instance = catalog.empty_instance();
    let (r, s, t) = (
        catalog.schema().rel_id("R").expect("R"),
        catalog.schema().rel_id("S").expect("S"),
        catalog.schema().rel_id("T").expect("T"),
    );
    for x in 0..N {
        instance.insert(r, tuple![x]).expect("R tuple");
        instance.insert(t, tuple![x]).expect("T tuple");
        for k in 1..4 {
            instance.insert(s, tuple![x, (x + k) % N]).expect("S tuple");
        }
    }
    let mut prices = PriceList::new();
    for attr in catalog.schema().all_attrs() {
        let name = catalog.schema().attr_display(attr);
        let base = if name.starts_with("S.") { 150 } else { 100 };
        for v in catalog.column(attr).iter() {
            prices.set(SelectionView::new(attr, v.clone()), Price::cents(base));
        }
    }
    Market::open(catalog, instance, prices).expect("chain market opens")
}

/// Quote `BATCH` times with `telemetry`, a revision before every quote
/// so none is a cache hit. Appends per-quote latencies (µs) to `out`.
fn run_batch(market: &Market, telemetry: bool, revision_at: &mut u64, out: &mut Vec<f64>) {
    market.set_policy(MarketPolicy {
        telemetry,
        ..MarketPolicy::default()
    });
    let query = "Q(x, y) :- R(x), S(x, y), T(y)";
    for _ in 0..BATCH {
        let v = *revision_at % N as u64;
        let cents = 60 + (*revision_at * 17) % 300;
        *revision_at += 1;
        market
            .set_price(&format!("R.X={v}"), Price::cents(cents))
            .expect("arbitrage-free revision");
        let start = Instant::now();
        let quote = market.quote_str(query).expect("overhead quote");
        out.push(start.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(quote);
    }
}

fn median(latencies: &mut [f64]) -> f64 {
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    latencies[latencies.len() / 2]
}

/// Per-call cost (ns) of one disabled instrumentation site: a counter
/// record plus a stopwatch start, the two ops every wrapped layer runs.
fn disabled_site_ns() -> f64 {
    qbdp_obs::set_enabled(false);
    let start = Instant::now();
    for i in 0..MICRO_ITERS {
        qbdp_obs::record(qbdp_obs::Ctr::MarketQuotes, std::hint::black_box(i & 1));
        std::hint::black_box(qbdp_obs::Stopwatch::start());
    }
    start.elapsed().as_secs_f64() * 1e9 / MICRO_ITERS as f64
}

fn main() {
    println!("E18 — telemetry tax: quote latency with qbdp-obs off vs on");
    let market = chain_market();
    // Warm up both modes once so first-touch derivation (plan shapes,
    // allocator arenas) is off the measured path.
    let mut revision_at = 0u64;
    let mut warmup = Vec::new();
    run_batch(&market, false, &mut revision_at, &mut warmup);
    run_batch(&market, true, &mut revision_at, &mut warmup);

    let (mut off, mut on) = (Vec::new(), Vec::new());
    for _ in 0..BATCHES {
        run_batch(&market, false, &mut revision_at, &mut off);
        run_batch(&market, true, &mut revision_at, &mut on);
    }
    market.set_policy(MarketPolicy::default());
    let off_median_us = median(&mut off);
    let on_median_us = median(&mut on);
    let on_tax = ((on_median_us - off_median_us) / off_median_us).max(0.0);

    let site_ns = disabled_site_ns();
    let off_tax = site_ns * SITES_PER_QUOTE / (off_median_us * 1e3);

    println!(
        "  off median {off_median_us:>9.1} µs   on median {on_median_us:>9.1} µs   on-tax {:.2}%",
        on_tax * 100.0
    );
    println!(
        "  disabled site {site_ns:.2} ns/call × {SITES_PER_QUOTE:.0} sites = {:.3}% of an off-median quote",
        off_tax * 100.0
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"E18\",");
    let _ = writeln!(json, "  \"quotes_per_mode\": {},", BATCHES * BATCH);
    let _ = writeln!(json, "  \"column_size\": {N},");
    let _ = writeln!(json, "  \"off_median_us\": {off_median_us:.2},");
    let _ = writeln!(json, "  \"on_median_us\": {on_median_us:.2},");
    let _ = writeln!(json, "  \"on_tax_pct\": {:.3},", on_tax * 100.0);
    let _ = writeln!(json, "  \"disabled_site_ns\": {site_ns:.3},");
    let _ = writeln!(json, "  \"assumed_sites_per_quote\": {SITES_PER_QUOTE:.0},");
    let _ = writeln!(json, "  \"off_tax_pct\": {:.4}", off_tax * 100.0);
    json.push('}');
    std::fs::write("BENCH_obs_overhead.json", &json).expect("write BENCH_obs_overhead.json");
    println!("  wrote BENCH_obs_overhead.json");

    // The acceptance bars from ISSUE/DESIGN §4.6.
    assert!(
        on_tax < 0.02,
        "telemetry-on tax {:.2}% exceeds the 2% budget (off {off_median_us:.1} µs, on {on_median_us:.1} µs)",
        on_tax * 100.0
    );
    assert!(
        off_tax < 0.005,
        "telemetry-off tax {:.3}% exceeds the 0.5% budget ({site_ns:.2} ns/site)",
        off_tax * 100.0
    );
}
