//! E19: the serve-path load harness — a Zipf(1.1) buyer population
//! hammering `qbdp-serve` over real sockets. Three phases:
//!
//! 1. **Throughput**: pipelined keep-alive clients drive cached-path
//!    `/quote` traffic (the quote cache is warmed first, so the server's
//!    event loop, parser, and batch hand-off are what's measured, not
//!    the pricing engine). Full scale must sustain ≥100k quotes/sec.
//! 2. **Latency**: a concurrent unpipelined probe measures end-to-end
//!    request latency under that load: p50/p99/p999.
//! 3. **Drain**: buyers purchase distinct views over a durable market
//!    until a real SIGTERM lands mid-load; the server drains, and the
//!    directory is reopened cold to prove recovery equivalence — every
//!    acked purchase survives, byte-for-byte fingerprint match.
//!
//! Results land in `BENCH_serve.json`. `QBDP_E19_SCALE=ci` runs the
//! reduced CI shape (same phases, smaller numbers, no ≥100k assertion).

use qbdp_catalog::{tuple, Catalog, CatalogBuilder, Column};
use qbdp_core::price_points::PriceList;
use qbdp_core::Price;
use qbdp_determinacy::selection::SelectionView;
use qbdp_market::{fingerprint, DurableMarket, Market, MarketPolicy};
use qbdp_serve::{sys, ResponseParser, Server, ServerConfig, ShutdownFlag};
use qbdp_store::FsyncPolicy;
use qbdp_workload::zipf::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Column domain size; also the size of the cached query pool.
const N: i64 = 64;

struct Scale {
    name: &'static str,
    /// Pipelined connections driving the throughput phase.
    clients: usize,
    /// Requests in flight per client write burst.
    pipeline: usize,
    /// Bursts per client.
    bursts: usize,
    /// Unpipelined latency samples.
    probe_samples: usize,
    /// Purchases attempted before/through the SIGTERM.
    buy_attempts: usize,
    /// Throughput floor asserted at the end (quotes/sec).
    min_qps: f64,
}

fn scale() -> Scale {
    match std::env::var("QBDP_E19_SCALE").as_deref() {
        Ok("ci") => Scale {
            name: "ci",
            clients: 2,
            pipeline: 32,
            bursts: 40,
            probe_samples: 300,
            buy_attempts: 24,
            min_qps: 5_000.0,
        },
        _ => Scale {
            name: "full",
            clients: 4,
            pipeline: 64,
            bursts: 400,
            probe_samples: 2_000,
            buy_attempts: 48,
            min_qps: 100_000.0,
        },
    }
}

/// The E17 chain instance, sized for a selection pool of `N` cached
/// queries.
fn seed_market() -> Market {
    let col = Column::int_range(0, N);
    let catalog: Catalog = CatalogBuilder::new()
        .uniform_relation("R", &["X"], &col)
        .uniform_relation("S", &["X", "Y"], &col)
        .uniform_relation("T", &["Y"], &col)
        .build()
        .expect("chain catalog builds");
    let mut instance = catalog.empty_instance();
    let (r, s, t) = (
        catalog.schema().rel_id("R").expect("R"),
        catalog.schema().rel_id("S").expect("S"),
        catalog.schema().rel_id("T").expect("T"),
    );
    for x in 0..N {
        instance.insert(r, tuple![x]).expect("R tuple");
        instance.insert(t, tuple![x]).expect("T tuple");
        for k in 1..4 {
            instance.insert(s, tuple![x, (x + k) % N]).expect("S tuple");
        }
    }
    let mut tags = PriceList::new();
    for attr in catalog.schema().all_attrs() {
        for v in catalog.column(attr).iter() {
            tags.set(SelectionView::new(attr, v.clone()), Price::cents(100));
        }
    }
    Market::open(catalog, instance, tags).expect("chain market opens")
}

/// The cached query pool the Zipf population draws from.
fn query_pool() -> Vec<String> {
    (0..N).map(|c| format!("Q(y) :- S({c}, y)")).collect()
}

fn connect(addr: SocketAddr) -> TcpStream {
    let c = TcpStream::connect(addr).expect("connect to quote server");
    c.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    c.set_nodelay(true).expect("nodelay");
    c
}

fn quote_request(q: &str) -> Vec<u8> {
    format!(
        "POST /quote HTTP/1.1\r\nContent-Length: {}\r\n\r\n{q}",
        q.len()
    )
    .into_bytes()
}

/// One pipelined client: `bursts` rounds of `pipeline` Zipf-sampled
/// quote requests, counting 200s. Returns quotes acked.
fn throughput_client(
    addr: SocketAddr,
    pool: &[String],
    zipf: &Zipf,
    seed: u64,
    pipeline: usize,
    bursts: usize,
) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = connect(addr);
    let mut rp = ResponseParser::new();
    let mut acked = 0u64;
    let mut buf = vec![0u8; 64 * 1024];
    for _ in 0..bursts {
        let mut burst = Vec::with_capacity(pipeline * 64);
        for _ in 0..pipeline {
            burst.extend_from_slice(&quote_request(&pool[zipf.sample(&mut rng)]));
        }
        c.write_all(&burst).expect("burst write");
        let mut got = 0;
        while got < pipeline {
            let n = c.read(&mut buf).expect("burst read");
            assert!(n > 0, "server closed mid-burst");
            rp.feed(&buf[..n]);
            while let Some(r) = rp.next_response() {
                assert_eq!(r.status, 200, "quote failed under load");
                got += 1;
                acked += 1;
            }
        }
    }
    acked
}

/// The unpipelined probe: request → full response → sample, on a
/// keep-alive connection, concurrent with the throughput clients.
fn latency_probe(addr: SocketAddr, pool: &[String], zipf: &Zipf, samples: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(0xE19);
    let mut c = connect(addr);
    let mut rp = ResponseParser::new();
    let mut buf = vec![0u8; 16 * 1024];
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let req = quote_request(&pool[zipf.sample(&mut rng)]);
        let t0 = Instant::now();
        c.write_all(&req).expect("probe write");
        loop {
            let n = c.read(&mut buf).expect("probe read");
            assert!(n > 0, "server closed the probe connection");
            rp.feed(&buf[..n]);
            if let Some(r) = rp.next_response() {
                assert_eq!(r.status, 200);
                out.push(t0.elapsed().as_secs_f64() * 1e6);
                break;
            }
        }
    }
    out.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    out
}

fn pct(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64) * p) as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Purchase distinct views one at a time until the server drains away
/// beneath us; a SIGTERM is raised mid-stream by the caller's timer.
fn purchase_until_drained(addr: SocketAddr, attempts: usize, acked: &AtomicU64) {
    let mut c = connect(addr);
    let mut rp = ResponseParser::new();
    let mut buf = vec![0u8; 16 * 1024];
    for i in 0..attempts {
        let q = format!("Q(y) :- S({i}, y)");
        let req = format!(
            "POST /purchase HTTP/1.1\r\nContent-Length: {}\r\n\r\n{q}",
            q.len()
        );
        if c.write_all(req.as_bytes()).is_err() {
            return; // drained: the server stopped reading
        }
        loop {
            match c.read(&mut buf) {
                Ok(0) | Err(_) => return, // drained mid-exchange: not acked
                Ok(n) => {
                    rp.feed(&buf[..n]);
                    if let Some(r) = rp.next_response() {
                        if r.status == 200 {
                            acked.fetch_add(1, Ordering::Relaxed);
                        }
                        break;
                    }
                }
            }
        }
        // A beat between purchases so the SIGTERM lands mid-stream.
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn main() {
    let sc = scale();
    let pool = query_pool();
    let zipf = Zipf::new(pool.len(), 1.1);
    println!(
        "E19 — serve load ({} scale): {} pipelined clients × {} × {} requests, Zipf(1.1) over {} cached queries",
        sc.name, sc.clients, sc.bursts, sc.pipeline, pool.len()
    );

    let dir = std::env::temp_dir().join(format!("qbdp-e19-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let seed_qdp = seed_market().to_qdp();

    // ---- phases 1+2: throughput + latency under one server run -------
    let dm = DurableMarket::open_or_create(&dir, Some(&seed_qdp), FsyncPolicy::EveryN(8))
        .expect("durable market opens");
    dm.set_policy(MarketPolicy {
        telemetry: true,
        ..dm.market().policy()
    })
    .expect("policy applies");
    // Warm the quote cache: the measured region is the serving path.
    for q in &pool {
        dm.market().quote_str(q).expect("warmup quote");
    }

    let mut server = Server::bind(ServerConfig {
        max_conns: 64,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral");
    let addr = server.local_addr();
    let shutdown = ShutdownFlag::new();
    let stopper = shutdown.clone();
    let (quotes_acked, elapsed, lat, stats) = std::thread::scope(|s| {
        let server_thread = s.spawn(|| server.run(&dm, &shutdown).expect("server runs"));
        let t0 = Instant::now();
        let clients: Vec<_> = (0..sc.clients)
            .map(|i| {
                let (pool, zipf) = (&pool, &zipf);
                s.spawn(move || {
                    throughput_client(
                        addr,
                        pool,
                        zipf,
                        0xC0FFEE + i as u64,
                        sc.pipeline,
                        sc.bursts,
                    )
                })
            })
            .collect();
        let probe = s.spawn(|| latency_probe(addr, &pool, &zipf, sc.probe_samples));
        let acked: u64 = clients.into_iter().map(|h| h.join().expect("client")).sum();
        let elapsed = t0.elapsed().as_secs_f64();
        let lat = probe.join().expect("probe");
        stopper.request();
        let stats = server_thread.join().expect("server thread");
        (acked, elapsed, lat, stats)
    });
    let qps = quotes_acked as f64 / elapsed;
    let (p50, p99, p999) = (pct(&lat, 0.50), pct(&lat, 0.99), pct(&lat, 0.999));
    println!(
        "  throughput: {quotes_acked} quotes in {elapsed:.2}s = {qps:.0} quotes/sec ({} backend)",
        stats.backend
    );
    println!("  latency under load: p50 {p50:.0} µs   p99 {p99:.0} µs   p999 {p999:.0} µs");

    // ---- phase 3: SIGTERM drain + recovery equivalence ---------------
    sys::clear_signal();
    let mut server = Server::bind(ServerConfig {
        max_conns: 64,
        ..ServerConfig::default()
    })
    .expect("rebind");
    let addr = server.local_addr();
    let shutdown = ShutdownFlag::with_signals().expect("signal flag");
    let acked = AtomicU64::new(0);
    let drain_stats = std::thread::scope(|s| {
        let server_thread = s.spawn(|| server.run(&dm, &shutdown).expect("drain run"));
        let buyer = s.spawn(|| purchase_until_drained(addr, sc.buy_attempts, &acked));
        // Let roughly half the purchases land, then deliver a real
        // SIGTERM to the process — the event loop must drain.
        std::thread::sleep(Duration::from_millis(sc.buy_attempts as u64));
        sys::raise_signal(sys::SIGTERM).expect("raise SIGTERM");
        let stats = server_thread.join().expect("drain thread");
        buyer.join().expect("buyer");
        stats
    });
    let acked = acked.load(Ordering::Relaxed);
    dm.sync().expect("post-drain sync");
    let fp_drained = fingerprint(dm.market());
    let sales_drained = dm.market().sales();
    drop(dm);
    let dm = DurableMarket::open_or_create(&dir, None, FsyncPolicy::Always).expect("cold reopen");
    let fp_recovered = fingerprint(dm.market());
    let sales_recovered = dm.market().sales();
    println!(
        "  drain: {} purchase(s) acked over the wire, {} sale(s) drained, {} recovered",
        acked, sales_drained, sales_recovered
    );
    assert_eq!(
        fp_recovered, fp_drained,
        "cold recovery diverged from the drained server state"
    );
    assert!(
        sales_recovered as u64 >= acked,
        "lost acked purchases: {acked} acked, {sales_recovered} recovered"
    );
    assert!(acked > 0, "the SIGTERM landed before any purchase acked");
    let _ = std::fs::remove_dir_all(&dir);

    // ---- report ------------------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"E19\",");
    let _ = writeln!(json, "  \"scale\": \"{}\",", sc.name);
    let _ = writeln!(json, "  \"backend\": \"{}\",", stats.backend);
    let _ = writeln!(json, "  \"clients\": {},", sc.clients);
    let _ = writeln!(json, "  \"pipeline_depth\": {},", sc.pipeline);
    let _ = writeln!(json, "  \"zipf_theta\": 1.1,");
    let _ = writeln!(json, "  \"query_pool\": {},", pool.len());
    let _ = writeln!(json, "  \"quotes_acked\": {quotes_acked},");
    let _ = writeln!(json, "  \"elapsed_secs\": {elapsed:.3},");
    let _ = writeln!(json, "  \"quotes_per_sec\": {qps:.0},");
    let _ = writeln!(json, "  \"latency_p50_us\": {p50:.1},");
    let _ = writeln!(json, "  \"latency_p99_us\": {p99:.1},");
    let _ = writeln!(json, "  \"latency_p999_us\": {p999:.1},");
    let _ = writeln!(json, "  \"drain_purchases_acked\": {acked},");
    let _ = writeln!(json, "  \"drain_sales_recovered\": {sales_recovered},");
    let _ = writeln!(json, "  \"drain_requests_total\": {}", drain_stats.requests);
    json.push('}');
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("  wrote BENCH_serve.json");

    assert!(
        qps >= sc.min_qps,
        "throughput floor missed: {qps:.0} < {} quotes/sec",
        sc.min_qps
    );
    println!(
        "  PASS: ≥{:.0} quotes/sec sustained, recovery equivalent",
        sc.min_qps
    );
}
