//! Structural probe for the cycle-pricing problem (experiment E9's research
//! companion): on exhaustively many small instances, compare the exact price
//! against the best partition-structured upper bound.
//!
//! Usage: cargo run --release -p qbdp-bench --bin cycle_probe

#![forbid(unsafe_code)]

use qbdp_catalog::{Catalog, CatalogBuilder, Column, Tuple, Value};
use qbdp_core::cycle::{cycle_bounds, partition_upper_bound};
use qbdp_core::exact::certificates::{certificate_price, CertificateConfig};
use qbdp_core::normalize::Problem;
use qbdp_core::price_points::PriceList;
use qbdp_core::Price;
use qbdp_determinacy::selection::SelectionView;
use qbdp_query::parser::parse_rule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All partitions of {0..n} (Bell numbers; n ≤ 4 here).
fn partitions(n: usize) -> Vec<Vec<Vec<usize>>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for mut p in partitions(n - 1) {
        // Put n-1 into each existing block, or its own block.
        for i in 0..p.len() {
            let mut q = p.clone();
            q[i].push(n - 1);
            out.push(q);
        }
        p.push(vec![n - 1]);
        out.push(p);
    }
    out
}

fn cycle_catalog(k: usize, n: i64) -> Catalog {
    let col = Column::int_range(0, n);
    let mut b = CatalogBuilder::new();
    for i in 1..=k {
        b = b.uniform_relation(format!("R{i}"), &["X", "Y"], &col);
    }
    b.build().expect("bench setup")
}

fn main() {
    let mut rng = StdRng::seed_from_u64(777);
    let mut stats = [0usize; 4]; // total, global-tight, partition-tight, lb-tight
    let mut worst_gap = 0f64;
    for &(k, n) in &[(2usize, 2i64), (2, 3), (3, 2)] {
        let catalog = cycle_catalog(k, n);
        let head: Vec<String> = (1..=k).map(|i| format!("x{i}")).collect();
        let body: Vec<String> = (1..=k)
            .map(|i| {
                let j = if i == k { 1 } else { i + 1 };
                format!("R{i}(x{i}, x{j})")
            })
            .collect();
        let src = format!("C({}) :- {}", head.join(", "), body.join(", "));
        let q = parse_rule(catalog.schema(), &src).expect("query parses");
        let parts = partitions(n as usize);
        for _case in 0..400 {
            let mut d = catalog.empty_instance();
            for (rid, _) in catalog.schema().iter() {
                for a in 0..n {
                    for b2 in 0..n {
                        if rng.gen_bool(0.45) {
                            let _ = d.insert(rid, Tuple::new([Value::Int(a), Value::Int(b2)]));
                        }
                    }
                }
            }
            let mut prices = PriceList::new();
            for attr in catalog.schema().all_attrs() {
                for v in catalog.column(attr).iter() {
                    prices.set(
                        SelectionView::new(attr, v.clone()),
                        Price::dollars(rng.gen_range(1..=4)),
                    );
                }
            }
            let problem = Problem::new(catalog.clone(), d, prices, q.clone());
            let exact = certificate_price(
                &problem.catalog,
                &problem.instance,
                &problem.prices,
                &problem.query,
                CertificateConfig::default(),
            )
            .expect("bench setup")
            .price;
            let (lb, ub) = cycle_bounds(&problem).expect("pricing succeeds");
            assert!(lb <= exact && exact <= ub.price, "sandwich violated");
            // Best partition UB.
            let mut best_part = Price::INFINITE;
            for p in &parts {
                let groups: Vec<Vec<Value>> = p
                    .iter()
                    .map(|g| g.iter().map(|&i| Value::Int(i as i64)).collect())
                    .collect();
                let ubp = partition_upper_bound(&problem, &groups).expect("pricing succeeds");
                best_part = best_part.min(ubp);
            }
            assert!(best_part >= exact, "partition UB below exact!");
            stats[0] += 1;
            if ub.price == exact {
                stats[1] += 1;
            }
            if best_part == exact {
                stats[2] += 1;
            }
            if lb == exact {
                stats[3] += 1;
            }
            let gap = best_part.as_cents() as f64 / exact.as_cents().max(1) as f64;
            if gap > worst_gap {
                worst_gap = gap;
            }
        }
    }
    println!("instances            : {}", stats[0]);
    println!(
        "global UB tight      : {} ({:.1}%)",
        stats[1],
        100.0 * stats[1] as f64 / stats[0] as f64
    );
    println!(
        "best-partition tight : {} ({:.1}%)",
        stats[2],
        100.0 * stats[2] as f64 / stats[0] as f64
    );
    println!(
        "single-pair LB tight : {} ({:.1}%)",
        stats[3],
        100.0 * stats[3] as f64 / stats[0] as f64
    );
    println!("worst partition gap  : {worst_gap:.3}x");
}
